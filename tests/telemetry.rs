//! Cross-crate telemetry integration: the overhead gate (a disabled run
//! records nothing), Chrome-trace well-formedness for an end-to-end
//! session, and the live Figure 7 reproduction — the per-gate-kind
//! bootstrap histograms must show blind rotation dominating key
//! switching, straight from real gate executions.
//!
//! The recorder, the metrics registry, and the enable switch are
//! process-global, so every test here serializes on one mutex.

use pytfhe::prelude::*;
use pytfhe_telemetry as telemetry;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

/// A half adder plus an extra OR so three bootstrapped gate kinds show
/// up in the per-gate-kind histograms.
fn program() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let sum = nl.add_gate(GateKind::Xor, a, b).expect("gate");
    let carry = nl.add_gate(GateKind::And, a, b).expect("gate");
    let any = nl.add_gate(GateKind::Or, sum, carry).expect("gate");
    nl.mark_output(sum).expect("output");
    nl.mark_output(carry).expect("output");
    nl.mark_output(any).expect("output");
    nl
}

fn run_session(seed: u64) -> (Vec<bool>, Vec<bool>) {
    let nl = program();
    let mut client = Client::new(Params::testing(), seed);
    let server = Server::new(client.make_server_key());
    let inputs = client.encrypt_bits(&[true, false]);
    let outputs = server.execute(&nl, &inputs, 2).expect("executes");
    (vec![true, false], client.decrypt_bits(&outputs))
}

#[test]
fn disabled_telemetry_records_zero_spans() {
    let _gate = GATE.lock().expect("serial telemetry tests");
    telemetry::set_enabled(false);
    telemetry::drain();
    let (_, out) = run_session(11);
    assert_eq!(out, vec![true, false, true]);
    assert_eq!(
        telemetry::span_count(),
        0,
        "with telemetry off the whole pipeline must record no spans"
    );
    assert!(telemetry::drain().is_empty(), "no events of any kind when disabled");
}

#[test]
fn enabled_session_emits_a_wellformed_chrome_trace() {
    let _gate = GATE.lock().expect("serial telemetry tests");
    telemetry::set_enabled(true);
    telemetry::drain();
    let (_, out) = run_session(12);
    telemetry::set_enabled(false);
    let events = telemetry::drain();
    assert_eq!(out, vec![true, false, true]);
    assert!(!events.is_empty(), "an enabled run must record events");

    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for needle in ["derive server key", "encrypt 2 bits", "execute: 3 gates", "decrypt"] {
        assert!(
            names.iter().any(|n| n.contains(needle)),
            "missing a span matching {needle:?} in {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.contains("wavefront execute") || n.contains("wave ")),
        "backend wave spans must nest under the session span"
    );

    let trace = telemetry::export::chrome_trace(&events);
    telemetry::json::validate(&trace).expect("Chrome trace must be valid JSON");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""), "complete spans must be present");
}

#[test]
fn live_bootstrap_histograms_reproduce_the_fig7_split() {
    let _gate = GATE.lock().expect("serial telemetry tests");
    telemetry::set_enabled(true);
    telemetry::metrics().reset();
    telemetry::drain();
    let (_, out) = run_session(13);
    telemetry::set_enabled(false);
    telemetry::drain();
    assert_eq!(out, vec![true, false, true]);

    let snapshot = telemetry::metrics().snapshot();
    let total = |prefix: &str| -> (u64, f64) {
        snapshot
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .fold((0, 0.0), |(n, s), (_, h)| (n + h.count(), s + h.sum()))
    };
    let (br_count, br_s) = total("tfhe_blind_rotate_seconds");
    let (ks_count, ks_s) = total("tfhe_key_switch_seconds");
    assert_eq!(br_count, 3, "every bootstrapped gate observes one blind rotation");
    assert_eq!(ks_count, 3, "every bootstrapped gate observes one key switch");
    assert!(
        br_s > ks_s,
        "Figure 7: blind rotation ({br_s:.6}s) must dominate key switching ({ks_s:.6}s)"
    );
    for kind in ["xor", "and", "or"] {
        assert!(
            snapshot
                .histograms
                .contains_key(&format!("tfhe_blind_rotate_seconds{{gate=\"{kind}\"}}")),
            "per-gate-kind histogram for {kind} missing"
        );
    }
    assert_eq!(snapshot.counters.get("tfhe_bootstraps_total"), Some(&3));
    assert!(
        snapshot.gauges.contains_key("tfhe_noise_gate_output_variance"),
        "Server::new must publish the noise budget"
    );

    // The same data renders through the Prometheus exporter.
    let text = telemetry::export::prometheus_text(&snapshot);
    assert!(text.contains("tfhe_blind_rotate_seconds"));
    assert!(text.contains("le=\"+Inf\""));
}
