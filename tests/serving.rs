//! Integration tests of the multi-tenant serving layer: concurrent
//! tenants against plaintext oracles, admission control, fairness
//! under a greedy tenant, and key eviction + rehydration round trips.

use std::sync::Arc;

use pytfhe_backend::DiskStore;
use pytfhe_netlist::{GateKind, Netlist, ALL_GATE_KINDS};
use pytfhe_serve::{duplex, ServeClient, ServeConfig, ServeError, ServeHandle};
use pytfhe_tfhe::io::server_key_to_bytes;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};

/// A deterministic random DAG over every gate kind: each gate draws its
/// operands from the pool of inputs and earlier gates.
fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        // xorshift64* — deterministic across platforms, no dependencies.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
    };
    let mut nl = Netlist::new();
    let mut pool: Vec<_> = (0..inputs).map(|_| nl.add_input()).collect();
    for _ in 0..gates {
        let kind = ALL_GATE_KINDS[next(ALL_GATE_KINDS.len())];
        let a = pool[next(pool.len())];
        let b = pool[next(pool.len())];
        pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
    }
    nl.mark_output(*pool.last().unwrap()).unwrap();
    nl.mark_output(pool[pool.len() / 2]).unwrap();
    nl
}

fn tenant_material(seed: u64) -> (ClientKey, Vec<u8>, SecureRng) {
    let mut rng = SecureRng::seed_from_u64(seed);
    let ck = ClientKey::generate(Params::testing(), &mut rng);
    let key_bytes = server_key_to_bytes(&ck.server_key(&mut rng)).to_vec();
    (ck, key_bytes, rng)
}

/// N concurrent tenants, each with its own key and random programs,
/// all verified bit-exact against `eval_plain`.
#[test]
fn concurrent_tenants_match_plaintext_oracles() {
    const TENANTS: u64 = 4;
    const JOBS: u64 = 2;
    let front = Arc::new(ServeHandle::start(
        ServeConfig { max_sessions: TENANTS as usize, ..ServeConfig::default() },
        None,
    ));
    let workers: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            let front = Arc::clone(&front);
            std::thread::spawn(move || {
                let params = Params::testing();
                let (ck, key_bytes, mut rng) = tenant_material(100 + tenant);
                let (near, far) = duplex();
                front.attach(far).expect("admitted");
                let mut client = ServeClient::new(near);
                let fp = client.install_key(&key_bytes).expect("install");
                for job in 0..JOBS {
                    let nl = random_netlist(31 * tenant + job + 1, 5, 16);
                    let bits: Vec<bool> = (0..5).map(|_| rng.bit()).collect();
                    let inputs = ck.encrypt_bits(&bits, &mut rng);
                    let out = client.run(fp, &nl, &inputs, &params).expect("run");
                    assert_eq!(
                        ck.decrypt_bits(&out),
                        nl.eval_plain(&bits),
                        "tenant {tenant} job {job} diverged"
                    );
                }
                client.close().expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant thread");
    }
}

/// Admission control: the session ceiling rejects with a typed
/// `Overloaded`, and a freed slot admits again.
#[test]
fn session_ceiling_rejects_and_recovers() {
    let front = ServeHandle::start(ServeConfig { max_sessions: 2, ..ServeConfig::default() }, None);
    let (near1, far1) = duplex();
    let h1 = front.attach(far1).expect("first admitted");
    let (_near2, far2) = duplex();
    front.attach(far2).expect("second admitted");
    let (_near3, far3) = duplex();
    match front.attach(far3) {
        Err(ServeError::Overloaded { live: 2, max: 2 }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Close the first session; its slot frees and a new attach succeeds.
    drop(near1);
    h1.join().expect("session handler");
    let (_near4, far4) = duplex();
    front.attach(far4).expect("slot freed after close");
}

/// Per-tenant quota: the (quota+1)-th in-flight submit is rejected
/// typed; other tenants are unaffected.
#[test]
fn tenant_quota_rejects_only_the_greedy_tenant() {
    let front = ServeHandle::start(ServeConfig { tenant_quota: 2, ..ServeConfig::default() }, None);
    let params = Params::testing();
    let (ck_greedy, key_greedy, mut rng_g) = tenant_material(7);
    let (ck_polite, key_polite, mut rng_p) = tenant_material(8);

    let (near_g, far_g) = duplex();
    front.attach(far_g).expect("admitted");
    let mut greedy = ServeClient::new(near_g);
    let fp_g = greedy.install_key(&key_greedy).expect("install");

    let (near_p, far_p) = duplex();
    front.attach(far_p).expect("admitted");
    let mut polite = ServeClient::new(near_p);
    let fp_p = polite.install_key(&key_polite).expect("install");

    // A deep program holds the scheduler busy long enough for the
    // quota to fill deterministically: submit up to the quota...
    let nl = random_netlist(42, 5, 40);
    let mut jobs = Vec::new();
    for _ in 0..2 {
        let bits: Vec<bool> = (0..5).map(|_| rng_g.bit()).collect();
        let inputs = ck_greedy.encrypt_bits(&bits, &mut rng_g);
        jobs.push((greedy.submit(fp_g, &nl, &inputs, &params).expect("within quota"), bits));
    }
    // ...then the excess submit must bounce. (The scheduler may finish
    // a job concurrently, so tolerate one retry window.)
    let bits: Vec<bool> = (0..5).map(|_| rng_g.bit()).collect();
    let inputs = ck_greedy.encrypt_bits(&bits, &mut rng_g);
    match greedy.submit(fp_g, &nl, &inputs, &params) {
        Err(ServeError::QuotaExceeded { quota: 2, .. }) => {}
        Ok(id) => {
            // Raced with completion: still verify the job runs clean.
            let out = greedy.fetch(id).expect("fetch raced job");
            assert_eq!(ck_greedy.decrypt_bits(&out), nl.eval_plain(&bits));
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // The polite tenant is unaffected by the greedy tenant's quota.
    let bits_p: Vec<bool> = (0..5).map(|_| rng_p.bit()).collect();
    let inputs_p = ck_polite.encrypt_bits(&bits_p, &mut rng_p);
    let out = polite.run(fp_p, &nl, &inputs_p, &params).expect("polite tenant runs");
    assert_eq!(ck_polite.decrypt_bits(&out), nl.eval_plain(&bits_p));
    for (id, bits) in jobs {
        let out = greedy.fetch(id).expect("greedy job");
        assert_eq!(ck_greedy.decrypt_bits(&out), nl.eval_plain(&bits));
    }
}

/// Fairness: with a greedy tenant holding a deep queue, a late-arriving
/// tenant's single job still completes correctly (round-robin draining
/// interleaves it instead of starving it behind the queue).
#[test]
fn late_tenant_is_not_starved_by_a_greedy_queue() {
    let front = ServeHandle::start(
        ServeConfig { tenant_quota: 8, max_wave: 8, ..ServeConfig::default() },
        None,
    );
    let params = Params::testing();
    let (ck_g, key_g, mut rng_g) = tenant_material(21);
    let (ck_l, key_l, mut rng_l) = tenant_material(22);

    let (near_g, far_g) = duplex();
    front.attach(far_g).expect("admitted");
    let mut greedy = ServeClient::new(near_g);
    let fp_g = greedy.install_key(&key_g).expect("install");

    // Greedy tenant floods the scheduler first.
    let nl_deep = random_netlist(5, 5, 48);
    let mut greedy_jobs = Vec::new();
    for _ in 0..4 {
        let bits: Vec<bool> = (0..5).map(|_| rng_g.bit()).collect();
        let inputs = ck_g.encrypt_bits(&bits, &mut rng_g);
        greedy_jobs.push((greedy.submit(fp_g, &nl_deep, &inputs, &params).expect("submit"), bits));
    }

    // Late tenant arrives afterwards with one small job.
    let (near_l, far_l) = duplex();
    front.attach(far_l).expect("admitted");
    let mut late = ServeClient::new(near_l);
    let fp_l = late.install_key(&key_l).expect("install");
    let nl_small = random_netlist(6, 4, 8);
    let bits_l: Vec<bool> = (0..4).map(|_| rng_l.bit()).collect();
    let inputs_l = ck_l.encrypt_bits(&bits_l, &mut rng_l);
    let out = late.run(fp_l, &nl_small, &inputs_l, &params).expect("late tenant served");
    assert_eq!(ck_l.decrypt_bits(&out), nl_small.eval_plain(&bits_l));

    for (id, bits) in greedy_jobs {
        let out = greedy.fetch(id).expect("greedy job");
        assert_eq!(ck_g.decrypt_bits(&out), nl_deep.eval_plain(&bits));
    }
}

/// Key-cache eviction with a backing store: a tenant evicted from the
/// in-memory cache is transparently rehydrated on its next submit, and
/// results stay bit-exact.
#[test]
fn evicted_key_rehydrates_from_the_store() {
    let dir = std::env::temp_dir().join(format!("pytfhe-serving-rehydrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).expect("open store");
    // Capacity 1: installing the second tenant's key evicts the first.
    let front = ServeHandle::start(
        ServeConfig { key_cache_capacity: 1, ..ServeConfig::default() },
        Some(store),
    );
    let params = Params::testing();
    let (ck1, key1, mut rng1) = tenant_material(31);
    let (_ck2, key2, _rng2) = tenant_material(32);

    let (near, far) = duplex();
    front.attach(far).expect("admitted");
    let mut client = ServeClient::new(near);
    let fp1 = client.install_key(&key1).expect("install 1");
    let _fp2 = client.install_key(&key2).expect("install 2 evicts 1");
    assert_eq!(front.key_cache().len(), 1, "capacity enforced");

    // Submitting under the evicted fingerprint must rehydrate, not fail.
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let g = nl.add_gate(GateKind::Nand, a, b).unwrap();
    nl.mark_output(g).unwrap();
    let inputs = ck1.encrypt_bits(&[true, true], &mut rng1);
    let out = client.run(fp1, &nl, &inputs, &params).expect("rehydrated run");
    assert_eq!(ck1.decrypt_bits(&out), vec![false]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Without a backing store, an evicted key is a typed `UnknownKey`.
#[test]
fn evicted_key_without_a_store_is_unknown() {
    let front =
        ServeHandle::start(ServeConfig { key_cache_capacity: 1, ..ServeConfig::default() }, None);
    let params = Params::testing();
    let (ck1, key1, mut rng1) = tenant_material(41);
    let (_ck2, key2, _rng2) = tenant_material(42);
    let (near, far) = duplex();
    front.attach(far).expect("admitted");
    let mut client = ServeClient::new(near);
    let fp1 = client.install_key(&key1).expect("install 1");
    client.install_key(&key2).expect("install 2 evicts 1");
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let g = nl.add_gate(GateKind::Not, a, a).unwrap();
    nl.mark_output(g).unwrap();
    let inputs = ck1.encrypt_bits(&[true], &mut rng1);
    match client.submit(fp1, &nl, &inputs, &params) {
        Err(ServeError::UnknownKey(_)) => {}
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}
