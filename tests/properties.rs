//! Property-based integration tests (proptest): randomized programs and
//! data flowing through the whole stack.

use proptest::prelude::*;
use pytfhe::prelude::*;
use pytfhe::pytfhe_backend::execute;
use pytfhe::pytfhe_hdl::Circuit;
use pytfhe::pytfhe_netlist::opt::{optimize, OptConfig};
use pytfhe::pytfhe_netlist::ALL_GATE_KINDS;

/// Strategy: a random DAG with `inputs` inputs and up to `max_gates`
/// gates (operands always reference earlier nodes).
fn random_netlist(inputs: usize, max_gates: usize) -> impl Strategy<Value = Netlist> {
    let gate_choices = prop::collection::vec(
        (0usize..ALL_GATE_KINDS.len(), any::<prop::sample::Index>(), any::<prop::sample::Index>()),
        1..max_gates,
    );
    gate_choices.prop_map(move |choices| {
        let mut nl = Netlist::new();
        let mut pool: Vec<pytfhe::pytfhe_netlist::NodeId> =
            (0..inputs).map(|_| nl.add_input()).collect();
        for (k, ia, ib) in choices {
            let kind = ALL_GATE_KINDS[k];
            let a = pool[ia.index(pool.len())];
            let b = pool[ib.index(pool.len())];
            pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
        }
        // Mark a handful of outputs, including the last node.
        let n = pool.len();
        nl.mark_output(pool[n - 1]).expect("exists");
        nl.mark_output(pool[n / 2]).expect("exists");
        nl.mark_output(pool[n / 3]).expect("exists");
        nl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary format is lossless for arbitrary programs.
    #[test]
    fn assemble_disassemble_round_trip(
        nl in random_netlist(6, 120),
        bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        let binary = pytfhe_asm::assemble(&nl);
        let back = pytfhe_asm::disassemble(&binary).expect("own binaries are valid");
        prop_assert_eq!(back.eval_plain(&bits), nl.eval_plain(&bits));
        prop_assert_eq!(back.num_gates(), nl.num_gates());
    }

    /// The optimizer never changes program semantics.
    #[test]
    fn optimizer_preserves_semantics(
        nl in random_netlist(6, 120),
        bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        let (opt, report) = optimize(&nl, &OptConfig::default()).expect("valid");
        prop_assert!(report.gates_after <= report.gates_before);
        prop_assert_eq!(opt.eval_plain(&bits), nl.eval_plain(&bits));
    }

    /// Reference and wavefront executors agree on arbitrary programs.
    #[test]
    fn executors_agree(
        nl in random_netlist(5, 80),
        bits in prop::collection::vec(any::<bool>(), 5),
        workers in 1usize..6,
    ) {
        let engine = PlainEngine::new();
        let (seq, _) = execute(&engine, &nl, &bits).expect("reference");
        let (par, _) = execute_parallel(&engine, &nl, &bits, workers).expect("parallel");
        prop_assert_eq!(seq, par);
    }

    /// Word arithmetic matches u64 semantics for random widths/operands.
    #[test]
    fn adders_and_multipliers_match_integers(
        w in 1usize..10,
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (x, y) = (x & mask, y & mask);
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let sum = c.add(&a, &b);
        let prod = c.mul_unsigned(&a, &b);
        let lt = c.lt_unsigned(&a, &b).expect("widths");
        c.output_word("sum", &sum);
        c.output_word("prod", &prod);
        c.output_word("lt", &pytfhe::pytfhe_hdl::Word::from_bits(vec![lt]));
        let nl = c.finish().expect("netlist");
        let mut input: Vec<bool> = (0..w).map(|i| (x >> i) & 1 == 1).collect();
        input.extend((0..w).map(|i| (y >> i) & 1 == 1));
        let out = nl.eval_plain(&input);
        let from = |bits: &[bool]| bits.iter().enumerate().fold(0u128, |acc, (i, &bb)| acc | (u128::from(bb) << i));
        prop_assert_eq!(from(&out[..w]) as u64, (x + y) & mask);
        prop_assert_eq!(from(&out[w..3 * w]), u128::from(x) * u128::from(y));
        prop_assert_eq!(out[3 * w], x < y);
    }

    /// DType codecs round-trip within one resolution step.
    #[test]
    fn dtype_codec_round_trips(v in -100.0f64..100.0) {
        for dtype in [
            DType::SInt(10),
            DType::Fixed { width: 16, frac: 6 },
            DType::Float { exp: 8, man: 10 },
        ] {
            let back = dtype.decode_f64(&dtype.encode_f64(v));
            let tol = dtype.resolution().max(v.abs() * dtype.resolution()) + 1e-12;
            prop_assert!((back - v).abs() <= tol, "{dtype}: {v} -> {back}");
        }
    }
}
