//! Persistence robustness: golden backward-compatibility fixtures and
//! randomized corruption across every serialized format.
//!
//! The golden files in `tests/golden/` freeze the byte layouts this
//! repo has shipped (see the README there). These tests prove three
//! things about the wire-envelope migration:
//!
//! 1. **Backward compatibility** — every legacy fixture still decodes
//!    through its compat shim, is tagged [`Vintage::Legacy`], and the
//!    decoded artifacts still *work* (the golden server key evaluates a
//!    NAND truth table against the golden ciphertexts).
//! 2. **Format stability** — the `*_wire.bin` fixtures decode as
//!    [`Vintage::Current`] and re-encode byte-for-byte, pinning the
//!    envelope layout itself.
//! 3. **Corruption safety** — randomized truncations and bit flips of
//!    any fixture produce a typed error; no panics, no garbage.

use proptest::prelude::*;
use pytfhe::pytfhe_backend::{execute, Checkpoint, DiskStore, KernelPlan, TfheEngine};
use pytfhe::pytfhe_netlist::{GateKind, Netlist};
use pytfhe::{Client, NoiseGuard, Server};
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::io::{
    ciphertext_from_bytes, client_key_from_bytes, server_key_from_bytes_tagged, Vintage,
};
use pytfhe_tfhe::Params;

fn golden(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture {path:?}: {e}"))
}

fn nand_netlist() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let g = nl.add_gate(GateKind::Nand, a, b).unwrap();
    nl.mark_output(g).unwrap();
    nl
}

/// The legacy fixtures decode through their shims — and the decoded key
/// material still computes: a NAND truth table evaluated homomorphically
/// under the golden server key, on the golden ciphertexts, decrypted
/// with the golden client key.
#[test]
fn legacy_goldens_decode_and_still_compute() {
    let client_key = client_key_from_bytes(&golden("client_key_testing_v1.bin")).unwrap();
    let (server_key, vintage) =
        server_key_from_bytes_tagged(&golden("server_key_testing_tfs2.bin")).unwrap();
    assert_eq!(vintage, Vintage::Legacy);

    let (ct_true, ct_params) = ciphertext_from_bytes(&golden("ciphertext_true_v1.bin")).unwrap();
    let (ct_false, _) = ciphertext_from_bytes(&golden("ciphertext_false_v1.bin")).unwrap();
    assert_eq!(ct_params, *client_key.params());
    assert!(client_key.decrypt_bit(&ct_true));
    assert!(!client_key.decrypt_bit(&ct_false));

    let nl = nand_netlist();
    let engine = TfheEngine::new(&server_key);
    for (a, b, want) in [(true, true, false), (true, false, true), (false, false, true)] {
        let pick = |v| if v { ct_true.clone() } else { ct_false.clone() };
        let (out, _) = execute(&engine, &nl, &[pick(a), pick(b)]).unwrap();
        assert_eq!(client_key.decrypt_bit(&out[0]), want, "NAND({a},{b})");
    }
}

/// Legacy plan and checkpoint fixtures load through their shims and
/// agree with their wire-envelope re-exports.
#[test]
fn legacy_plan_and_checkpoint_goldens_match_their_wire_reexports() {
    let (plan, vintage) = KernelPlan::from_bytes_tagged(&golden("kernel_plan_ptkg1.bin")).unwrap();
    assert_eq!(vintage, Vintage::Legacy);
    assert_eq!(plan.fingerprint, 0x4a08b6ad5de5ec72);
    let (wire_plan, wire_vintage) =
        KernelPlan::from_bytes_tagged(&golden("kernel_plan_wire.bin")).unwrap();
    assert_eq!(wire_vintage, Vintage::Current);
    assert_eq!(plan, wire_plan);

    let (ckpt, vintage) = Checkpoint::from_bytes_tagged(&golden("checkpoint_ptck1.bin")).unwrap();
    assert_eq!(vintage, Vintage::Legacy);
    assert_eq!(ckpt.wave(), 1);
    assert_eq!(ckpt.fingerprint(), 0x4a08b6ad5de5ec72);
    let (wire_ckpt, wire_vintage) =
        Checkpoint::from_bytes_tagged(&golden("checkpoint_wire.bin")).unwrap();
    assert_eq!(wire_vintage, Vintage::Current);
    assert_eq!(ckpt, wire_ckpt);
}

/// The current envelope layout is pinned: decoding a `*_wire.bin`
/// fixture and re-encoding it must reproduce the file byte-for-byte.
#[test]
fn wire_goldens_reencode_byte_identically() {
    let key_bytes = golden("server_key_testing_wire.bin");
    let (key, vintage) = server_key_from_bytes_tagged(&key_bytes).unwrap();
    assert_eq!(vintage, Vintage::Current);
    assert_eq!(pytfhe_tfhe::io::server_key_to_bytes(&key).to_vec(), key_bytes);

    let plan_bytes = golden("kernel_plan_wire.bin");
    assert_eq!(KernelPlan::from_bytes(&plan_bytes).unwrap().to_bytes(), plan_bytes);

    let ckpt_bytes = golden("checkpoint_wire.bin");
    assert_eq!(Checkpoint::from_bytes(&ckpt_bytes).unwrap().to_bytes(), ckpt_bytes);

    // And the envelope headers say what they should.
    for (bytes, format) in [
        (&key_bytes, pytfhe_wire::Format::ServerKey),
        (&plan_bytes, pytfhe_wire::Format::KernelPlan),
        (&ckpt_bytes, pytfhe_wire::Format::Checkpoint),
    ] {
        let env = pytfhe_wire::decode(bytes).unwrap();
        assert_eq!(env.format, format);
    }
}

/// Every way of mangling a fixture must produce `Err`, never a panic
/// and never an `Ok`. (A bit flip in a *legacy* server key body can in
/// principle go unseen — the legacy layout has no checksum — so flips
/// are asserted only on checksummed formats; truncations are asserted
/// everywhere.)
fn assert_truncations_fail(name: &str, decode: &dyn Fn(&[u8]) -> bool) {
    let bytes = golden(name);
    // Exhaustive for small fixtures, strided for the megabyte key.
    let step = (bytes.len() / 256).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        assert!(!decode(&bytes[..cut]), "{name}: truncation to {cut} bytes was accepted");
    }
}

type DecodeProbe = Box<dyn Fn(&[u8]) -> bool>;

#[test]
fn truncations_of_every_golden_are_rejected() {
    let cases: Vec<(&str, DecodeProbe)> = vec![
        ("server_key_testing_tfs2.bin", Box::new(|b| server_key_from_bytes_tagged(b).is_ok())),
        ("server_key_testing_wire.bin", Box::new(|b| server_key_from_bytes_tagged(b).is_ok())),
        ("kernel_plan_ptkg1.bin", Box::new(|b| KernelPlan::from_bytes(b).is_ok())),
        ("kernel_plan_wire.bin", Box::new(|b| KernelPlan::from_bytes(b).is_ok())),
        ("checkpoint_ptck1.bin", Box::new(|b| Checkpoint::from_bytes(b).is_ok())),
        ("checkpoint_wire.bin", Box::new(|b| Checkpoint::from_bytes(b).is_ok())),
        ("client_key_testing_v1.bin", Box::new(|b| client_key_from_bytes(b).is_ok())),
        ("ciphertext_true_v1.bin", Box::new(|b| ciphertext_from_bytes(b).is_ok())),
    ];
    for (name, decode) in &cases {
        assert_truncations_fail(name, decode);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random bit flips in checksummed (enveloped or FNV-guarded)
    /// fixtures are always caught.
    #[test]
    fn random_bit_flips_are_rejected(
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
        which in 0usize..4,
    ) {
        let name = ["server_key_testing_wire.bin", "kernel_plan_wire.bin",
                    "checkpoint_wire.bin", "checkpoint_ptck1.bin"][which];
        let mut bytes = golden(name);
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        let rejected = match which {
            0 => server_key_from_bytes_tagged(&bytes).is_err(),
            1 => KernelPlan::from_bytes(&bytes).is_err(),
            _ => Checkpoint::from_bytes(&bytes).is_err(),
        };
        prop_assert!(rejected, "{name}: flip of bit {bit} at byte {i} went undetected");
    }

    /// Random truncations of the enveloped fixtures are always caught
    /// (complements the strided exhaustive pass above).
    #[test]
    fn random_truncations_are_rejected(
        cut in any::<prop::sample::Index>(),
        which in 0usize..3,
    ) {
        let name = ["server_key_testing_wire.bin", "kernel_plan_wire.bin",
                    "checkpoint_wire.bin"][which];
        let bytes = golden(name);
        let cut = cut.index(bytes.len());
        let rejected = match which {
            0 => server_key_from_bytes_tagged(&bytes[..cut]).is_err(),
            1 => KernelPlan::from_bytes(&bytes[..cut]).is_err(),
            _ => Checkpoint::from_bytes(&bytes[..cut]).is_err(),
        };
        prop_assert!(rejected, "{name}: truncation to {cut} bytes went undetected");
    }
}

/// Warm start, observed through telemetry counters: the first session
/// installs the key and captures the plan; a second session against the
/// same store installs zero keys and captures zero plans.
#[test]
fn warm_start_counters_prove_zero_reinstall_and_zero_recapture() {
    let dir = std::env::temp_dir().join(format!("pytfhe-warm-counters-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nl = nand_netlist();
    let mut client = Client::new(Params::testing(), 0x5EED);
    let counters = || telemetry::metrics().snapshot().counters;
    let delta = |after: &std::collections::BTreeMap<String, u64>,
                 before: &std::collections::BTreeMap<String, u64>,
                 name: &str| {
        after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
    };

    let before_cold = counters();
    {
        let store = DiskStore::open(&dir).unwrap();
        let server = Server::with_store(client.make_server_key(), store).unwrap();
        let cts = client.encrypt_bits(&[true, false]);
        let (out, _) = server.execute_graph(&nl, &cts, 1).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
    }
    let after_cold = counters();
    assert_eq!(delta(&after_cold, &before_cold, "session_keys_installed_total"), 1);
    assert_eq!(delta(&after_cold, &before_cold, "session_plans_captured_total"), 1);

    {
        let store = DiskStore::open(&dir).unwrap();
        let server = Server::warm_start(store).unwrap().expect("key persisted by the first run");
        let cts = client.encrypt_bits(&[true, true]);
        let (out, stats) = server.execute_graph(&nl, &cts, 1).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![false]);
        assert!(stats.plan_cached, "the stored plan must be reused");
    }
    let after_warm = counters();
    assert_eq!(
        delta(&after_warm, &after_cold, "session_keys_installed_total"),
        0,
        "a warm start must not re-install the key"
    );
    assert_eq!(
        delta(&after_warm, &after_cold, "session_plans_captured_total"),
        0,
        "a warm start must not re-capture the plan"
    );
    assert_eq!(delta(&after_warm, &after_cold, "session_keys_warm_started_total"), 1);
    assert_eq!(delta(&after_warm, &after_cold, "session_plans_warm_loaded_total"), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The noise-budget guardrail is live end-to-end: the deliberately weak
/// test parameters are refused by the default guard and the breach is
/// visible in the typed error.
#[test]
fn noise_guard_refuses_test_parameters_end_to_end() {
    let mut client = Client::new(Params::testing(), 0xBAD);
    let err = Server::with_noise_guard(client.make_server_key(), NoiseGuard::default())
        .expect_err("testing parameters must fail the default noise guard");
    let msg = err.to_string();
    assert!(msg.contains("noise-budget guardrail"), "unexpected message: {msg}");
}
