//! Integration tests over the VIP-Bench suite: every workload survives
//! the binary round trip and agrees with its oracle through the real
//! executors; selected small workloads run fully homomorphically.

use pytfhe::prelude::*;
use pytfhe::pytfhe_backend::execute;
use pytfhe_vipbench::{benchmarks, find, Scale};

#[test]
fn every_workload_survives_the_binary_round_trip() {
    for b in benchmarks(Scale::Test) {
        let binary = pytfhe_asm::assemble(b.netlist());
        let back = pytfhe_asm::disassemble(&binary).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let input = b.sample_input(3);
        let bits = b.encode_input(&input);
        assert_eq!(
            back.eval_plain(&bits),
            b.netlist().eval_plain(&bits),
            "{} changed by assemble/disassemble",
            b.name()
        );
    }
}

#[test]
fn every_workload_matches_its_oracle_through_the_executor() {
    let engine = PlainEngine::new();
    for b in benchmarks(Scale::Test) {
        let input = b.sample_input(9);
        let bits = b.encode_input(&input);
        let (out, _) =
            execute(&engine, b.netlist(), &bits).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        let got = b.decode_output(&out);
        let want = b.oracle(&input);
        assert_eq!(got.len(), want.len(), "{}", b.name());
        // The oracle tolerance is checked by check_detailed; here we only
        // assert the executor path equals the direct evaluation path.
        assert_eq!(out, b.netlist().eval_plain(&bits), "{}", b.name());
        b.check_detailed(&input).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn hamming_distance_runs_homomorphically() {
    let bench = find("Hamming", Scale::Test).expect("registered");
    let input = bench.sample_input(5);
    let mut client = Client::new(Params::testing(), 500);
    let server = Server::new(client.make_server_key());
    let enc = client.encrypt_bits(&bench.encode_input(&input));
    let out = server.execute(bench.netlist(), &enc, 2).expect("executes");
    let got = bench.decode_output(&client.decrypt_bits(&out));
    assert_eq!(got, bench.oracle(&input));
}

#[test]
fn distinctness_runs_homomorphically() {
    let bench = find("Distinctness", Scale::Test).expect("registered");
    let input = bench.sample_input(4); // even seed: contains a duplicate
    let mut client = Client::new(Params::testing(), 501);
    let server = Server::new(client.make_server_key());
    let enc = client.encrypt_bits(&bench.encode_input(&input));
    let out = server.execute(bench.netlist(), &enc, 2).expect("executes");
    let got = bench.decode_output(&client.decrypt_bits(&out));
    assert_eq!(got, bench.oracle(&input));
    assert_eq!(got, vec![0.0], "even seeds plant a duplicate");
}
