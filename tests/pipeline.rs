//! Cross-crate integration tests: the full PyTFHE pipeline of the
//! paper's Figure 2, from a ChiselTorch model declaration down to
//! decrypted results, across every intermediate representation.

use pytfhe::prelude::*;
use pytfhe::pytfhe_backend::{execute, ExecError};
use pytfhe_backend::engine::PlainEngine;

/// The Figure 4 model shape, miniaturized for encrypted execution.
fn tiny_mnist() -> (chiseltorch::CompiledModel, DType) {
    let dtype = DType::Fixed { width: 8, frac: 4 };
    let model = nn::Sequential::new(dtype)
        .add(nn::Conv2d::new(1, 1, 2, 1))
        .add(nn::ReLU::new())
        .add(nn::Flatten::new())
        .add(nn::Linear::new(4, 2));
    (chiseltorch::compile(&model, &[1, 3, 3]).expect("compiles"), dtype)
}

#[test]
fn model_to_binary_to_encrypted_result() {
    let (compiled, dtype) = tiny_mnist();
    // Step 3: assemble and reload the PyTFHE binary.
    let binary = pytfhe_asm::assemble(compiled.netlist());
    let program = pytfhe_asm::disassemble(&binary).expect("valid binary");
    // The reloaded program is functionally identical.
    let image: Vec<f64> = (0..9).map(|i| f64::from(i % 3) / 2.0 - 0.5).collect();
    let plain = compiled.eval_plain(&image);
    let bits = compiled.encode_input(&image);
    assert_eq!(program.eval_plain(&bits), compiled.netlist().eval_plain(&bits));
    // Steps 4-5: encrypted round trip through the session API.
    let mut client = Client::new(Params::testing(), 1234);
    let server = Server::new(client.make_server_key());
    let enc = client.encrypt_values(&image, dtype);
    let out = server.execute(&program, &enc, 2).expect("executes");
    let got = client.decrypt_values(&out, dtype);
    assert_eq!(got, plain, "homomorphic result equals the functional result");
}

#[test]
fn reference_and_parallel_executors_agree_on_ciphertexts() {
    let (compiled, dtype) = tiny_mnist();
    let mut client = Client::new(Params::testing(), 77);
    let server_key = client.make_server_key();
    let engine = TfheEngine::new(&server_key);
    let image = vec![0.25; 9];
    let enc = client.encrypt_values(&image, dtype);
    let (seq, _) = execute(&engine, compiled.netlist(), &enc).expect("reference");
    let (par, stats) = execute_parallel(&engine, compiled.netlist(), &enc, 3).expect("parallel");
    assert_eq!(client.decrypt_values(&seq, dtype), client.decrypt_values(&par, dtype));
    assert!(stats.waves > 0);
}

#[test]
fn corrupted_binary_is_rejected_not_executed() {
    let (compiled, _) = tiny_mnist();
    let binary = pytfhe_asm::assemble(compiled.netlist());
    // Corrupt the header's gate count: detected as a count mismatch.
    let mut bad = binary.to_vec();
    bad[1] ^= 0x40;
    assert!(pytfhe_asm::disassemble(&bad).is_err(), "count corruption must be detected");
    // Corrupt an operand into a forward reference: detected as dangling.
    let mut bad = binary.to_vec();
    let gate_at = (1 + compiled.netlist().num_inputs()) * 16; // first gate instruction
    for byte in &mut bad[gate_at + 9..gate_at + 15] {
        *byte = 0xFF; // blast the high operand field to a huge index
    }
    assert!(pytfhe_asm::disassemble(&bad).is_err(), "dangling reference must be detected");
    // Truncation is detected too.
    assert!(pytfhe_asm::disassemble(&binary[..binary.len() - 5]).is_err());
}

#[test]
fn wrong_key_decrypts_garbage() {
    let (compiled, dtype) = tiny_mnist();
    let mut alice = Client::new(Params::testing(), 1);
    let mallory = Client::new(Params::testing(), 2);
    let server = Server::new(alice.make_server_key());
    let image = vec![0.5; 9];
    let enc = alice.encrypt_values(&image, dtype);
    let out = server.execute(compiled.netlist(), &enc, 1).expect("executes");
    let honest = alice.decrypt_values(&out, dtype);
    let stolen = mallory.decrypt_values(&out, dtype);
    assert_ne!(honest, stolen, "a different key must not reveal the result");
}

#[test]
fn optimization_preserves_pipeline_semantics() {
    use pytfhe::pytfhe_netlist::opt::{optimize, OptConfig};
    let (compiled, _) = tiny_mnist();
    let (opt, report) = optimize(compiled.netlist(), &OptConfig::default()).expect("optimizes");
    assert!(report.gates_after <= report.gates_before);
    let engine = PlainEngine::new();
    for seed in 0..5u64 {
        let image: Vec<f64> = (0..9).map(|i| f64::from((seed as u32 + i) % 5) / 4.0).collect();
        let bits = compiled.encode_input(&image);
        let (a, _) = execute(&engine, compiled.netlist(), &bits).expect("orig");
        let (b, _) = execute(&engine, &opt, &bits).expect("opt");
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn executor_reports_input_mismatch() {
    let (compiled, _) = tiny_mnist();
    let engine = PlainEngine::new();
    let err = execute(&engine, compiled.netlist(), &[true; 3]).unwrap_err();
    assert!(matches!(err, ExecError::InputCountMismatch { .. }));
}
