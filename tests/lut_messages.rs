//! Integration test of TFHE's programmable bootstrapping as exposed
//! through the public API: multi-valued messages and homomorphic lookup
//! tables (the paper's Section II-B headline feature).

use pytfhe::pytfhe_tfhe::{ClientKey, Params, SecureRng};

#[test]
fn homomorphic_state_machine_via_luts() {
    // Drive a 2-bit state machine entirely under encryption: each step
    // applies a transition table with one programmable bootstrap.
    let mut rng = SecureRng::seed_from_u64(90210);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let p = 2;
    // A permutation automaton: 0->2->1->3->0.
    let step: Vec<u32> = vec![2, 3, 1, 0];
    let mut expected = 0u32;
    let mut state = client.encrypt_message(expected, p, &mut rng);
    for _ in 0..8 {
        state = server.apply_lut(&state, &step, p);
        expected = step[expected as usize];
        assert_eq!(client.decrypt_message(&state, p), expected);
    }
}

#[test]
fn lut_composition_equals_composed_lut() {
    let mut rng = SecureRng::seed_from_u64(90211);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let p = 2;
    let f: Vec<u32> = vec![1, 3, 0, 2];
    let g: Vec<u32> = vec![3, 2, 1, 0];
    let gf: Vec<u32> = f.iter().map(|&x| g[x as usize]).collect();
    for m in 0..4u32 {
        let ct = client.encrypt_message(m, p, &mut rng);
        let two_step = server.apply_lut(&server.apply_lut(&ct, &f, p), &g, p);
        let one_step = server.apply_lut(&ct, &gf, p);
        assert_eq!(
            client.decrypt_message(&two_step, p),
            client.decrypt_message(&one_step, p),
            "m={m}"
        );
        assert_eq!(client.decrypt_message(&one_step, p), gf[m as usize]);
    }
}

#[test]
fn three_bit_messages_round_trip_through_luts() {
    let mut rng = SecureRng::seed_from_u64(90212);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let p = 3;
    // x -> (x * 3 + 1) mod 8: a full-width nonlinear table.
    let table: Vec<u32> = (0..8).map(|x| (x * 3 + 1) % 8).collect();
    for m in 0..8u32 {
        let ct = client.encrypt_message(m, p, &mut rng);
        let out = server.apply_lut(&ct, &table, p);
        assert_eq!(client.decrypt_message(&out, p), table[m as usize], "m={m}");
    }
}
