//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`throughput`/`finish`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! median-of-samples wall-clock timer printed to stdout — no statistics,
//! no HTML reports, no outlier analysis. Good enough to compare kernels on
//! one machine; not a replacement for real criterion.

use std::time::{Duration, Instant};

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly and records the median sample time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up to populate caches and lazy statics.
        std::hint::black_box(body());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(body());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 30;

impl Criterion {
    /// Runs `body` as a standalone benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        run_one(id, self.sample_size.unwrap_or(DEFAULT_SAMPLES), None, body);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size and
/// throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `body` as a benchmark named `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, self.throughput, body);
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut body: F,
) {
    let mut bencher = Bencher { samples: samples.max(1), elapsed: Duration::ZERO };
    body(&mut bencher);
    let per_iter = bencher.elapsed;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64)
        }
        Throughput::Elements(n) => {
            format!("  {:>10.0} elem/s", n as f64 / per_iter.as_secs_f64())
        }
    });
    println!("{id:<40} {per_iter:>12.2?}/iter{}", rate.unwrap_or_default());
}

/// Declares a benchmark group runner: `criterion_group!(name, fn_a, fn_b)`
/// expands to `fn name()` that calls each benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                let mut criterion = $crate::Criterion::default();
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of [`std::hint::black_box`] for upstream-compatible imports.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
