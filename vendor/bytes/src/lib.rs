//! Offline drop-in subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *small* slice of the `bytes` API it actually uses
//! (little-endian get/put accessors plus the `BytesMut` → `Bytes` freeze
//! flow) as plain-`Vec<u8>` wrappers. Semantics match upstream for that
//! subset; anything fancier (refcounted splitting, `Buf` chains) is
//! deliberately absent. See `vendor/README.md`.

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous byte cursor.
///
/// Implemented for `&[u8]`: every `get_*` consumes from the front of the
/// slice, and `remaining` reports what is left. Like upstream, the `get_*`
/// methods panic when fewer bytes remain than requested — callers are
/// expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes and returns the next 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consumes and returns the next 16 bytes as a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128;
    /// Consumes and returns the next 8 bytes as a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    #[inline]
    fn get_u128_le(&mut self) -> u128 {
        let (head, rest) = self.split_at(16);
        *self = rest;
        u128::from_le_bytes(head.try_into().expect("16 bytes"))
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        f64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u128` in little-endian order.
    fn put_u128_le(&mut self, v: u128);
    /// Appends an `f64` in little-endian order.
    fn put_f64_le(&mut self, v: f64);
}

/// An immutable byte buffer (here: an owned `Vec<u8>` behind `Deref`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u128_le(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u128_le(&mut self, v: u128) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(29);
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u128_le(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 16 + 8);

        let mut data = &frozen[..];
        assert_eq!(data.get_u8(), 0xAB);
        assert_eq!(data.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(data.get_u128_le(), 0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        assert_eq!(data.get_f64_le(), -1.5);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    fn little_endian_layout_matches_upstream() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0x0403_0201);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn get_past_end_panics() {
        let mut data: &[u8] = &[1, 2];
        let _ = data.get_u32_le();
    }
}
