//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of the proptest API its tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range / `any` /
//! tuple / `prop::collection::vec` strategies, [`Strategy::prop_map`],
//! `prop::sample::Index`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and panics;
//!   inputs are deterministic per test name, so failures still reproduce
//!   exactly on re-run.
//! * **No persistence / env config.** Case counts come only from
//!   `ProptestConfig::with_cases`.
//! * `prop_assert*` panics instead of returning `Err`, which is
//!   equivalent under the default test harness.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    ///
    /// Upstream strategies produce value *trees* that support shrinking;
    /// this subset only generates, so a strategy is just a seeded sampler.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy that applies `map` to every generated value.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
        )*};
    }

    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A => 0);
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

    /// Types with a canonical "any value" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::prop::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::prop::sample::Index::new(rng.next_u64())
        }
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! Strategy constructors, namespaced as upstream exposes them.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// A collection-size specification: a fixed length or a
        /// half-open range of lengths.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { min: r.start, max: r.end }
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// The strategy of `Vec`s whose elements come from `element` and
        /// whose length lies in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    pub mod sample {
        //! Sampling helper types.

        /// An abstract index into any not-yet-known collection: draw one
        /// `Index`, then project it onto a concrete length with
        /// [`Index::index`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            pub(crate) fn new(raw: u64) -> Self {
                Index(raw)
            }

            /// This index projected onto a collection of length `len`.
            /// Panics if `len` is zero, as upstream does.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation for [`crate::proptest!`].

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The per-test random stream: SplitMix64 seeded from the test's
    /// fully-qualified name, so every property sees the same inputs on
    /// every run (there is no shrinking; determinism is the repro story).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The deterministic stream for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs, as upstream lays it out.

    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(binding in strategy, ..)` body
/// runs once per generated case.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in 0u32..100) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut proptest_rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _proptest_case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        ),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting the formatted message
/// on failure. Panics (upstream returns `Err`; equivalent under the
/// default harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -50i32..50, z in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-50..50).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z), "z = {z}");
        }

        #[test]
        fn vec_lengths_respect_size_range(
            fixed in prop::collection::vec(any::<bool>(), 5),
            ranged in prop::collection::vec(any::<u32>(), 1..9),
        ) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((1..9).contains(&ranged.len()));
        }

        #[test]
        fn index_projects_into_collections(i in any::<prop::sample::Index>()) {
            for len in [1usize, 2, 17, 1000] {
                prop_assert!(i.index(len) < len);
            }
        }

        #[test]
        fn tuples_and_map_compose(
            pairs in prop::collection::vec(
                (0usize..10, any::<prop::sample::Index>(), any::<prop::sample::Index>()),
                1..20,
            ),
            mut acc in any::<u64>(),
        ) {
            let mapped = pairs.len();
            for (k, a, b) in pairs {
                prop_assert!(k < 10);
                acc = acc.wrapping_add((a.index(7) + b.index(7) + k) as u64);
            }
            prop_assert!(mapped >= 1);
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        use crate::test_runner::TestRng;
        let strat = (0usize..5).prop_map(|x| x * 2);
        let mut rng = TestRng::for_test("prop_map_transforms_values");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn same_test_name_replays_same_stream() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("replay");
        let mut b = TestRng::for_test("replay");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
