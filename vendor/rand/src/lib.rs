//! Offline drop-in subset of the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of the `rand` API it uses: a seedable
//! [`rngs::StdRng`], the [`RngExt`] convenience methods (`random`,
//! `random_range`) and an entropy-seeded [`make_rng`]. The generator is a
//! SplitMix64 stream — statistically solid for tests and simulation, *not*
//! cryptographic. `pytfhe-tfhe` only consumes it through `SecureRng`, which
//! documents the same caveat. See `vendor/README.md`.

use std::ops::Range;

pub mod rngs {
    //! Concrete generator types.

    /// The workspace's standard PRNG: a SplitMix64 stream.
    ///
    /// Deterministic for a given seed, `u64`-equidistributed, and fast;
    /// not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Low-level random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): increment a Weyl sequence
        // and scramble it with the mix function.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// A deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types [`RngExt::random`] can produce with their standard distribution
/// (uniform for integers and `bool`; uniform in `[0, 1)` for floats).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits (every value is exactly
    /// representable).
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range. Panics if empty, like
    /// upstream.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                // Modulo bias is < width/2^64: irrelevant at test scale.
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[inline]
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    #[inline]
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, in the style of `rand 0.9`'s `Rng`.
pub trait RngExt: RngCore {
    /// One value of `T` from its standard distribution.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// One value drawn uniformly from `range`.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// An entropy-seeded [`StdRng`], distinct across calls and processes.
///
/// Mixes the OS clock with `RandomState`'s per-instance keys (the only
/// std entropy source) and a process-local counter so rapid successive
/// calls still diverge.
pub fn make_rng() -> StdRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    let mut hasher = RandomState::new().build_hasher();
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    hasher.write_u64(u64::from(nanos));
    hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    StdRng::seed_from_u64(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn entropy_rngs_differ() {
        let mut a = make_rng();
        let mut b = make_rng();
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.random_range(-50i32..50);
            assert!((-50..50).contains(&s));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn u32_buckets_are_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            let x: u32 = rng.random();
            buckets[(x >> 29) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
