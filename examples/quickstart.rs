//! Quickstart: the full PyTFHE pipeline on a half adder, end to end on
//! real ciphertexts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the exact flow of the paper's Figure 2: build a circuit,
//! assemble the 128-bit PyTFHE binary, ship ciphertexts to an untrusted
//! "server", evaluate homomorphically, decrypt on the client.

use pytfhe::prelude::*;
use pytfhe_telemetry as telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Compile: a half adder (the paper's Figure 6 example). --------
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let sum = nl.add_gate(GateKind::Xor, a, b)?;
    let carry = nl.add_gate(GateKind::And, a, b)?;
    nl.mark_output(sum)?;
    nl.mark_output(carry)?;

    // --- Assemble into the PyTFHE binary format and reload. -----------
    let binary = pytfhe_asm::assemble(&nl);
    println!("PyTFHE binary ({} bytes):\n{}", binary.len(), pytfhe_asm::dump(&binary)?);
    let program = pytfhe_asm::disassemble(&binary)?;

    // --- Key generation (client side). ---------------------------------
    // NOTE: `Params::testing()` is an insecure miniature parameter set so
    // this example runs in a second; switch to `Params::default_128()`
    // for the paper's 128-bit setting (a few seconds of key generation,
    // ~0.1 s per gate on one core).
    let mut client = Client::new(Params::testing(), 0xC0FFEE);
    let server = Server::new(client.make_server_key());

    // --- Encrypt, evaluate blindly, decrypt. ---------------------------
    for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
        let inputs = client.encrypt_bits(&[x, y]);
        let outputs = server.execute(&program, &inputs, 2)?;
        let bits = client.decrypt_bits(&outputs);
        println!(
            "{} + {} = sum {}, carry {}",
            u8::from(x),
            u8::from(y),
            u8::from(bits[0]),
            u8::from(bits[1])
        );
        assert_eq!(bits[0], x ^ y);
        assert_eq!(bits[1], x && y);
    }
    println!("homomorphic half adder verified on all four input combinations");

    // --- Observability: with PYTFHE_TRACE=1 the whole pipeline above
    // recorded spans; export them for chrome://tracing / ui.perfetto.dev
    // along with the per-gate-kind bootstrap metrics.
    if telemetry::enabled() {
        let events = telemetry::drain();
        let snapshot = telemetry::metrics().snapshot();
        println!("\n{}", telemetry::export::summary_table(&events, &snapshot));
        let path = "results/trace_quickstart.json";
        telemetry::export::write_chrome_trace(path, &events)?;
        println!("wrote Chrome trace to {path}");
    }
    Ok(())
}
