//! A tour of the VIP-Bench workloads: compiles every benchmark, checks
//! it against its plaintext oracle, and runs one of them homomorphically.
//!
//! ```text
//! cargo run --release --example vipbench_tour
//! ```

use pytfhe::prelude::*;
use pytfhe::pytfhe_backend::sim::ProgramProfile;
use pytfhe_vipbench::{benchmarks, find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<14} {:>8} {:>7} {:>9}   description", "benchmark", "gates", "depth", "avg width");
    println!("{}", "-".repeat(78));
    for b in benchmarks(Scale::Test) {
        let input = b.sample_input(1);
        b.check_detailed(&input).map_err(|e| format!("oracle mismatch: {e}"))?;
        let profile = ProgramProfile::of(b.netlist());
        let depth = profile.depth();
        let width = profile.total_bootstrapped() as f64 / depth.max(1) as f64;
        println!(
            "{:<14} {:>8} {:>7} {:>9.1}   {}",
            b.name(),
            profile.total_bootstrapped(),
            depth,
            width,
            b.description()
        );
    }
    println!("\nall benchmarks verified against their plaintext oracles");

    // Homomorphic spot check: the Hamming-distance workload on real
    // ciphertexts.
    let bench = find("Hamming", Scale::Test).expect("registered");
    let input = bench.sample_input(42);
    let mut client = Client::new(Params::testing(), 99);
    let server = Server::new(client.make_server_key());
    let enc = client.encrypt_bits(&bench.encode_input(&input));
    println!(
        "\nrunning {} homomorphically ({} gates)...",
        bench.name(),
        bench.netlist().num_bootstrapped_gates()
    );
    let out = server.execute(bench.netlist(), &enc, 4)?;
    let got = bench.decode_output(&client.decrypt_bits(&out));
    let want = bench.oracle(&input);
    println!("encrypted Hamming distance: {got:?}, oracle: {want:?}");
    assert_eq!(got, want);
    println!("encrypted result matches the oracle");
    Ok(())
}
