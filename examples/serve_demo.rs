//! Multi-tenant serving demo: one in-process serving front, several
//! concurrent client sessions over in-memory duplex transports, each
//! tenant with its own key and its own programs — all verified
//! bit-exact against plaintext evaluation.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::sync::Arc;

use pytfhe_backend::DiskStore;
use pytfhe_netlist::{Netlist, ALL_GATE_KINDS};
use pytfhe_serve::{duplex, ServeClient, ServeConfig, ServeError, ServeHandle};
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::io::server_key_to_bytes;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};

/// A deterministic random DAG over every gate kind.
fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
    };
    let mut nl = Netlist::new();
    let mut pool: Vec<_> = (0..inputs).map(|_| nl.add_input()).collect();
    for _ in 0..gates {
        let kind = ALL_GATE_KINDS[next(ALL_GATE_KINDS.len())];
        let a = pool[next(pool.len())];
        let b = pool[next(pool.len())];
        pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
    }
    nl.mark_output(*pool.last().unwrap()).unwrap();
    nl.mark_output(pool[pool.len() / 2]).unwrap();
    nl
}

fn counter(name: &str) -> u64 {
    telemetry::metrics().snapshot().counters.get(name).copied().unwrap_or(0)
}

fn main() {
    const TENANTS: u64 = 3;
    const JOBS_PER_TENANT: u64 = 2;

    let store_dir = std::env::temp_dir().join(format!("pytfhe-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = DiskStore::open(&store_dir).expect("open serve store");

    let config = ServeConfig {
        max_sessions: TENANTS as usize,
        tenant_quota: 4,
        max_wave: 32,
        key_cache_capacity: 2,
    };
    println!(
        "serving front: {} sessions max, quota {}, wave {}, key cache {}",
        config.max_sessions, config.tenant_quota, config.max_wave, config.key_cache_capacity
    );
    let front = Arc::new(ServeHandle::start(config, Some(store)));

    // Each tenant: own key, own session thread, own programs.
    let mut workers = Vec::new();
    for tenant in 0..TENANTS {
        let front = Arc::clone(&front);
        workers.push(std::thread::spawn(move || {
            let params = Params::testing();
            let mut rng = SecureRng::seed_from_u64(1000 + tenant);
            let ck = ClientKey::generate(params, &mut rng);
            let key_bytes = server_key_to_bytes(&ck.server_key(&mut rng));

            let (near, far) = duplex();
            front.attach(far).expect("admitted");
            let mut client = ServeClient::new(near);
            let fingerprint = client.install_key(&key_bytes).expect("install key");

            for job in 0..JOBS_PER_TENANT {
                let nl = random_netlist(77 * tenant + job + 1, 6, 24);
                let bits: Vec<bool> = (0..6).map(|_| rng.bit()).collect();
                let inputs = ck.encrypt_bits(&bits, &mut rng);
                let outputs = client.run(fingerprint, &nl, &inputs, &params).expect("run job");
                let got = ck.decrypt_bits(&outputs);
                let want = nl.eval_plain(&bits);
                assert_eq!(got, want, "tenant {tenant} job {job} diverged from plaintext");
                println!("tenant {tenant} job {job}: {} gates, bit-exact ✓", nl.num_gates());
            }
            client.close().expect("clean close");
        }));
    }
    for worker in workers {
        worker.join().expect("tenant worker");
    }

    // One extra attach beyond max_sessions is rejected, typed.
    let holders: Vec<_> = (0..TENANTS)
        .map(|_| {
            let (near, far) = duplex();
            front.attach(far).expect("admitted");
            near
        })
        .collect();
    let (_, far) = duplex();
    match front.attach(far) {
        Err(ServeError::Overloaded { live, max }) => {
            println!("admission control: rejected session {} of max {max} ✓", live + 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(holders);

    println!(
        "telemetry: {} waves, {} gates batched, {} key installs, {} cache hits, {} rehydrations",
        counter("serve_waves_total"),
        counter("serve_gates_batched_total"),
        counter("serve_keys_installed_total"),
        counter("serve_key_cache_hits_total"),
        counter("serve_key_cache_rehydrations_total"),
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("serve demo OK: {TENANTS} tenants x {JOBS_PER_TENANT} jobs, all bit-exact");
}
