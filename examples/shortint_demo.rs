//! Shortint walkthrough: exact multi-bit integers over TFHE, and the
//! LUT cone-cover pass that gives plain boolean netlists the same
//! single-bootstrap economics.
//!
//! ```text
//! cargo run --release --example shortint_demo
//! ```
//!
//! Everything is priced in *programmable bootstraps* (PBS) — the unit
//! the whole codebase measures cost in. The demo prints the measured
//! PBS count next to each operation so the claims are checkable.

use pytfhe_backend::{execute, netlist_bootstraps, PlainEngine};
use pytfhe_hdl::Circuit;
use pytfhe_netlist::opt::{lut_cover, LutCoverConfig};
use pytfhe_shortint::{ShortintClientKey, ShortintParams};
use pytfhe_tfhe::{NoiseGuard, Params, SecureRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SecureRng::from_entropy();

    // --- Key generation is gated by the noise model -------------------
    // The boolean-grade testing parameters cannot decode a 4-bit window;
    // the guard refuses them with a typed error instead of generating
    // keys that would corrupt results silently.
    let refused = ShortintClientKey::generate(
        ShortintParams::message_2_carry_2(),
        Params::testing(),
        &NoiseGuard::default(),
        &mut rng,
    );
    println!("testing params for 4-bit window: {}", refused.expect_err("refused"));

    // `testing_shortint` is the miniature set that *does* admit 4-bit
    // LUTs (use `Params::shortint_128()` for real security).
    let client = ShortintClientKey::generate(
        ShortintParams::message_2_carry_2(),
        Params::testing_shortint(),
        &NoiseGuard::default(),
        &mut rng,
    )?;
    let mut server = client.server_key(&mut rng);

    // --- One digit: linear adds, single-bootstrap everything else -----
    let a = client.encrypt(3, &mut rng)?;
    let b = client.encrypt(2, &mut rng)?;

    server.reset_stats();
    let sum = server.add(&a, &b);
    println!("3 + 2  = {}   ({} PBS)", client.decrypt(&sum), server.stats().bootstraps);

    server.reset_stats();
    let prod = server.mul_low(&a, &b)?;
    println!("3 * 2  = {} mod 4   ({} PBS)", client.decrypt(&prod), server.stats().bootstraps);

    server.reset_stats();
    let bigger = server.max(&a, &b)?;
    println!("max(3,2) = {}   ({} PBS)", client.decrypt(&bigger), server.stats().bootstraps);

    server.reset_stats();
    let cube = server.apply_lut(&a, |v| (v * v * v) % 16);
    println!("3^3 mod 16 = {}   ({} PBS)", client.decrypt(&cube), server.stats().bootstraps);

    // --- Wide integers as radix vectors -------------------------------
    let x = client.encrypt_radix(200, 4, &mut rng)?; // 4 digits x 2 bits = 8-bit
    let y = client.encrypt_radix(100, 4, &mut rng)?;
    server.reset_stats();
    let z = server.add_radix(&x, &y)?;
    let radix_pbs = server.stats().bootstraps;

    // The boolean baseline computing the same 8-bit add.
    let mut c = Circuit::new();
    let wa = c.input_word("a", 8);
    let wb = c.input_word("b", 8);
    let ws = c.add(&wa, &wb);
    c.output_word("sum", &ws);
    let boolean_pbs = netlist_bootstraps(&c.finish()?);
    println!(
        "200 + 100 = {} mod 256   ({radix_pbs} PBS vs {boolean_pbs} for the boolean adder)",
        client.decrypt_radix(&z)
    );

    // --- Boolean netlists get the same economics for free -------------
    // `lut_cover` fuses gate cones into single-bootstrap LUT nodes; the
    // lowered netlist computes bit-identical outputs on every executor.
    let bench =
        pytfhe_vipbench::find("Parrando", pytfhe_vipbench::Scale::Test).expect("workload exists");
    let nl = bench.netlist();
    let (lowered, report) = lut_cover(nl, &LutCoverConfig::default())?;
    println!("\nParrando lowered: {report}");

    let bits = bench.encode_input(&bench.sample_input(7));
    let (out, stats) = execute(&PlainEngine::new(), &lowered, &bits)?;
    assert_eq!(out, nl.eval_plain(&bits), "lowered netlist must stay bit-exact");
    println!(
        "bit-exact on the plaintext engine: {} bootstraps instead of {} ({:.2}x)",
        stats.bootstraps,
        netlist_bootstraps(nl),
        netlist_bootstraps(nl) as f64 / stats.bootstraps as f64
    );
    Ok(())
}
