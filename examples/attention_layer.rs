//! A self-attention layer over encrypted activations — the paper's
//! demonstration that ChiselTorch builds "non-native complicated neural
//! network structures with the provided primitives" (Section V-A,
//! `Attention_S`/`Attention_L`).
//!
//! ```text
//! cargo run --release --example attention_layer
//! ```
//!
//! The layer is composed purely of Table I primitives: `matmul`,
//! `transpose`, elementwise ops and division. Encrypted evaluation runs
//! on a miniature instance; the paper-scale netlist sizes are printed
//! for reference.

use pytfhe::prelude::*;
use pytfhe::pytfhe_netlist::NetlistStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dtype = DType::Fixed { width: 14, frac: 7 };
    let (seq, hidden) = (2usize, 4usize);
    let model = nn::Sequential::new(dtype).add(nn::SelfAttention::new(seq, hidden));
    let compiled = chiseltorch::compile(&model, &[seq, hidden])?;
    println!(
        "self-attention ({seq} tokens x {hidden} dims): {}",
        NetlistStats::of(compiled.netlist())
    );

    // Token embeddings to attend over.
    let tokens: Vec<f64> = vec![0.5, -0.25, 1.0, 0.125, -0.5, 0.75, 0.25, -1.0];
    let plain = compiled.eval_plain(&tokens);
    println!("plaintext attention output: {plain:?}");

    let mut client = Client::new(Params::testing(), 11);
    let server = Server::new(client.make_server_key());
    let enc = client.encrypt_values(&tokens, dtype);
    println!(
        "attending homomorphically over {} gates...",
        compiled.netlist().num_bootstrapped_gates()
    );
    let start = std::time::Instant::now();
    let out = server.execute(compiled.netlist(), &enc, 4)?;
    println!("done in {:.1} s", start.elapsed().as_secs_f64());
    let got = client.decrypt_values(&out, dtype);
    println!("decrypted attention output: {got:?}");
    for (g, p) in got.iter().zip(&plain) {
        assert!((g - p).abs() < 1e-9, "encrypted run must equal the functional run");
    }
    println!("encrypted attention output matches the compiled circuit exactly");
    Ok(())
}
