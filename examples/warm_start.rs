//! Warm start: rebuild a server session from its durable store.
//!
//! ```text
//! cargo run --release --example warm_start -- /tmp/pytfhe-store
//! cargo run --release --example warm_start -- /tmp/pytfhe-store   # warm
//! ```
//!
//! The first run is a *cold start*: the client ships the evaluation
//! key, the server persists it (and the captured kernel plan) to the
//! store directory. The second run never sees the key on the wire — the
//! server warm-starts from disk, the plan cache is pre-populated, and
//! the telemetry counters printed at the end prove it: zero keys
//! installed, zero plans captured.

use pytfhe::prelude::*;
use pytfhe_telemetry as telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("pytfhe-warm-start"));
    println!("durable store: {}", dir.display());

    // A half adder, as in the quickstart.
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let sum = nl.add_gate(GateKind::Xor, a, b)?;
    let carry = nl.add_gate(GateKind::And, a, b)?;
    nl.mark_output(sum)?;
    nl.mark_output(carry)?;

    // The client is deterministic here so a later process can decrypt
    // under the key an earlier process installed. (A real deployment
    // would keep the client key somewhere safe instead.)
    let mut client = Client::new(Params::testing(), 0xC0FFEE);

    // Warm-start if the store already holds a key; otherwise install.
    let store = DiskStore::open(&dir)?;
    let (server, mode) = match Server::warm_start(store)? {
        Some(server) => (server, "warm"),
        None => {
            let store = DiskStore::open(&dir)?;
            (Server::with_store(client.make_server_key(), store)?, "cold")
        }
    };
    println!("{mode} start");

    for (x, y) in [(false, true), (true, true)] {
        let inputs = client.encrypt_bits(&[x, y]);
        let (outputs, stats) = server.execute_graph(&nl, &inputs, 2)?;
        let bits = client.decrypt_bits(&outputs);
        assert_eq!(bits[0], x ^ y);
        assert_eq!(bits[1], x && y);
        println!(
            "{} + {} = sum {}, carry {} (plan {})",
            u8::from(x),
            u8::from(y),
            u8::from(bits[0]),
            u8::from(bits[1]),
            if stats.plan_cached { "cached" } else { "captured" },
        );
    }

    // The counters CI asserts on: a warm run installs no key and
    // captures no plan.
    let counters = telemetry::metrics().snapshot().counters;
    for name in [
        "session_keys_installed_total",
        "session_keys_warm_started_total",
        "session_plans_captured_total",
        "session_plans_warm_loaded_total",
    ] {
        println!("{name}={}", counters.get(name).copied().unwrap_or(0));
    }
    Ok(())
}
