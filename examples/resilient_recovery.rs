//! Fault-tolerant execution: crash every worker mid-run, then resume
//! from the last wave-barrier checkpoint instead of restarting.
//!
//! ```text
//! cargo run --release --example resilient_recovery
//! ```
//!
//! The paper's distributed backend rides on Ray's fault tolerance; this
//! walks our equivalent: a 4-bit encrypted adder is interrupted by a
//! scripted full-cluster crash, its ciphertext frontier survives in a
//! file-backed checkpoint, and a second "process" finishes the run with
//! bit-identical results.

use pytfhe::prelude::*;
use pytfhe_backend::{ExecError, FileCheckpointStore, NoFaults, ResilientConfig, SeededFaults};
use pytfhe_hdl::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Compile a 4-bit adder and pick the wave to kill. --------------
    let mut c = Circuit::new();
    let a = c.input_word_anon(4);
    let b = c.input_word_anon(4);
    let sum = c.add_wide_unsigned(&a, &b);
    c.output_word("sum", &sum);
    let nl = c.finish()?;
    let last_wave = pytfhe_netlist::topo::Levels::compute(&nl).depth() as usize;

    // --- Encrypt 11 + 6 on the client. ----------------------------------
    let mut client = Client::new(Params::testing(), 0xFA117);
    let server = Server::new(client.make_server_key());
    let (x, y) = (11u8, 6u8);
    let bits: Vec<bool> =
        (0..4).map(|i| (x >> i) & 1 == 1).chain((0..4).map(|i| (y >> i) & 1 == 1)).collect();
    let inputs = client.encrypt_bits(&bits);

    // --- Run 1: every worker crashes at the final wave. -----------------
    let ckpt_path = std::env::temp_dir().join("pytfhe-resilient-recovery.ckpt");
    let _ = std::fs::remove_file(&ckpt_path);
    let workers = 2;
    let cfg = ResilientConfig::new(workers);
    let mut faults = SeededFaults::new(1).with_fail_prob(0.05);
    for w in 0..workers {
        faults = faults.with_worker_crash(w, last_wave);
    }
    let mut store = FileCheckpointStore::new(&ckpt_path);
    match server.execute_resilient(&nl, &inputs, &cfg, &faults, Some(&mut store)) {
        Err(ExecError::NoWorkers { wave }) => {
            println!("run 1: all {workers} workers crashed in wave {wave} (as scripted)");
        }
        other => panic!("expected a full-cluster crash, got {other:?}"),
    }
    let saved = std::fs::metadata(&ckpt_path)?.len();
    println!("run 1: {saved}-byte ciphertext checkpoint survives at {}", ckpt_path.display());

    // --- Run 2: a fresh store handle on the same file resumes. ----------
    let mut store = FileCheckpointStore::new(&ckpt_path);
    let (outputs, stats) =
        server.execute_resilient(&nl, &inputs, &cfg, &NoFaults, Some(&mut store))?;
    println!(
        "run 2: resumed after wave {}, re-ran {} wave(s), {} retried task(s) in run 1's shadow",
        stats.resumed_from_wave.expect("resumed"),
        stats.waves,
        stats.retries,
    );
    println!("run 2 stats:\n{stats}");

    // --- Decrypt and check. ---------------------------------------------
    let out_bits = client.decrypt_bits(&outputs);
    let got: u8 = out_bits.iter().enumerate().fold(0, |acc, (i, &bit)| acc | (u8::from(bit) << i));
    println!("decrypted: {x} + {y} = {got}");
    assert_eq!(got, x + y, "resumed run must be bit-identical");
    std::fs::remove_file(&ckpt_path)?;
    println!("recovered run verified bit-identical to the fault-free result");
    Ok(())
}
