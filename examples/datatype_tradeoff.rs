//! The ChiselTorch data-type knob: accuracy vs gate count (Section IV-B
//! of the paper: "choosing a cheaper data type may result in a reduction
//! in the number of gates by orders of magnitude").
//!
//! ```text
//! cargo run --release --example datatype_tradeoff
//! ```
//!
//! Compiles the same model under several `SInt`/`Fixed`/`Float` types
//! and reports gate count (∝ runtime: every gate is one bootstrap) next
//! to the quantization error against the f64 reference.

use pytfhe::chiseltorch::nn::Module;
use pytfhe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Integer dtypes are omitted: this model's sub-unit weights would all
    // quantize to zero under SInt; integer models need integer-scaled
    // weights.
    let dtypes = [
        DType::Fixed { width: 8, frac: 4 },
        DType::Fixed { width: 12, frac: 6 },
        DType::Fixed { width: 16, frac: 8 },
        DType::Float { exp: 5, man: 4 },
        DType::Float { exp: 8, man: 8 }, // the paper's Float(8, 8) bfloat16
        DType::Float { exp: 5, man: 11 }, // the paper's Float(5, 11) half
    ];
    let input: Vec<f64> = (0..16).map(|i| (f64::from(i) - 8.0) / 5.0).collect();

    println!("{:<16} {:>10} {:>10} {:>12}", "dtype", "gates", "depth", "rms error");
    println!("{}", "-".repeat(52));
    for dtype in dtypes {
        let model = nn::Sequential::new(dtype).add(nn::ReLU::new()).add(nn::Linear::new(16, 4));
        let compiled = chiseltorch::compile(&model, &[16])?;
        // f64 reference on the same weights.
        let reference = model.forward_plain(&PlainTensor::from_vec(&[16], input.clone())?)?;
        let got = compiled.eval_plain(&input);
        let rms = (got.iter().zip(reference.data()).map(|(g, r)| (g - r) * (g - r)).sum::<f64>()
            / got.len() as f64)
            .sqrt();
        let stats = pytfhe::pytfhe_netlist::NetlistStats::of(compiled.netlist());
        println!(
            "{:<16} {:>10} {:>10} {:>12.5}",
            dtype.to_string(),
            stats.bootstrapped_gates,
            stats.depth,
            rms
        );
    }
    println!(
        "\nEvery gate costs one bootstrapping (~13 ms on one core, Figure 7), so the gate\ncolumn is the runtime column; pick the narrowest type whose error your model absorbs."
    );
    Ok(())
}
