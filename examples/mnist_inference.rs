//! Privacy-preserving MNIST-style inference — the paper's flagship use
//! case (Figure 4): declare a CNN in the ChiselTorch API, compile it to
//! a TFHE program, and run encrypted inference.
//!
//! ```text
//! cargo run --release --example mnist_inference
//! ```
//!
//! A miniature model and insecure test parameters keep the homomorphic
//! run short; the printed netlist statistics show what the paper-scale
//! models look like.

use pytfhe::prelude::*;
use pytfhe::pytfhe_netlist::NetlistStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 4 model shape, miniaturized (6x6 "image", 4 classes).
    let dtype = DType::Fixed { width: 10, frac: 5 };
    let model = nn::Sequential::new(dtype)
        .add(nn::Conv2d::new(1, 1, 3, 1))
        .add(nn::ReLU::new())
        .add(nn::MaxPool2d::new(2, 1))
        .add(nn::Flatten::new())
        .add(nn::Linear::new(9, 4));

    let compiled = chiseltorch::compile(&model, &[1, 6, 6])?;
    println!("compiled MNIST-style model: {}", NetlistStats::of(compiled.netlist()));

    // A fake "handwritten digit".
    let image: Vec<f64> = (0..36).map(|i| f64::from(u32::from(i % 5 == 0))).collect();

    // Plaintext reference logits.
    let plain_logits = compiled.eval_plain(&image);
    let plain_argmax = argmax(&plain_logits);
    println!("plaintext logits: {plain_logits:?} -> class {plain_argmax}");

    // Encrypted inference (insecure test parameters for speed; use
    // Params::default_128() for the real 128-bit setting).
    let mut client = Client::new(Params::testing(), 7);
    let server = Server::new(client.make_server_key());
    let enc_image = client.encrypt_values(&image, dtype);
    println!(
        "running {} bootstrapped gates homomorphically...",
        compiled.netlist().num_bootstrapped_gates()
    );
    let start = std::time::Instant::now();
    let enc_logits = server.execute(compiled.netlist(), &enc_image, 4)?;
    println!("done in {:.1} s", start.elapsed().as_secs_f64());
    let logits = client.decrypt_values(&enc_logits, dtype);
    let class = argmax(&logits);
    println!("decrypted logits: {logits:?} -> class {class}");
    assert_eq!(class, plain_argmax, "encrypted inference agrees with plaintext");
    println!("encrypted classification matches the plaintext model");
    Ok(())
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}
