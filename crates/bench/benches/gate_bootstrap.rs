//! Microbenchmarks of the real TFHE primitives: gate bootstrapping at
//! both parameter scales — the per-gate cost that anchors every
//! performance number in the paper (Figure 7).

use criterion::{criterion_group, criterion_main, Criterion};
use pytfhe_tfhe::reference::RefBootstrappingKey;
use pytfhe_tfhe::{ClientKey, Params, SecureRng, Torus32};
use std::hint::black_box;

fn bench_gates(c: &mut Criterion) {
    // Miniature (insecure) parameters: algorithmic shape without the
    // 128-bit cost.
    let mut rng = SecureRng::seed_from_u64(1);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(false, &mut rng);
    let mut scratch = server.gate_scratch();
    c.bench_function("nand_gate_testing_params", |bench| {
        bench.iter(|| black_box(server.nand_with(black_box(&a), black_box(&b), &mut scratch)))
    });
    c.bench_function("mux_gate_testing_params", |bench| {
        bench.iter(|| black_box(server.mux_with(&a, &a, &b, &mut scratch)))
    });

    // Folded vs full-size bootstrap on the raw path: same key material,
    // transform halved. The reference key re-encrypts the same gate key
    // with the retired full-size FFT.
    let bk = server.bootstrapping_key();
    let mut boot_scratch = bk.boot_scratch();
    let mu = Torus32::from_fraction(1, 3);
    c.bench_function("bootstrap_raw_folded_testing_params", |bench| {
        bench.iter(|| black_box(bk.bootstrap_raw(black_box(&a), mu, &mut boot_scratch)))
    });
    let ref_bk = RefBootstrappingKey::from_client(&client, &mut rng);
    c.bench_function("bootstrap_raw_reference_testing_params", |bench| {
        bench.iter(|| black_box(ref_bk.bootstrap_raw(black_box(&a), mu)))
    });

    // The paper's 128-bit setting. Key generation is expensive, so keep
    // the sample count low.
    let mut rng = SecureRng::seed_from_u64(2);
    let client = ClientKey::generate(Params::default_128(), &mut rng);
    let server = client.server_key(&mut rng);
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(false, &mut rng);
    let mut scratch = server.gate_scratch();
    let mut group = c.benchmark_group("default_128");
    group.sample_size(10);
    group.bench_function("nand_gate", |bench| {
        bench.iter(|| black_box(server.nand_with(black_box(&a), black_box(&b), &mut scratch)))
    });
    group.bench_function("xor_gate", |bench| {
        bench.iter(|| black_box(server.xor_with(&a, &b, &mut scratch)))
    });
    group.finish();
}

criterion_group!(benches, bench_gates);
criterion_main!(benches);
