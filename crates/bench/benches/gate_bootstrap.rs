//! Microbenchmarks of the real TFHE primitives: gate bootstrapping at
//! both parameter scales — the per-gate cost that anchors every
//! performance number in the paper (Figure 7).

use criterion::{criterion_group, criterion_main, Criterion};
use pytfhe_tfhe::{ClientKey, Params, SecureRng};
use std::hint::black_box;

fn bench_gates(c: &mut Criterion) {
    // Miniature (insecure) parameters: algorithmic shape without the
    // 128-bit cost.
    let mut rng = SecureRng::seed_from_u64(1);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(false, &mut rng);
    let mut scratch = server.gate_scratch();
    c.bench_function("nand_gate_testing_params", |bench| {
        bench.iter(|| black_box(server.nand_with(black_box(&a), black_box(&b), &mut scratch)))
    });
    c.bench_function("mux_gate_testing_params", |bench| {
        bench.iter(|| black_box(server.mux_with(&a, &a, &b, &mut scratch)))
    });

    // The paper's 128-bit setting. Key generation is expensive, so keep
    // the sample count low.
    let mut rng = SecureRng::seed_from_u64(2);
    let client = ClientKey::generate(Params::default_128(), &mut rng);
    let server = client.server_key(&mut rng);
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(false, &mut rng);
    let mut scratch = server.gate_scratch();
    let mut group = c.benchmark_group("default_128");
    group.sample_size(10);
    group.bench_function("nand_gate", |bench| {
        bench.iter(|| black_box(server.nand_with(black_box(&a), black_box(&b), &mut scratch)))
    });
    group.bench_function("xor_gate", |bench| {
        bench.iter(|| black_box(server.xor_with(&a, &b, &mut scratch)))
    });
    group.finish();
}

criterion_group!(benches, bench_gates);
criterion_main!(benches);
