//! Microbenchmarks of the negacyclic FFT — the inner loop of blind
//! rotation (the "Blind Rotation" segment of Figure 7 is almost entirely
//! this).

use criterion::{criterion_group, criterion_main, Criterion};
use pytfhe_tfhe::fft::{FftPlan, FreqPoly};
use pytfhe_tfhe::poly::{IntPoly, TorusPoly};
use pytfhe_tfhe::reference::{RefFftPlan, RefFreqPoly};
use pytfhe_tfhe::SecureRng;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut rng = SecureRng::seed_from_u64(3);
    for n in [128usize, 1024] {
        let plan = FftPlan::new(n);
        let ip = IntPoly::binary(n, &mut rng);
        let tp = TorusPoly::uniform(n, &mut rng);
        let fa = plan.forward_int(&ip);
        let fb = plan.forward_torus(&tp);
        c.bench_function(&format!("forward_int_{n}"), |bench| {
            bench.iter(|| black_box(plan.forward_int(black_box(&ip))))
        });
        c.bench_function(&format!("inverse_torus_{n}"), |bench| {
            let mut acc = FreqPoly::zero(n);
            acc.add_mul_assign(&fa, &fb);
            bench.iter(|| black_box(plan.inverse_torus(black_box(&acc))))
        });
        c.bench_function(&format!("negacyclic_mul_{n}"), |bench| {
            bench.iter(|| black_box(plan.negacyclic_mul(black_box(&ip), black_box(&tp))))
        });
        c.bench_function(&format!("freq_mac_{n}"), |bench| {
            let mut acc = FreqPoly::zero(n);
            bench.iter(|| acc.add_mul_assign(black_box(&fa), black_box(&fb)))
        });

        // The retired full-size path, kept as a same-machine baseline for
        // the folded transform above.
        let ref_plan = RefFftPlan::new(n);
        let ra = ref_plan.forward_int(&ip);
        let rb = ref_plan.forward_torus(&tp);
        c.bench_function(&format!("forward_int_ref_{n}"), |bench| {
            bench.iter(|| black_box(ref_plan.forward_int(black_box(&ip))))
        });
        c.bench_function(&format!("inverse_torus_ref_{n}"), |bench| {
            let mut acc = RefFreqPoly::zero(n);
            acc.add_mul_assign(&ra, &rb);
            bench.iter(|| black_box(ref_plan.inverse_torus(black_box(&acc))))
        });
        c.bench_function(&format!("negacyclic_mul_ref_{n}"), |bench| {
            bench.iter(|| black_box(ref_plan.negacyclic_mul(black_box(&ip), black_box(&tp))))
        });
        c.bench_function(&format!("freq_mac_ref_{n}"), |bench| {
            let mut acc = RefFreqPoly::zero(n);
            bench.iter(|| acc.add_mul_assign(black_box(&ra), black_box(&rb)))
        });
    }
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
