//! Compilation-side benchmarks: ChiselTorch model compilation, netlist
//! optimization, and baseline lowering.

use chiseltorch::{compile, nn, DType};
use criterion::{criterion_group, criterion_main, Criterion};
use pytfhe_baselines::{lower_mnist, LoweringProfile, MnistScale};
use pytfhe_netlist::opt::{optimize, OptConfig};
use std::hint::black_box;

fn mnist_model() -> nn::Sequential {
    nn::Sequential::new(DType::Fixed { width: 12, frac: 6 })
        .add(nn::Conv2d::new(1, 1, 3, 1))
        .add(nn::ReLU::new())
        .add(nn::MaxPool2d::new(2, 1))
        .add(nn::Flatten::new())
        .add(nn::Linear::new(9, 4))
}

fn bench_compile(c: &mut Criterion) {
    let model = mnist_model();
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    group.bench_function("chiseltorch_mnist_tiny", |b| {
        b.iter(|| black_box(compile(&model, &[1, 6, 6]).expect("compiles")))
    });
    group.bench_function("baseline_lowering_pytfhe", |b| {
        b.iter(|| black_box(lower_mnist(&LoweringProfile::pytfhe(), MnistScale::Small)))
    });
    group.finish();

    // The optimizer on an unoptimized netlist.
    let raw = lower_mnist(&LoweringProfile::e3(), MnistScale::Small);
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    group.bench_function("full_pipeline_mnist_small", |b| {
        b.iter(|| black_box(optimize(&raw, &OptConfig::default()).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
