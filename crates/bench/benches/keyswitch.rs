//! Microbenchmark of LWE-to-LWE key switching — the second-largest cost
//! of a bootstrapped gate evaluation after blind rotation (Figure 7 of
//! the paper), and the loop the hoisted digit precompute in
//! `KeySwitchKey::switch_into` targets.

use criterion::{criterion_group, criterion_main, Criterion};
use pytfhe_tfhe::keyswitch::KeySwitchKey;
use pytfhe_tfhe::lwe::{LweCiphertext, LweKey};
use pytfhe_tfhe::simd::{self, SimdPath};
use pytfhe_tfhe::{ClientKey, Params, SecureRng, Torus32};
use std::hint::black_box;

fn bench_keyswitch(c: &mut Criterion) {
    let mut rng = SecureRng::seed_from_u64(5);

    // Standalone keys at the paper-default decomposition (t = 8,
    // base = 4), switching the extracted dimension down to the gate key.
    // Run once per supported SIMD path: the paired `sub_assign2`
    // accumulation in `switch_into` leans on the dispatched kernels, so
    // the scalar row here is the baseline the fused-pair + vector path
    // is measured against.
    for (src_dim, dst_dim) in [(1024usize, 630usize), (256, 64)] {
        let src = LweKey::generate(src_dim, &mut rng);
        let dst = LweKey::generate(dst_dim, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
        let ct = src.encrypt(Torus32::from_fraction(1, 3), 1e-9, &mut rng);
        let mut out = LweCiphertext::trivial(Torus32::ZERO, dst_dim);
        let restore = simd::active_path();
        for path in SimdPath::ALL.into_iter().filter(|p| p.is_supported()) {
            assert!(simd::set_active_path(path));
            c.bench_function(&format!("keyswitch_{src_dim}_to_{dst_dim}_{}", path.name()), |b| {
                b.iter(|| ksk.switch_into(black_box(&ct), &mut out))
            });
        }
        simd::set_active_path(restore);
    }

    // Through a real server key (the exact key material of a gate's
    // trailing key switch) at testing parameters.
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let ksk = server.keyswitch_key();
    let mask: Vec<Torus32> = (0..ksk.src_dim()).map(|_| Torus32::uniform(&mut rng)).collect();
    let ct = LweCiphertext::from_parts(mask, Torus32::from_fraction(1, 3));
    let mut out = LweCiphertext::trivial(Torus32::ZERO, ksk.dst_dim());
    c.bench_function("keyswitch_testing_params", |bench| {
        bench.iter(|| ksk.switch_into(black_box(&ct), &mut out))
    });
}

criterion_group!(benches, bench_keyswitch);
criterion_main!(benches);
