//! Executor throughput: the plaintext functional engine over real
//! compiled workloads (reference vs wavefront vs kernel-graph replay),
//! plus binary assembly/disassembly throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pytfhe_asm::{assemble, disassemble};
use pytfhe_backend::{
    capture, execute, execute_parallel, replay, CaptureConfig, PlainEngine, ReplayLanes,
};
use pytfhe_vipbench::{find, Scale};
use std::hint::black_box;

fn bench_executors(c: &mut Criterion) {
    let bench_wl = find("MNIST_S", Scale::Test).expect("registered");
    let nl = bench_wl.netlist().clone();
    let input_bits = bench_wl.encode_input(&bench_wl.sample_input(1));
    let engine = PlainEngine::new();
    let gates = nl.num_gates() as u64;

    let mut group = c.benchmark_group("plain_executor");
    group.throughput(Throughput::Elements(gates));
    group.bench_function("reference_mnist_s", |b| {
        b.iter(|| black_box(execute(&engine, &nl, black_box(&input_bits)).expect("ok")))
    });
    group.bench_function("wavefront4_mnist_s", |b| {
        b.iter(|| black_box(execute_parallel(&engine, &nl, black_box(&input_bits), 4).expect("ok")))
    });
    // The kernel-graph backend: plan capture measured on its own, then
    // replay of the already-captured plan with warm lanes — the
    // compile-once / run-many split the backend exists for.
    group.bench_function("kernel_graph_capture_mnist_s", |b| {
        b.iter(|| black_box(capture(&nl, &CaptureConfig::default()).expect("ok")))
    });
    let plan = capture(&nl, &CaptureConfig::default()).expect("ok");
    let mut lanes = ReplayLanes::new(&engine, 4);
    group.bench_function("kernel_graph_replay4_mnist_s", |b| {
        b.iter(|| {
            black_box(replay(&engine, &plan, black_box(&input_bits), &mut lanes).expect("ok"))
        })
    });
    group.finish();

    let binary = assemble(&nl);
    let mut group = c.benchmark_group("binary_format");
    group.throughput(Throughput::Bytes(binary.len() as u64));
    group.bench_function("assemble_mnist_s", |b| b.iter(|| black_box(assemble(&nl))));
    group.bench_function("disassemble_mnist_s", |b| {
        b.iter(|| black_box(disassemble(black_box(&binary)).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
