//! The PyTFHE reproduction harness.
//!
//! [`figures`] contains one function per table/figure of the paper's
//! evaluation (Section V), each printing the regenerated rows/series;
//! the `repro` binary dispatches to them by name (`repro fig10`,
//! `repro table4`, `repro all`). The Criterion microbenchmarks under
//! `benches/` measure the real primitives (FFT, gate bootstrap,
//! executors, compilation).

pub mod emit;
pub mod figures;
pub mod report;
