//! Minimal fixed-width table rendering for the reproduction reports.

/// A simple left-column + numeric-columns table printer.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = width[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 86400.0 {
        format!("{:.1} d", s / 86400.0)
    } else if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

/// Renders a horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "gates", "speedup"]);
        t.row(vec!["Hamming".into(), "123".into(), "4.5".into()]);
        t.row(vec!["MNIST_S".into(), "456789".into(), "17.4".into()]);
        let s = t.render();
        assert!(s.contains("Hamming"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.0132), "13.20 ms");
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(120.0), "2.0 min");
        assert_eq!(fmt_seconds(7200.0), "2.0 h");
        assert_eq!(fmt_seconds(172800.0), "2.0 d");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
    }
}
