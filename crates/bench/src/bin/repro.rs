//! `repro` — regenerate the tables and figures of the PyTFHE paper.
//!
//! ```text
//! repro <target> [--quick]
//!
//! targets: fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table4
//!          ablation kernel_graph fft simd serve shortint all
//!
//! `kernel_graph` additionally writes machine-readable timings to
//! `results/BENCH_kernel_graph.json`; `fft` writes the folded-vs-
//! reference transform and gate timings to `results/BENCH_fft.json`;
//! `simd` writes the scalar-vs-dispatched kernel timings to
//! `results/BENCH_simd.json`; `serve` writes the multi-tenant serving
//! throughput comparison to `results/BENCH_serve.json`; `shortint`
//! writes the LUT-lowering bootstrap reductions and exact-integer
//! operation costs to `results/BENCH_shortint.json`.
//! --quick: use the miniature Test/Small workload scales (fast; same
//!          qualitative shapes). Without it the Paper scales are built,
//!          which compiles multi-million-gate netlists and takes a few
//!          minutes.
//! ```

use pytfhe_baselines::MnistScale;
use pytfhe_bench::figures;
use pytfhe_vipbench::Scale;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let target = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();
    let scale = if quick { Scale::Test } else { Scale::Paper };
    let mscale = if quick { MnistScale::Small } else { MnistScale::Paper };
    let run = |name: &str| -> Option<String> {
        Some(match name {
            "fig6" => figures::fig6(),
            // Real measurement only in full mode (it key-generates
            // 128-bit material, ~10 s).
            "fig7" => figures::fig7(!quick),
            "fig8" => figures::fig8(),
            "fig9" => figures::fig9(),
            "fig10" => figures::fig10(scale),
            "fig11" => figures::fig11(scale),
            "fig12" => figures::fig12(mscale),
            "fig13" => figures::fig13(mscale),
            "fig14" => figures::fig14(mscale),
            "table4" => figures::table4(mscale),
            "ablation" => figures::ablation(),
            "kernel_graph" => {
                let (text, json) = figures::kernel_graph(scale);
                let path = "results/BENCH_kernel_graph.json";
                match std::fs::write(path, &json) {
                    Ok(()) => format!("{text}\nwrote {path}"),
                    Err(e) => format!("{text}\ncould not write {path}: {e}"),
                }
            }
            // Real measurement of the half-complex FFT rework; full mode
            // key-generates 128-bit material for the gate comparison.
            "fft" => {
                let (text, json) = figures::fft(!quick);
                let path = "results/BENCH_fft.json";
                match std::fs::write(path, &json) {
                    Ok(()) => format!("{text}\nwrote {path}"),
                    Err(e) => format!("{text}\ncould not write {path}: {e}"),
                }
            }
            // Scalar vs dispatched SIMD kernels; full mode key-generates
            // 128-bit material for the bootstrap comparison.
            "simd" => {
                let (text, json) = figures::simd(!quick);
                let path = "results/BENCH_simd.json";
                match std::fs::write(path, &json) {
                    Ok(()) => format!("{text}\nwrote {path}"),
                    Err(e) => format!("{text}\ncould not write {path}: {e}"),
                }
            }
            // Real measurement of the multi-tenant serving front vs a
            // stateless serial baseline on the same workload.
            "serve" => {
                let (text, json) = figures::serve(quick);
                let path = "results/BENCH_serve.json";
                match std::fs::write(path, &json) {
                    Ok(()) => format!("{text}\nwrote {path}"),
                    Err(e) => format!("{text}\ncould not write {path}: {e}"),
                }
            }
            // LUT cone-cover on VIP-Bench plus the shortint exact
            // integer API, verified bit-exact under real encryption;
            // full mode times a second encrypted workload.
            "shortint" => {
                let (text, json) = figures::shortint(quick);
                let path = "results/BENCH_shortint.json";
                match std::fs::write(path, &json) {
                    Ok(()) => format!("{text}\nwrote {path}"),
                    Err(e) => format!("{text}\ncould not write {path}: {e}"),
                }
            }
            _ => return None,
        })
    };
    let all = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table4",
        "ablation",
        "kernel_graph",
        "fft",
        "simd",
        "serve",
        "shortint",
    ];
    match target.as_str() {
        "all" => {
            for name in all {
                println!("{}", run(name).expect("known target"));
                println!("{}\n", "=".repeat(78));
            }
            ExitCode::SUCCESS
        }
        name => match run(name) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("usage: repro <{}|all> [--quick]", all.join("|"));
                ExitCode::FAILURE
            }
        },
    }
}
