//! One function per table/figure of the paper's evaluation section.
//!
//! Each function regenerates the corresponding experiment from the
//! actual compiled netlists plus the calibrated performance models and
//! returns the rendered report. EXPERIMENTS.md records the paper-vs-
//! reproduced comparison for every entry.

use crate::emit::BenchReport;
use crate::report::{bar, fmt_seconds, Table};
use pytfhe_asm::{assemble, dump};
use pytfhe_backend::cost::{CpuCostModel, GpuCostModel};
use pytfhe_backend::sim::{ClusterConfig, ClusterSim, GpuPolicy, GpuSim, ProgramProfile};
use pytfhe_baselines::{all_profiles, lower_mnist, ComparisonRow, LoweringProfile, MnistScale};
use pytfhe_netlist::{GateKind, Netlist, NetlistStats};
use pytfhe_tfhe::{ClientKey, Params, SecureRng};
use pytfhe_vipbench::{benchmarks, Scale};

/// Figure 6: the worked half-adder example of the binary format.
pub fn fig6() -> String {
    let mut nl = Netlist::new();
    let a = nl.add_input();
    let b = nl.add_input();
    let sum = nl.add_gate(GateKind::Xor, a, b).expect("gate");
    let carry = nl.add_gate(GateKind::And, a, b).expect("gate");
    nl.mark_output(sum).expect("output");
    nl.mark_output(carry).expect("output");
    let bin = assemble(&nl);
    let mut out = String::from("Figure 6 — PyTFHE binary encoding of a half adder\n\n");
    out.push_str(&dump(&bin).expect("valid binary"));
    out.push_str(&format!(
        "\n{} bytes, {} instructions of 128 bits each\n",
        bin.len(),
        bin.len() / 16
    ));
    out
}

/// Figure 7: profile of one bootstrapped gate on a single CPU core.
///
/// With `measure = true` a real 128-bit-parameter gate is key-generated
/// and timed on this machine; the calibrated paper model is always
/// printed for comparison.
pub fn fig7(measure: bool) -> String {
    let cost = CpuCostModel::paper();
    let mut out = String::from("Figure 7 — single-core profile of one bootstrapped gate\n\n");
    let total = cost.gate_s();
    let rows = [
        ("Blind rotation", cost.blind_rotation_s),
        ("Key switching", cost.key_switching_s),
        ("Linear/other", cost.other_s),
        ("Communication", cost.comm_s_per_gate()),
    ];
    out.push_str("calibrated model (paper testbed, Table II):\n");
    for (label, s) in rows {
        out.push_str(&format!(
            "  {label:<14} {:>9}  {:5.2}%  |{}|\n",
            fmt_seconds(s),
            s / (total + cost.comm_s_per_gate()) * 100.0,
            bar(s, total, 40)
        ));
    }
    out.push_str(&format!(
        "  total ≈ {} per gate; communication ≈ {:.3}% (paper: 0.094%)\n",
        fmt_seconds(total),
        cost.comm_s_per_gate() / (total + cost.comm_s_per_gate()) * 100.0
    ));
    if measure {
        let mut rng = SecureRng::seed_from_u64(1);
        let params = Params::default_128();
        let client = ClientKey::generate(params, &mut rng);
        let server = client.server_key(&mut rng);
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(false, &mut rng);
        // Warm up, then measure.
        let _ = server.profile_nand(&a, &b);
        let (_, p) = server.profile_nand(&a, &b);
        out.push_str("\nmeasured on this machine (real 128-bit gate, this Rust implementation):\n");
        out.push_str(&format!(
            "  blind rotation {:>9}   key switch {:>9}   linear {:>9}   total {:>9}\n",
            fmt_seconds(p.blind_rotation_s),
            fmt_seconds(p.key_switching_s),
            fmt_seconds(p.linear_s),
            fmt_seconds(p.total_s()),
        ));
    }
    out
}

/// Figure 8: the serialized per-gate execution flow of the cuFHE
/// baseline.
pub fn fig8() -> String {
    let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
    let t = sim.cufhe_timeline(4);
    let mut out = String::from(
        "Figure 8 — cuFHE gate-level dispatch: H2D / kernel / D2H serialized, CPU blocked\n\n",
    );
    out.push_str(&t.render(72));
    out.push_str(&format!(
        "\nmakespan {:.2} ms for 4 gates; GPU busy only {:.0}% of the time\n",
        t.makespan_s() * 1e3,
        t.lane_busy_s("GPU") / t.makespan_s() * 100.0
    ));
    out
}

/// Figure 9: the batched, overlapped CUDA-Graphs flow of the PyTFHE GPU
/// backend.
pub fn fig9() -> String {
    let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
    let t = sim.graphs_timeline(4, 100_000);
    let mut out = String::from(
        "Figure 9 — PyTFHE GPU backend: CUDA-graph batches; build of batch i+1 overlaps execution of batch i\n\n",
    );
    out.push_str(&t.render(72));
    out.push_str(&format!(
        "\nmakespan {:.1} s for 4 batches of 100k gates; GPU busy {:.0}% of the time\n",
        t.makespan_s(),
        t.lane_busy_s("GPU") / t.makespan_s() * 100.0
    ));
    out
}

/// The compiled suite with per-benchmark profiles, sorted ascending by
/// gate count (the x-axis order of Figure 10).
fn suite_profiles(scale: Scale) -> Vec<(String, ProgramProfile)> {
    let mut rows: Vec<(String, ProgramProfile)> = benchmarks(scale)
        .into_iter()
        .map(|b| (b.name().to_string(), ProgramProfile::of(b.netlist())))
        .collect();
    rows.sort_by_key(|(_, p)| p.total_bootstrapped());
    rows
}

/// Figure 10: distributed CPU backend vs single-threaded CPU across the
/// suite.
pub fn fig10(scale: Scale) -> String {
    let cost = CpuCostModel::paper();
    let one = ClusterSim::new(cost, ClusterConfig::one_node());
    let four = ClusterSim::new(cost, ClusterConfig::four_nodes());
    let mut table = Table::new(&["benchmark", "gates", "single-core", "1 node (x)", "4 nodes (x)"]);
    for (name, profile) in suite_profiles(scale) {
        let r1 = one.simulate(&profile);
        let r4 = four.simulate(&profile);
        table.row(vec![
            name,
            profile.total_bootstrapped().to_string(),
            fmt_seconds(r1.single_core_s),
            format!("{:.1}", r1.speedup()),
            format!("{:.1}", r4.speedup()),
        ]);
    }
    let mut out = String::from(
        "Figure 10 — PyTFHE distributed CPU vs single-threaded CPU (sorted by gate count)\n",
    );
    out.push_str("paper anchors: MNIST networks reach 17.4x on 1 node (ideal 18) and 60.5x on 4 nodes (ideal 72);\nsmall/serial benchmarks barely benefit.\n\n");
    out.push_str(&table.render());
    out
}

/// Figure 11: PyTFHE GPU backend vs cuFHE across the suite, on both
/// GPUs.
pub fn fig11(scale: Scale) -> String {
    let cpu = CpuCostModel::paper();
    let a5000 = GpuSim::new(GpuCostModel::a5000(), cpu);
    let rtx = GpuSim::new(GpuCostModel::rtx4090(), cpu);
    let mut table = Table::new(&[
        "benchmark",
        "gates",
        "cuFHE A5000",
        "PyTFHE A5000",
        "speedup",
        "PyTFHE 4090",
        "speedup",
    ]);
    for (name, profile) in suite_profiles(scale) {
        let cufhe = a5000.simulate(&profile, GpuPolicy::CuFhe);
        let py_a = a5000.simulate(&profile, GpuPolicy::CudaGraphs);
        let cufhe_rtx = rtx.simulate(&profile, GpuPolicy::CuFhe);
        let py_r = rtx.simulate(&profile, GpuPolicy::CudaGraphs);
        table.row(vec![
            name,
            profile.total_bootstrapped().to_string(),
            fmt_seconds(cufhe.total_s),
            fmt_seconds(py_a.total_s),
            format!("{:.1}x", cufhe.total_s / py_a.total_s),
            fmt_seconds(py_r.total_s),
            format!("{:.1}x", cufhe_rtx.total_s / py_r.total_s),
        ]);
    }
    let mut out = String::from(
        "Figure 11 — PyTFHE GPU backend vs cuFHE (paper: up to 61.5x on parallel workloads)\n\n",
    );
    out.push_str(&table.render());
    out
}

/// The Figure 12/13/14/Table IV shared setup: the four frameworks'
/// MNIST_S netlists.
fn framework_netlists(scale: MnistScale) -> Vec<(LoweringProfile, Netlist)> {
    all_profiles().iter().map(|p| (*p, lower_mnist(p, scale))).collect()
}

/// Figure 12: frontend/backend combinations on MNIST_S against the
/// Google Transpiler baseline.
pub fn fig12(scale: MnistScale) -> String {
    let cpu = CpuCostModel::paper();
    let nets = framework_netlists(scale);
    let gt = &nets.iter().find(|(p, _)| p.name == "Transpiler").expect("present").1;
    let py = &nets.iter().find(|(p, _)| p.name == "PyTFHE").expect("present").1;
    let gt_profile = ProgramProfile::of(gt);
    let py_profile = ProgramProfile::of(py);
    let four = ClusterSim::new(cpu, ClusterConfig::four_nodes());
    let a5000 = GpuSim::new(GpuCostModel::a5000(), cpu);
    let rtx = GpuSim::new(GpuCostModel::rtx4090(), cpu);
    // GT+GC: the Transpiler's own code-generator backend, single core.
    let baseline = gt_profile.total_bootstrapped() as f64 * cpu.gate_s();
    let rows: Vec<(&str, f64)> = vec![
        ("GT+GC (1 core)", baseline),
        ("GT+PyT CPU (4 nodes)", four.simulate(&gt_profile).cluster_s),
        ("GT+PyT GPU (A5000)", a5000.simulate(&gt_profile, GpuPolicy::CudaGraphs).total_s),
        ("GT+PyT GPU (4090)", rtx.simulate(&gt_profile, GpuPolicy::CudaGraphs).total_s),
        ("PyT+PyT CPU (4 nodes)", four.simulate(&py_profile).cluster_s),
        ("PyT+PyT GPU (A5000)", a5000.simulate(&py_profile, GpuPolicy::CudaGraphs).total_s),
        ("PyT+PyT GPU (4090)", rtx.simulate(&py_profile, GpuPolicy::CudaGraphs).total_s),
    ];
    let mut table = Table::new(&["configuration", "time", "speedup vs GT+GC"]);
    for (name, t) in &rows {
        table.row(vec![name.to_string(), fmt_seconds(*t), format!("{:.0}x", baseline / t)]);
    }
    let mut out = String::from(
        "Figure 12 — Transpiler vs PyTFHE on MNIST_S (paper: GT+GC takes days; GT+PyT CPU 52x;\nGT+PyT GPU 69-89x; PyT+PyT far beyond)\n\n",
    );
    out.push_str(&table.render());
    out
}

/// Figure 13: end-to-end runtimes of all four frameworks on MNIST_S.
pub fn fig13(scale: MnistScale) -> String {
    let cpu = CpuCostModel::paper();
    let nets = framework_netlists(scale);
    let mut table = Table::new(&["framework", "gates", "single-core runtime"]);
    for (p, nl) in &nets {
        let row = ComparisonRow::new(p.name, nl, &cpu);
        table.row(vec![row.name.clone(), row.gates.to_string(), fmt_seconds(row.single_core_s)]);
    }
    // PyTFHE's faster backends, for the full Figure 13 picture.
    let py = &nets[0].1;
    let profile = ProgramProfile::of(py);
    let four = ClusterSim::new(cpu, ClusterConfig::four_nodes()).simulate(&profile);
    let gpu = GpuSim::new(GpuCostModel::a5000(), cpu).simulate(&profile, GpuPolicy::CudaGraphs);
    let mut out = String::from(
        "Figure 13 — framework runtime comparison on MNIST_S\n(baseline runtimes estimated as gates / single-core throughput, paper footnote 1)\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nPyTFHE distributed (4 nodes): {}   PyTFHE GPU (A5000): {}\n",
        fmt_seconds(four.cluster_s),
        fmt_seconds(gpu.total_s)
    ));
    out
}

/// Figure 14: gate distribution of the MNIST_S netlists per framework.
pub fn fig14(scale: MnistScale) -> String {
    let nets = framework_netlists(scale);
    let py_gates = nets[0].1.num_bootstrapped_gates() as f64;
    let mut out = String::from(
        "Figure 14 — gate distribution of the MNIST network\n(paper: PyTFHE emits 65.3% of Cingulata's gates and 53.6% of E3's; Transpiler is far larger)\n\n",
    );
    let mut table = Table::new(&["framework", "gates", "PyTFHE/x", "dominant kinds"]);
    for (p, nl) in &nets {
        let stats = NetlistStats::of(nl);
        let mut kinds: Vec<(GateKind, u64)> = stats.histogram.iter().collect();
        kinds.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let dominant: Vec<String> = kinds.iter().take(4).map(|(k, c)| format!("{k}:{c}")).collect();
        table.row(vec![
            p.name.to_string(),
            stats.bootstrapped_gates.to_string(),
            format!("{:.1}%", py_gates / stats.bootstrapped_gates as f64 * 100.0),
            dominant.join(" "),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table IV: speedups of each PyTFHE configuration over E3, Cingulata
/// and the Transpiler on MNIST_S.
pub fn table4(scale: MnistScale) -> String {
    let cpu = CpuCostModel::paper();
    let nets = framework_netlists(scale);
    let find = |n: &str| &nets.iter().find(|(p, _)| p.name == n).expect("present").1;
    let py = find("PyTFHE");
    let profile = ProgramProfile::of(py);
    let est = |nl: &Netlist| nl.num_bootstrapped_gates() as f64 * cpu.gate_s();
    let baselines = [
        ("E3", est(find("E3"))),
        ("Cingulata", est(find("Cingulata"))),
        ("Transpiler", est(find("Transpiler"))),
    ];
    let configs: Vec<(&str, f64)> = vec![
        ("PyTFHE Single Core", est(py)),
        (
            "PyTFHE 1 Node",
            ClusterSim::new(cpu, ClusterConfig::one_node()).simulate(&profile).cluster_s,
        ),
        (
            "PyTFHE 4 Nodes",
            ClusterSim::new(cpu, ClusterConfig::four_nodes()).simulate(&profile).cluster_s,
        ),
        (
            "PyTFHE A5000 GPU",
            GpuSim::new(GpuCostModel::a5000(), cpu)
                .simulate(&profile, GpuPolicy::CudaGraphs)
                .total_s,
        ),
        (
            "PyTFHE 4090 GPU",
            GpuSim::new(GpuCostModel::rtx4090(), cpu)
                .simulate(&profile, GpuPolicy::CudaGraphs)
                .total_s,
        ),
    ];
    let mut table = Table::new(&["", "E3", "Cingulata", "Transpiler"]);
    for (name, t) in &configs {
        let mut cells = vec![name.to_string()];
        for (_, base) in &baselines {
            cells.push(format!("{:.1}", base / t));
        }
        table.row(cells);
    }
    let mut out = String::from(
        "Table IV — speedup of PyTFHE over E3, Cingulata, and Transpiler on MNIST_S\n(paper row anchors: single core 1.5/1.8/28.4; 4 nodes 80.6/98.2/1497.4; 4090 218.9/266.9/4070.5)\n\n",
    );
    out.push_str(&table.render());
    out
}

/// Ablation studies of the design choices DESIGN.md calls out: the
/// optimization pipeline (pass by pass), the multiplier architecture,
/// and the data-type knob — each measured in bootstrapped gates, i.e.
/// directly in runtime.
pub fn ablation() -> String {
    use chiseltorch::{compile_with, nn, DType};
    use pytfhe_hdl::Circuit;
    use pytfhe_netlist::opt::{self, OptConfig};

    let mut out = String::from("Ablation studies (gate counts = bootstraps = runtime)\n");

    // --- 1. Optimization passes, applied cumulatively. -----------------
    let dtype = DType::Fixed { width: 12, frac: 6 };
    let model = nn::Sequential::new(dtype)
        .add(nn::Conv2d::new(1, 1, 3, 1))
        .add(nn::ReLU::new())
        .add(nn::MaxPool2d::new(2, 1))
        .add(nn::Flatten::new())
        .add(nn::Linear::new(9, 4));
    let raw = compile_with(&model, &[1, 6, 6], dtype, &OptConfig::none())
        .expect("compiles")
        .into_netlist();
    let mut table = Table::new(&["pipeline", "gates", "vs raw"]);
    let base = raw.num_bootstrapped_gates() as f64;
    let mut push = |name: &str, nl: &Netlist| {
        let g = nl.num_bootstrapped_gates();
        table.row(vec![
            name.to_string(),
            g.to_string(),
            format!("{:.1}%", g as f64 / base * 100.0),
        ]);
    };
    push("raw (builder folding only)", &raw);
    let folded = opt::constant_fold(&raw).0;
    push("+ constant fold", &folded);
    let absorbed = opt::absorb_inverters(&folded).0;
    push("+ inverter absorption", &absorbed);
    let deduped = opt::cse(&absorbed).0;
    push("+ CSE", &deduped);
    let swept = opt::dce(&deduped).0;
    push("+ DCE", &swept);
    let (full, _) = opt::optimize(&raw, &OptConfig::default()).expect("valid");
    push("full pipeline to fixpoint", &full);
    out.push_str("\n1. netlist optimization passes on a tiny MNIST model:\n\n");
    out.push_str(&table.render());

    // --- 2. Multiplier architecture. ------------------------------------
    let mut table = Table::new(&["width", "Baugh-Wooley", "sign-extension", "saving"]);
    for w in [8usize, 12, 16, 24] {
        let count = |bw: bool| {
            let mut c = Circuit::new();
            let a = c.input_word("a", w);
            let b = c.input_word("b", w);
            let p = if bw { c.mul_signed(&a, &b) } else { c.mul_signed_ext(&a, &b) };
            c.output_word("p", &p);
            c.finish().expect("netlist").num_bootstrapped_gates()
        };
        let (bw, ext) = (count(true), count(false));
        table.row(vec![
            format!("{w}x{w}"),
            bw.to_string(),
            ext.to_string(),
            format!("{:.0}%", (1.0 - bw as f64 / ext as f64) * 100.0),
        ]);
    }
    out.push_str("\n2. signed multiplier architecture (signal x signal):\n\n");
    out.push_str(&table.render());

    // --- 3. Data-type sweep (the paper's "orders of magnitude" knob). ---
    // (Integer dtypes are omitted: this model's sub-unit weights all
    // round to zero under SInt, which folds the whole circuit away —
    // integer models need integer-scaled weights.)
    let mut table = Table::new(&["dtype", "gates", "vs Fixed(8,4)"]);
    let mut baseline = None;
    for dtype in [
        DType::Fixed { width: 8, frac: 4 },
        DType::Fixed { width: 12, frac: 6 },
        DType::Fixed { width: 16, frac: 8 },
        DType::Float { exp: 5, man: 4 },
        DType::Float { exp: 8, man: 8 },
        DType::Float { exp: 5, man: 11 },
    ] {
        let model = nn::Sequential::new(dtype)
            .add(nn::Conv2d::new(1, 1, 3, 1))
            .add(nn::ReLU::new())
            .add(nn::Flatten::new())
            .add(nn::Linear::new(16, 4));
        let compiled =
            compile_with(&model, &[1, 6, 6], dtype, &OptConfig::default()).expect("compiles");
        let g = compiled.netlist().num_bootstrapped_gates();
        let b = *baseline.get_or_insert(g as f64);
        table.row(vec![dtype.to_string(), g.to_string(), format!("{:.1}x", g as f64 / b)]);
    }
    out.push_str("\n3. ChiselTorch data-type selection on the same model:\n\n");
    out.push_str(&table.render());

    // --- 3b. Adder architecture: gate count vs critical-path depth. ------
    let mut table = Table::new(&["width", "ripple gates", "ripple depth", "KS gates", "KS depth"]);
    for w in [8usize, 16, 32] {
        let build = |ks: bool| {
            let mut c = Circuit::new();
            let a = c.input_word("a", w);
            let b = c.input_word("b", w);
            let s = if ks { c.add_kogge_stone(&a, &b) } else { c.add(&a, &b) };
            c.output_word("s", &s);
            let nl = c.finish().expect("netlist");
            let depth = pytfhe_netlist::Levels::compute(&nl).depth();
            (nl.num_bootstrapped_gates(), depth)
        };
        let (rg, rd) = build(false);
        let (kg, kd) = build(true);
        table.row(vec![
            w.to_string(),
            rg.to_string(),
            rd.to_string(),
            kg.to_string(),
            kd.to_string(),
        ]);
    }
    out.push_str("\n3b. adder architecture: gates (=total bootstraps) vs depth (=waves on the\n    critical path; what wide backends can overlap):\n\n");
    out.push_str(&table.render());

    // --- 4. Scheduler: Algorithm 1's per-wave barrier vs greedy list
    // scheduling, on a serial and a parallel workload. -------------------
    let cost = CpuCostModel::paper();
    let sim = ClusterSim::new(cost, ClusterConfig::four_nodes());
    let mut table = Table::new(&["workload", "barrier (Alg. 1)", "list scheduling", "gain"]);
    for name in ["NRSolver", "MNIST_S"] {
        let bench = pytfhe_vipbench::find(name, Scale::Test).expect("registered");
        let profile = ProgramProfile::of(bench.netlist());
        let barrier = sim.simulate(&profile).cluster_s;
        let list = sim.simulate_list(bench.netlist()).cluster_s;
        table.row(vec![
            name.to_string(),
            fmt_seconds(barrier),
            fmt_seconds(list),
            format!("{:.2}x", barrier / list),
        ]);
    }
    out.push_str("\n4. wavefront barrier (the paper's Algorithm 1) vs greedy list scheduling,\n   4-node cluster:\n\n");
    out.push_str(&table.render());
    out
}

/// The kernel-graph backend swept across real workloads: capture cost,
/// first vs cached replay, the batch structure, and the cached-replay
/// speedup over the wavefront executor at the same worker count — the
/// executable analogue of the Figure 9 pipeline, run on the shared
/// work-stealing pool. Returns the rendered report plus a
/// machine-readable JSON document (written by `repro kernel_graph` to
/// `results/BENCH_kernel_graph.json`) with per-workload labeled
/// metrics: `cached_replay_s{workload=...}`, `wavefront_s{workload=...}`,
/// `speedup{workload=...}`, and `steals{workload=...}`.
pub fn kernel_graph(scale: Scale) -> (String, String) {
    use pytfhe_backend::{execute_parallel, KernelGraph, PlainEngine, ReplayLanes, WorkerPool};
    use pytfhe_vipbench::find;

    let workers = WorkerPool::global().width();
    let replays = 5;
    let workloads = ["MNIST_S", "MNIST_M", "MNIST_L", "Attention_S"];

    let mut out = String::from(
        "Kernel-graph backend — capture once, replay batched plans (Figure 9, executed)\n",
    );
    out.push_str(&format!(
        "plaintext functional engine, {workers} pool lane(s); same-kind gates share one batched kernel per wave.\n\n"
    ));
    let mut report = BenchReport::new("kernel_graph")
        .config("scale", if scale == Scale::Paper { "paper" } else { "test" })
        .config("workers", workers)
        .config("workloads", workloads.join(","));
    let mut table = Table::new(&[
        "workload",
        "gates",
        "waves",
        "launches",
        "capture",
        "cached replay",
        "wavefront (no plan)",
        "speedup",
    ]);

    for name in workloads {
        let bench = find(name, scale).expect("registered workload");
        let nl = bench.netlist().clone();
        let bits = bench.encode_input(&bench.sample_input(1));
        let engine = PlainEngine::new();

        let graph = KernelGraph::new();
        let mut lanes = ReplayLanes::new(&engine, workers);
        let (out_first, first) =
            graph.execute_with_lanes(&engine, &nl, &bits, &mut lanes).expect("first run");
        assert!(!first.plan_cached, "first run must capture");
        let mut cached_replay_s = f64::INFINITY;
        let mut steals = 0u64;
        for _ in 0..replays {
            let (out_rep, stats) =
                graph.execute_with_lanes(&engine, &nl, &bits, &mut lanes).expect("replay");
            assert!(stats.plan_cached, "repeat runs must hit the plan cache");
            assert_eq!(out_rep, out_first, "replay must be bit-exact");
            cached_replay_s = cached_replay_s.min(stats.replay_s);
            steals += stats.steals;
        }
        // Best-of-`replays` for the wavefront too, so the comparison is
        // minimum-vs-minimum.
        let mut wavefront_s = f64::INFINITY;
        for _ in 0..replays {
            let (_, wavefront) = execute_parallel(&engine, &nl, &bits, workers).expect("wavefront");
            wavefront_s = wavefront_s.min(wavefront.wall_s);
        }
        let speedup = wavefront_s / cached_replay_s;

        table.row(vec![
            name.to_string(),
            first.gates.to_string(),
            first.waves.to_string(),
            first.kernel_launches.to_string(),
            fmt_seconds(first.capture_s),
            fmt_seconds(cached_replay_s),
            fmt_seconds(wavefront_s),
            format!("{speedup:.2}x"),
        ]);
        let label = |metric: &str| format!("{metric}{{workload=\"{name}\"}}");
        report.metric_count(label("gates"), first.gates as u64);
        report.metric_count(label("waves"), first.waves as u64);
        report.metric_count(label("batches"), first.batches as u64);
        report.metric_count(label("kernel_launches"), first.kernel_launches);
        report.metric_seconds(label("capture_s"), first.capture_s);
        report.metric_seconds(label("first_replay_s"), first.replay_s);
        report.metric_seconds(label("cached_replay_s"), cached_replay_s);
        report.metric_seconds(label("wavefront_s"), wavefront_s);
        report.metric_ratio(label("speedup"), speedup);
        report.metric_count(label("steals"), steals);
        if name == "MNIST_S" {
            // Per-kind launch counts for the headline workload only —
            // the full cross-product would drown the document.
            for (op, &n) in first.kernels_by_kind.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let kind = GateKind::from_opcode(op as u8).expect("counted opcode");
                report.metric_count(
                    format!("kernel_launches{{workload=\"{name}\",kind=\"{}\"}}", kind.mnemonic()),
                    n,
                );
            }
        }
    }

    out.push_str(&table.render());
    out.push_str(&format!(
        "\ncached replay and wavefront are each best-of-{replays}; speedup = wavefront / cached replay.\n"
    ));
    (out, report.to_json())
}

/// The half-complex FFT rework measured on this machine: transform
/// throughput (folded N/2 vs retired full-size N path) and single-gate
/// bootstrap latency before/after. Returns the rendered report plus a
/// machine-readable JSON document (written by `repro fft` to
/// `results/BENCH_fft.json`).
///
/// With `full = true` the gate comparison runs at the 128-bit production
/// parameters (key generation for both key flavours takes tens of
/// seconds); otherwise everything uses the miniature testing set.
pub fn fft(full: bool) -> (String, String) {
    use pytfhe_tfhe::fft::FftPlan;
    use pytfhe_tfhe::poly::{IntPoly, TorusPoly};
    use pytfhe_tfhe::reference::{RefBootstrappingKey, RefFftPlan};
    use pytfhe_tfhe::Torus32;
    use std::time::Instant;

    /// Best-of-`reps` wall time of `iters` runs of `f`, per run.
    fn time_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
        best
    }

    let mut rng = SecureRng::seed_from_u64(11);
    let n = 1024;
    let plan = FftPlan::new(n);
    let ref_plan = RefFftPlan::new(n);
    let ip = IntPoly::binary(n, &mut rng);
    let tp = TorusPoly::uniform(n, &mut rng);
    let iters = 2000;
    let fwd = time_per_iter(5, iters, || {
        std::hint::black_box(plan.forward_int(std::hint::black_box(&ip)));
    });
    let fwd_ref = time_per_iter(5, iters, || {
        std::hint::black_box(ref_plan.forward_int(std::hint::black_box(&ip)));
    });
    let mul = time_per_iter(5, iters, || {
        std::hint::black_box(plan.negacyclic_mul(std::hint::black_box(&ip), &tp));
    });
    let mul_ref = time_per_iter(5, iters, || {
        std::hint::black_box(ref_plan.negacyclic_mul(std::hint::black_box(&ip), &tp));
    });

    // Gate latency: bootstrap_raw with the folded key vs the retired
    // full-size key, same secret material and algebra.
    let params = if full { Params::default_128() } else { Params::testing() };
    let client = ClientKey::generate(params, &mut rng);
    let server = client.server_key(&mut rng);
    let bk = server.bootstrapping_key();
    let mut scratch = bk.boot_scratch();
    let ref_bk = RefBootstrappingKey::from_client(&client, &mut rng);
    let ct = client.encrypt_bit(true, &mut rng);
    let mu = Torus32::from_fraction(1, 3);
    let gate_iters = if full { 3 } else { 50 };
    let gate = time_per_iter(3, gate_iters, || {
        std::hint::black_box(bk.bootstrap_raw(std::hint::black_box(&ct), mu, &mut scratch));
    });
    let gate_ref = time_per_iter(3, gate_iters, || {
        std::hint::black_box(ref_bk.bootstrap_raw(std::hint::black_box(&ct), mu));
    });

    let mut table = Table::new(&["operation", "folded (N/2)", "full-size", "speedup"]);
    let mut row = |label: &str, after: f64, before: f64| {
        table.row(vec![
            label.to_string(),
            fmt_seconds(after),
            fmt_seconds(before),
            format!("{:.2}x", before / after),
        ]);
    };
    row(&format!("forward_int n={n}"), fwd, fwd_ref);
    row(&format!("negacyclic_mul n={n}"), mul, mul_ref);
    row(
        &format!("bootstrap_raw ({})", if full { "128-bit params" } else { "testing params" }),
        gate,
        gate_ref,
    );

    let mut out = String::from(
        "Half-complex negacyclic FFT — folded N/2 transform vs retired full-size path\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntransform speedup {:.2}x, single-gate bootstrap speedup {:.2}x on this machine\n",
        mul_ref / mul,
        gate_ref / gate,
    ));

    let mut report = BenchReport::new("fft")
        .config("poly_size", n)
        .config("gate_params", if full { "default_128" } else { "testing" });
    report.metric_seconds("forward_int_s", fwd);
    report.metric_seconds("forward_int_ref_s", fwd_ref);
    report.metric_seconds("negacyclic_mul_s", mul);
    report.metric_seconds("negacyclic_mul_ref_s", mul_ref);
    report.metric_seconds("bootstrap_raw_s", gate);
    report.metric_seconds("bootstrap_raw_ref_s", gate_ref);
    report.metric_ratio("transform_speedup", mul_ref / mul);
    report.metric_ratio("gate_speedup", gate_ref / gate);
    (out, report.to_json())
}

/// `repro simd`: scalar vs runtime-dispatched SIMD kernels on the four
/// hot paths they cover — the folded transform, the external product,
/// key switching, and a single-gate bootstrap. Both backends run in one
/// process by re-pointing the dispatch (`simd::set_active_path`), so the
/// comparison shares every byte of key material.
pub fn simd(full: bool) -> (String, String) {
    use pytfhe_tfhe::fft::FftPlan;
    use pytfhe_tfhe::keyswitch::KeySwitchKey;
    use pytfhe_tfhe::lwe::{LweCiphertext, LweKey};
    use pytfhe_tfhe::poly::{IntPoly, TorusPoly};
    use pytfhe_tfhe::simd::{self, SimdPath};
    use pytfhe_tfhe::tgsw::{ExternalProductScratch, Gadget, TgswCiphertext};
    use pytfhe_tfhe::tlwe::{TlweCiphertext, TlweKey};
    use pytfhe_tfhe::Torus32;
    use std::time::Instant;

    /// Best-of-`reps` wall time of `iters` runs of `f`, per run.
    fn time_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
        best
    }

    let mut rng = SecureRng::seed_from_u64(19);

    // Micro-kernel fixtures at the production transform size.
    let n = 1024;
    let plan = FftPlan::new(n);
    let ip = IntPoly::binary(n, &mut rng);
    let tp = TorusPoly::uniform(n, &mut rng);

    // External product: a real TGSW(1) acting on a real TLWE sample.
    let gadget = Gadget { levels: 3, base_log: 7 };
    let tlwe_key = TlweKey::generate(1, n, &mut rng);
    let tgsw = TgswCiphertext::encrypt(&tlwe_key, 1, gadget, 1e-9, &mut rng).to_fft(&plan);
    let msg = TorusPoly::uniform(n, &mut rng);
    let tlwe = tlwe_key.encrypt_poly(&msg, 1e-9, &mut rng);
    let mut ep_scratch = ExternalProductScratch::new(n, 1, gadget);
    let mut ep_out = TlweCiphertext::trivial(TorusPoly::zero(n), 1);

    // Key switch: paper-shaped extracted→gate dimensions and levels.
    let src = LweKey::generate(n, &mut rng);
    let dst = LweKey::generate(630, &mut rng);
    let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
    let ks_ct = src.encrypt(Torus32::from_fraction(1, 3), 1e-9, &mut rng);
    let mut ks_out = LweCiphertext::trivial(Torus32::ZERO, 630);

    // Single-gate bootstrap at the paper's 128-bit parameters (testing
    // scale under --quick). Key material is shared by both backends.
    let params = if full { Params::default_128() } else { Params::testing() };
    let client = ClientKey::generate(params, &mut rng);
    let server = client.server_key(&mut rng);
    let bk = server.bootstrapping_key();
    let mut boot_scratch = bk.boot_scratch();
    let ct = client.encrypt_bit(true, &mut rng);
    let mu = Torus32::from_fraction(1, 3);
    let gate_iters = if full { 3 } else { 50 };

    // Lockstep batched bootstrap fixtures: distinct encryptions so every
    // lane does real work, raw outputs at the extracted dimension.
    let widths: [usize; 4] = [1, 2, 4, 8];
    let max_width = 8;
    let mut batch_scratch = bk.batch_scratch(max_width);
    let batch_cts: Vec<LweCiphertext> =
        (0..max_width).map(|_| client.encrypt_bit(true, &mut rng)).collect();
    let batch_inputs: Vec<(&[Torus32], Torus32)> =
        batch_cts.iter().map(|c| (c.mask(), c.body())).collect();
    let out_dim = params.glwe_dim * params.poly_size;
    let mut batch_outs = vec![LweCiphertext::trivial(Torus32::ZERO, out_dim); max_width];
    let batch_iters = if full { 2 } else { 25 };

    let restore = simd::active_path();
    let dispatched = simd::best_available();
    let paths: Vec<SimdPath> = SimdPath::ALL.iter().copied().filter(|p| p.is_supported()).collect();
    // Per path: [negacyclic_mul, external_product, keyswitch,
    // bootstrap_raw] plus the per-gate batched bootstrap cost at each
    // width. Every path shares every byte of key material.
    let mut op_results: Vec<[f64; 4]> = Vec::new();
    let mut batch_results: Vec<Vec<f64>> = Vec::new();
    for &path in &paths {
        assert!(simd::set_active_path(path), "{path} unsupported on this host");
        op_results.push([
            time_per_iter(5, 2000, || {
                std::hint::black_box(plan.negacyclic_mul(std::hint::black_box(&ip), &tp));
            }),
            time_per_iter(5, 500, || {
                tgsw.external_product_into(
                    std::hint::black_box(&tlwe),
                    &plan,
                    &mut ep_scratch,
                    &mut ep_out,
                );
            }),
            time_per_iter(5, 500, || {
                ksk.switch_into(std::hint::black_box(&ks_ct), &mut ks_out);
            }),
            time_per_iter(3, gate_iters, || {
                std::hint::black_box(bk.bootstrap_raw(
                    std::hint::black_box(&ct),
                    mu,
                    &mut boot_scratch,
                ));
            }),
        ]);
        batch_results.push(
            widths
                .iter()
                .map(|&w| {
                    time_per_iter(3, batch_iters, || {
                        bk.bootstrap_raw_batch_into(
                            std::hint::black_box(&batch_inputs[..w]),
                            mu,
                            &mut batch_scratch,
                            &mut batch_outs[..w],
                        );
                    }) / w as f64
                })
                .collect(),
        );
    }
    simd::set_active_path(restore);
    let scalar_at = paths.iter().position(|&p| p == SimdPath::Scalar).expect("scalar always runs");
    let dispatched_at =
        paths.iter().position(|&p| p == dispatched).expect("best_available is supported");
    let s = op_results[scalar_at];
    let v = op_results[dispatched_at];

    let labels = [
        format!("negacyclic_mul n={n}"),
        format!("external_product n={n} l={}", gadget.levels),
        format!("keyswitch {n}→630 t=8"),
        format!("bootstrap_raw ({})", if full { "128-bit params" } else { "testing params" }),
    ];
    let mut header: Vec<String> = vec!["operation".into()];
    header.extend(paths.iter().map(|p| p.name().to_string()));
    header.push("best speedup".into());
    let header_refs: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for (op, label) in labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        row.extend(op_results.iter().map(|r| fmt_seconds(r[op])));
        let best = op_results.iter().map(|r| r[op]).fold(f64::INFINITY, f64::min);
        row.push(format!("{:.2}x", s[op] / best));
        table.row(row);
    }

    // Batched blind rotation: per-gate cost by (path, batch width).
    let mut bheader: Vec<String> = vec!["batched bootstrap".into()];
    bheader.extend(widths.iter().map(|w| format!("width {w}")));
    let bheader_refs: Vec<&str> = bheader.iter().map(|h| h.as_str()).collect();
    let mut btable = Table::new(&bheader_refs);
    for (pi, path) in paths.iter().enumerate() {
        let mut row = vec![format!("{} per-gate", path.name())];
        row.extend(batch_results[pi].iter().map(|&t| fmt_seconds(t)));
        btable.row(row);
    }

    let mut out = format!(
        "Runtime-dispatched SIMD kernels — every supported path (dispatch picks {}; \
         PYTFHE_SIMD overrides)\n\n",
        dispatched.name(),
    );
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&btable.render());
    out.push_str(&format!(
        "\nsingle-gate bootstrap speedup {:.2}x with the {} backend; batched width-8 \
         blind rotation {:.2}x over width-1 on this machine\n",
        s[3] / v[3],
        dispatched.name(),
        batch_results[dispatched_at][0] / batch_results[dispatched_at][widths.len() - 1],
    ));

    let mut report = BenchReport::new("simd")
        .config("scalar_path", "scalar")
        .config("dispatched_path", dispatched.name())
        .config("paths", paths.iter().map(|p| p.name()).collect::<Vec<_>>().join(","))
        .config("batch_widths", widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(","))
        .config("poly_size", n)
        .config("gate_params", if full { "default_128" } else { "testing" });
    let names = ["negacyclic_mul", "external_product", "keyswitch", "bootstrap_raw"];
    for (name, (&sv, &vv)) in names.iter().zip(s.iter().zip(&v)) {
        report.metric_seconds(format!("{name}_scalar_s"), sv);
        report.metric_seconds(format!("{name}_s"), vv);
        report.metric_ratio(format!("{name}_speedup"), sv / vv);
    }
    for (pi, path) in paths.iter().enumerate() {
        for (name, &t) in names.iter().zip(&op_results[pi]) {
            report.metric_seconds(format!("{name}_{}_s", path.name()), t);
        }
        for (wi, &w) in widths.iter().enumerate() {
            let t = batch_results[pi][wi];
            report.metric_seconds(format!("bootstrap_batch{w}_{}_per_gate_s", path.name()), t);
            report.metric_ratio(
                format!("bootstrap_batch{w}_{}_vs_single", path.name()),
                batch_results[pi][0] / t,
            );
        }
    }
    (out, report.to_json())
}

/// `repro serve`: aggregate gate throughput of the multi-tenant serving
/// front (cached keys, cross-session batched waves) against a stateless
/// serial front that decodes each tenant's server key per request and
/// executes sessions one-by-one — the configuration a deployment
/// without the serving layer is left with. Both paths run the identical
/// tenant/job/netlist workload and both are verified bit-exact against
/// plaintext evaluation. The serial path's per-request key-decode cost
/// is reported separately (`serial_key_install_s`) so the ratio's
/// provenance is visible.
pub fn serve(quick: bool) -> (String, String) {
    use pytfhe_backend::{execute, TfheEngine};
    use pytfhe_serve::{duplex, ServeClient, ServeConfig, ServeHandle};
    use pytfhe_tfhe::io::{server_key_from_bytes, server_key_to_bytes};
    use pytfhe_tfhe::SecureRng;
    use pytfhe_wire::rle_compress;
    use std::sync::Arc;
    use std::time::Instant;

    const TENANTS: u64 = 4;
    // Serving-shaped workload: many small requests per tenant. Small
    // jobs are where a serving layer earns its keep — the stateless
    // baseline pays the key decode on every request, while the front
    // amortizes one install across the tenant's whole stream and packs
    // gates from all live sessions into shared waves.
    let jobs_per_tenant: u64 = if quick { 48 } else { 80 };
    let gates: usize = if quick { 3 } else { 4 };
    let inputs_n = 4usize;

    /// Same deterministic DAG generator as the serving test suite.
    fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
        let mut state = seed | 1;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
        };
        let mut nl = Netlist::new();
        let mut pool: Vec<_> = (0..inputs).map(|_| nl.add_input()).collect();
        for _ in 0..gates {
            let kind = pytfhe_netlist::ALL_GATE_KINDS[next(pytfhe_netlist::ALL_GATE_KINDS.len())];
            let a = pool[next(pool.len())];
            let b = pool[next(pool.len())];
            pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
        }
        nl.mark_output(*pool.last().unwrap()).unwrap();
        nl.mark_output(pool[pool.len() / 2]).unwrap();
        nl
    }

    // Per-tenant material and workload, shared verbatim by both paths.
    struct Tenant {
        ck: ClientKey,
        key_bytes: Vec<u8>,
        jobs: Vec<(Netlist, Vec<bool>)>,
    }
    let tenants: Vec<Tenant> = (0..TENANTS)
        .map(|t| {
            let mut rng = SecureRng::seed_from_u64(9000 + t);
            let ck = ClientKey::generate(Params::testing(), &mut rng);
            let key_bytes = server_key_to_bytes(&ck.server_key(&mut rng)).to_vec();
            let jobs = (0..jobs_per_tenant)
                .map(|j| {
                    let nl = random_netlist(53 * t + j + 1, inputs_n, gates);
                    let bits: Vec<bool> = (0..inputs_n).map(|_| rng.bit()).collect();
                    (nl, bits)
                })
                .collect();
            Tenant { ck, key_bytes, jobs }
        })
        .collect();
    let total_jobs = TENANTS * jobs_per_tenant;
    let total_gates: usize =
        tenants.iter().flat_map(|t| t.jobs.iter()).map(|(nl, _)| nl.num_gates()).sum();

    // --- Serial baseline: stateless front, sessions one-by-one. -------
    let mut key_install_s = 0.0;
    let serial_t0 = Instant::now();
    for tenant in &tenants {
        let mut rng = SecureRng::seed_from_u64(1); // encryption nonce stream
        for (nl, bits) in &tenant.jobs {
            // A stateless front holds no decoded keys: every request
            // pays the key decode before the first gate runs.
            let k0 = Instant::now();
            let key = server_key_from_bytes(&tenant.key_bytes).expect("decode key");
            key_install_s += k0.elapsed().as_secs_f64();
            let inputs = tenant.ck.encrypt_bits(bits, &mut rng);
            let engine = TfheEngine::new(&key);
            let (outs, _stats) = execute(&engine, nl, &inputs).expect("serial execute");
            assert_eq!(tenant.ck.decrypt_bits(&outs), nl.eval_plain(bits), "serial diverged");
        }
    }
    let serial_s = serial_t0.elapsed().as_secs_f64();

    // --- Serving front: cached keys, batched cross-session waves. -----
    let front = Arc::new(ServeHandle::start(
        ServeConfig {
            max_sessions: TENANTS as usize,
            tenant_quota: jobs_per_tenant as usize,
            ..ServeConfig::default()
        },
        None,
    ));
    let serve_t0 = Instant::now();
    let workers: Vec<_> = tenants
        .into_iter()
        .map(|tenant| {
            let front = Arc::clone(&front);
            std::thread::spawn(move || {
                let mut rng = SecureRng::seed_from_u64(2);
                let params = Params::testing();
                let (near, far) = duplex();
                front.attach(far).expect("admitted");
                let mut client = ServeClient::new(near);
                let fp = client.install_key(&tenant.key_bytes).expect("install");
                // Pipeline: submit everything, then fetch, so the
                // scheduler sees every session's gates at once.
                let ids: Vec<_> = tenant
                    .jobs
                    .iter()
                    .map(|(nl, bits)| {
                        let inputs = tenant.ck.encrypt_bits(bits, &mut rng);
                        client.submit(fp, nl, &inputs, &params).expect("submit")
                    })
                    .collect();
                for (id, (nl, bits)) in ids.into_iter().zip(&tenant.jobs) {
                    let outs = client.fetch(id).expect("fetch");
                    assert_eq!(
                        tenant.ck.decrypt_bits(&outs),
                        nl.eval_plain(bits),
                        "serve diverged"
                    );
                }
                client.close().expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant worker");
    }
    let serve_s = serve_t0.elapsed().as_secs_f64();

    let speedup = serial_s / serve_s;
    let serial_tput = total_gates as f64 / serial_s;
    let serve_tput = total_gates as f64 / serve_s;

    // Batch occupancy and transfer compression, for the report.
    let snapshot = pytfhe_telemetry::metrics().snapshot();
    let occupancy =
        snapshot.histograms.get("serve_batch_occupancy").map(|h| h.mean()).unwrap_or(0.0);
    let sample_nl = random_netlist(1, inputs_n, gates);
    let asm_bytes = assemble(&sample_nl);
    let program_ratio = rle_compress(&asm_bytes).len() as f64 / asm_bytes.len() as f64;

    let mut table = Table::new(&["front", "total", "gates/s", "notes"]);
    table.row(vec![
        "serial stateless".into(),
        fmt_seconds(serial_s),
        format!("{serial_tput:.0}"),
        format!("{} of it key decodes", fmt_seconds(key_install_s)),
    ]);
    table.row(vec![
        "serving (batched)".into(),
        fmt_seconds(serve_s),
        format!("{serve_tput:.0}"),
        format!("mean wave occupancy {occupancy:.1}"),
    ]);

    let mut out = String::from(
        "Multi-tenant serving front — cross-session batching + key cache vs a stateless serial front\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n{TENANTS} tenants x {jobs_per_tenant} jobs ({total_gates} gates total): \
         aggregate throughput {speedup:.2}x the serial front on this machine\n\
         program binaries travel at {:.0}% of raw size (RLE over zero runs)\n",
        program_ratio * 100.0,
    ));

    let mut report = BenchReport::new("serve")
        .config("tenants", TENANTS)
        .config("jobs_per_tenant", jobs_per_tenant)
        .config("gates_per_job", gates as u64)
        .config("params", "testing");
    report.metric_seconds("serial_total_s", serial_s);
    report.metric_seconds("serial_key_install_s", key_install_s);
    report.metric_seconds("serve_total_s", serve_s);
    report.metric_ratio("aggregate_throughput_speedup", speedup);
    report.metric_ratio("serial_gates_per_s", serial_tput);
    report.metric_ratio("serve_gates_per_s", serve_tput);
    report.metric_ratio("mean_batch_occupancy", occupancy);
    report.metric_ratio("program_rle_ratio", program_ratio);
    report.metric_count("total_jobs", total_jobs);
    report.metric_count("total_gates", total_gates as u64);
    (out, report.to_json())
}

/// Shortint + programmable-bootstrap LUT lowering: the cone-cover pass
/// on VIP-Bench workloads (bit-exact, with the bootstrap reduction the
/// executors actually report), encrypted end-to-end timings of boolean
/// vs LUT-lowered execution, and the exact-integer API priced in
/// programmable bootstraps against boolean ripple/array circuits.
pub fn shortint(quick: bool) -> (String, String) {
    use pytfhe_backend::{execute, netlist_bootstraps, KernelGraph, PlainEngine, TfheEngine};
    use pytfhe_hdl::Circuit;
    use pytfhe_netlist::opt::{lut_cover, LutCoverConfig};
    use pytfhe_shortint::{ShortintClientKey, ShortintParams};
    use pytfhe_tfhe::NoiseGuard;
    use std::time::Instant;

    let mut out = String::from("shortint — LUT-lowered execution and exact integer arithmetic\n\n");
    let mut report = BenchReport::new("shortint")
        .config("scale", "test")
        .config("quick", quick)
        .config("params", "testing_shortint")
        .config("split", "message_2_carry_2");

    // --- Cone-cover lowering on VIP-Bench: bit-exact, >=2x fewer
    // bootstraps. Every workload is executed through the serial and the
    // kernel-graph executors and compared against the boolean netlist's
    // plain evaluation before its numbers are recorded.
    out.push_str("LUT cone-cover on VIP-Bench (Scale::Test, verified bit-exact):\n");
    let mut table = Table::new(&["workload", "boolean PBS", "LUT PBS", "cones", "reduction"]);
    let engine = PlainEngine::new();
    let graph = KernelGraph::new();
    for name in ["Parrando", "Primality", "Distinctness", "BubbleSort"] {
        let bench = pytfhe_vipbench::find(name, Scale::Test).expect("workload exists");
        let nl = bench.netlist();
        let (lowered, cover) = lut_cover(nl, &LutCoverConfig::default()).expect("lut_cover");
        let (before, after) = (netlist_bootstraps(nl), netlist_bootstraps(&lowered));
        assert!(
            after * 2 <= before,
            "{name}: LUT lowering must at least halve bootstraps, got {before} -> {after}"
        );
        for seed in 0..3u64 {
            let bits = bench.encode_input(&bench.sample_input(seed));
            let want = nl.eval_plain(&bits);
            let (serial, stats) = execute(&engine, &lowered, &bits).expect("plain execute");
            assert_eq!(serial, want, "{name} seed {seed}: serial lowered != boolean");
            assert_eq!(stats.bootstraps, after, "{name}: executor bootstrap accounting");
            let (graphed, _) = graph.execute(&engine, &lowered, &bits, 2).expect("kernel graph");
            assert_eq!(graphed, want, "{name} seed {seed}: kernel-graph lowered != boolean");
        }
        let ratio = before as f64 / after as f64;
        table.row(vec![
            name.to_string(),
            before.to_string(),
            after.to_string(),
            cover.cones_fused.to_string(),
            format!("{ratio:.2}x"),
        ]);
        let key = name.to_ascii_lowercase();
        report.metric_count(format!("{key}_bootstraps_boolean"), before);
        report.metric_count(format!("{key}_bootstraps_lut"), after);
        report.metric_count(format!("{key}_cones_fused"), cover.cones_fused as u64);
        report.metric_ratio(format!("{key}_bootstrap_reduction"), ratio);
    }
    out.push_str(&table.render());

    // --- Encrypted end to end: the boolean netlist under gate
    // bootstrapping vs the lowered netlist under programmable
    // bootstrapping, same inputs, decrypted outputs compared against
    // the plain oracle.
    let mut rng = SecureRng::seed_from_u64(0x0540_77B5);
    let client = ClientKey::generate(Params::testing_shortint(), &mut rng);
    let server = client.server_key(&mut rng);
    let tfhe = TfheEngine::new(&server);
    out.push_str("\nencrypted execution (testing_shortint parameters):\n");
    let mut enc = Table::new(&["workload", "boolean", "LUT-lowered", "speedup"]);
    let enc_workloads: &[&str] =
        if quick { &["Distinctness"] } else { &["Distinctness", "Parrando"] };
    for name in enc_workloads {
        let bench = pytfhe_vipbench::find(name, Scale::Test).expect("workload exists");
        let nl = bench.netlist();
        let (lowered, _) = lut_cover(nl, &LutCoverConfig::default()).expect("lut_cover");
        let precision = lowered.lut_precision().expect("lowered netlists carry a precision");
        let bits = bench.encode_input(&bench.sample_input(1));
        let want = nl.eval_plain(&bits);

        let cts = client.encrypt_bits(&bits, &mut rng);
        let t0 = Instant::now();
        let (bool_out, _) = execute(&tfhe, nl, &cts).expect("boolean encrypted");
        let bool_s = t0.elapsed().as_secs_f64();
        assert_eq!(client.decrypt_bits(&bool_out), want, "{name}: boolean encrypted");

        // Lowered netlists run in the message encoding end to end.
        let mcts: Vec<_> = bits
            .iter()
            .map(|&b| client.encrypt_message(u32::from(b), u32::from(precision), &mut rng))
            .collect();
        let t0 = Instant::now();
        let (lut_out, _) = execute(&tfhe, &lowered, &mcts).expect("LUT encrypted");
        let lut_s = t0.elapsed().as_secs_f64();
        let got: Vec<bool> = lut_out
            .iter()
            .map(|ct| client.decrypt_message(ct, u32::from(precision)) != 0)
            .collect();
        assert_eq!(got, want, "{name}: LUT-lowered encrypted");

        enc.row(vec![
            name.to_string(),
            fmt_seconds(bool_s),
            fmt_seconds(lut_s),
            format!("{:.2}x", bool_s / lut_s),
        ]);
        let key = name.to_ascii_lowercase();
        report.metric_seconds(format!("{key}_encrypted_boolean_s"), bool_s);
        report.metric_seconds(format!("{key}_encrypted_lut_s"), lut_s);
        report.metric_ratio(format!("{key}_encrypted_speedup"), bool_s / lut_s);
    }
    out.push_str(&enc.render());

    // --- Exact integers: shortint radix/bivariate operations priced in
    // programmable bootstraps against the boolean circuits computing
    // the same function, all results checked against plain integers.
    let split = ShortintParams::message_2_carry_2();
    let sclient = ShortintClientKey::generate(
        split,
        Params::testing_shortint(),
        &NoiseGuard::default(),
        &mut rng,
    )
    .expect("testing_shortint admits 4-bit LUTs");
    let mut sserver = sclient.server_key(&mut rng);
    out.push_str("\nexact integers (message_2_carry_2), programmable bootstraps per op:\n");
    let mut ops = Table::new(&["operation", "shortint PBS", "boolean PBS", "reduction"]);
    let record = |ops: &mut Table,
                  report: &mut BenchReport,
                  label: &str,
                  key: &str,
                  pbs: u64,
                  bool_pbs: u64| {
        ops.row(vec![
            label.to_string(),
            pbs.to_string(),
            bool_pbs.to_string(),
            format!("{:.1}x", bool_pbs as f64 / pbs as f64),
        ]);
        report.metric_count(format!("{key}_shortint_bootstraps"), pbs);
        report.metric_count(format!("{key}_boolean_bootstraps"), bool_pbs);
        report.metric_ratio(format!("{key}_reduction"), bool_pbs as f64 / pbs as f64);
    };

    for bits in [8u32, 16] {
        let blocks = (bits / 2) as usize; // 2 message bits per digit
        let (x, y) = if bits == 8 { (200u64, 100u64) } else { (51_234u64, 30_111u64) };
        let a = sclient.encrypt_radix(x, blocks, &mut rng).expect("in range");
        let b = sclient.encrypt_radix(y, blocks, &mut rng).expect("in range");
        sserver.reset_stats();
        let sum = sserver.add_radix(&a, &b).expect("same length");
        let pbs = sserver.stats().bootstraps;
        assert_eq!(
            sclient.decrypt_radix(&sum),
            (x + y) & ((1u64 << bits) - 1),
            "{bits}-bit radix add"
        );
        let mut c = Circuit::new();
        let wa = c.input_word("a", bits as usize);
        let wb = c.input_word("b", bits as usize);
        let ws = c.add(&wa, &wb);
        c.output_word("sum", &ws);
        let bool_pbs = netlist_bootstraps(&c.finish().expect("adder netlist"));
        record(
            &mut ops,
            &mut report,
            &format!("add ({bits}-bit)"),
            &format!("add{bits}"),
            pbs,
            bool_pbs,
        );
    }

    // Bivariate single-bootstrap ops on one 2-bit digit vs the boolean
    // circuits for the same functions.
    let a = sclient.encrypt(3, &mut rng).expect("in range");
    let b = sclient.encrypt(2, &mut rng).expect("in range");
    let two_bit_circuit = |build: &dyn Fn(&mut Circuit, &pytfhe_hdl::Word, &pytfhe_hdl::Word)| {
        let mut c = Circuit::new();
        let wa = c.input_word("a", 2);
        let wb = c.input_word("b", 2);
        build(&mut c, &wa, &wb);
        netlist_bootstraps(&c.finish().expect("netlist"))
    };

    sserver.reset_stats();
    let prod = sserver.mul_low(&a, &b).expect("bivariate split");
    assert_eq!(sclient.decrypt(&prod), (3 * 2) % 4, "mul_low oracle");
    let mul_bool = two_bit_circuit(&|c, wa, wb| {
        let p = c.mul_unsigned(wa, wb);
        c.output_word("p", &p);
    });
    record(
        &mut ops,
        &mut report,
        "mul_low (2-bit)",
        "mul_low",
        sserver.stats().bootstraps,
        mul_bool,
    );

    sserver.reset_stats();
    let ord = sserver.cmp(&a, &b).expect("bivariate split");
    assert_eq!(sclient.decrypt(&ord), 2, "3 > 2");
    let cmp_bool = two_bit_circuit(&|c, wa, wb| {
        let lt = c.lt_unsigned(wa, wb).expect("same width");
        let eq = c.eq(wa, wb).expect("same width");
        c.output_word("ord", &pytfhe_hdl::Word::from_bits(vec![lt, eq]));
    });
    record(&mut ops, &mut report, "cmp (2-bit)", "cmp", sserver.stats().bootstraps, cmp_bool);

    sserver.reset_stats();
    let bigger = sserver.max(&a, &b).expect("bivariate split");
    assert_eq!(sclient.decrypt(&bigger), 3, "max oracle");
    let max_bool = two_bit_circuit(&|c, wa, wb| {
        let m = c.max_int(wa, wb, false).expect("same width");
        c.output_word("m", &m);
    });
    record(&mut ops, &mut report, "max (2-bit)", "max", sserver.stats().bootstraps, max_bool);

    out.push_str(&ops.render());
    out.push_str(
        "\nall lowered executions decrypt to the boolean oracle; reductions are\n\
         counted over the executors' own bootstrap accounting.\n",
    );
    (out, report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_renders_all_three_studies() {
        let s = ablation();
        assert!(s.contains("constant fold"));
        assert!(s.contains("Baugh-Wooley"));
        assert!(s.contains("Float(8, 8)"));
        assert!(s.contains("adder architecture"));
        assert!(s.contains("list scheduling"));
    }

    #[test]
    fn fig6_renders_half_adder() {
        let s = fig6();
        assert!(s.contains("xor %1 %2"));
        assert!(s.contains("112 bytes"));
    }

    #[test]
    fn fig7_model_only() {
        let s = fig7(false);
        assert!(s.contains("Blind rotation"));
        assert!(s.contains("0.094%"));
    }

    #[test]
    fn fig8_and_fig9_render() {
        assert!(fig8().contains("GPU"));
        assert!(fig9().contains("batches"));
    }

    #[test]
    fn fig10_test_scale() {
        let s = fig10(Scale::Test);
        assert!(s.contains("MNIST_S"));
        assert!(s.contains("NRSolver"));
    }

    #[test]
    fn kernel_graph_report_renders_and_emits_json() {
        let (text, json) = kernel_graph(Scale::Test);
        assert!(text.contains("capture"));
        assert!(text.contains("cached replay"));
        pytfhe_telemetry::json::validate(&json).expect("BENCH document must parse");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"bench\": \"kernel_graph\""));
        assert!(json.contains("\"simd_path\""));
        assert!(json.contains("\"workers\""));
        for workload in ["MNIST_S", "MNIST_M", "MNIST_L", "Attention_S"] {
            assert!(
                json.contains(&format!("cached_replay_s{{workload=\\\"{workload}\\\"}}"))
                    || json.contains(&format!("cached_replay_s{{workload=\"{workload}\"}}")),
                "missing cached_replay_s for {workload}"
            );
            assert!(
                json.contains(&format!("speedup{{workload=\\\"{workload}\\\"}}"))
                    || json.contains(&format!("speedup{{workload=\"{workload}\"}}")),
                "missing speedup for {workload}"
            );
        }
    }

    #[test]
    fn comparison_figures_small_scale() {
        let s = fig12(MnistScale::Small);
        assert!(s.contains("GT+GC"));
        let s = fig13(MnistScale::Small);
        assert!(s.contains("Cingulata"));
        let s = fig14(MnistScale::Small);
        assert!(s.contains("Transpiler"));
        let s = table4(MnistScale::Small);
        assert!(s.contains("PyTFHE 4 Nodes"));
    }
}
