//! The single writer behind every `results/BENCH_*.json` document.
//!
//! All machine-readable bench output shares one schema so downstream
//! tooling parses every file the same way:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "fft",
//!   "machine": { "os": "linux", "arch": "x86_64", "simd_path": "avx2" },
//!   "config": { "poly_size": 1024, "gate_params": "testing" },
//!   "metrics": [
//!     { "name": "forward_int_s", "value": 1.2e-5, "unit": "s" }
//!   ]
//! }
//! ```
//!
//! `machine` is filled in automatically (OS, architecture, and the SIMD
//! path the `tfhe` kernels dispatched to); `config` holds the
//! bench-specific knobs; `metrics` is an ordered list so readers never
//! need to know field names up front. Serialization is hand-rolled on
//! top of the telemetry crate's JSON helpers — the workspace carries no
//! serde.

use pytfhe_telemetry::export::{escape_json, json_f64};
use std::path::Path;

/// Version of the shared `BENCH_*.json` schema. Bump on breaking shape
/// changes.
pub const SCHEMA_VERSION: u32 = 1;

/// A JSON scalar in a bench report: configuration values and metric
/// values are all one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An exact count.
    U64(u64),
    /// A measurement.
    F64(f64),
    /// A tag (parameter-set name, workload name, ...).
    Text(String),
    /// A flag.
    Bool(bool),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => json_f64(*v),
            Value::Text(s) => format!("\"{}\"", escape_json(s)),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Metric {
    name: String,
    value: Value,
    unit: Option<&'static str>,
}

/// Builder for one `BENCH_*.json` document.
///
/// Configuration entries and metrics render in insertion order, so the
/// emitted file is deterministic for a given run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    bench: String,
    config: Vec<(String, Value)>,
    metrics: Vec<Metric>,
}

impl BenchReport {
    /// Starts a report for the bench called `bench` (e.g. `"fft"`).
    pub fn new(bench: impl Into<String>) -> Self {
        BenchReport { bench: bench.into(), config: Vec::new(), metrics: Vec::new() }
    }

    /// Records a configuration knob (workload, scale, worker count, ...).
    pub fn config(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.config.push((key.into(), value.into()));
        self
    }

    /// Records a wall-time measurement in seconds.
    pub fn metric_seconds(&mut self, name: impl Into<String>, seconds: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            value: Value::F64(seconds),
            unit: Some("s"),
        });
    }

    /// Records a dimensionless ratio (speedups and the like).
    pub fn metric_ratio(&mut self, name: impl Into<String>, ratio: f64) {
        self.metrics.push(Metric { name: name.into(), value: Value::F64(ratio), unit: Some("x") });
    }

    /// Records an exact count.
    pub fn metric_count(&mut self, name: impl Into<String>, count: u64) {
        self.metrics.push(Metric { name: name.into(), value: Value::U64(count), unit: None });
    }

    /// Renders the document. Always a single JSON object terminated by a
    /// newline; guaranteed to parse (no `NaN`/`inf` leaks, everything
    /// string-escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape_json(&self.bench)));
        out.push_str("  \"machine\": {\n");
        out.push_str(&format!("    \"os\": \"{}\",\n", escape_json(std::env::consts::OS)));
        out.push_str(&format!("    \"arch\": \"{}\",\n", escape_json(std::env::consts::ARCH)));
        out.push_str(&format!(
            "    \"simd_path\": \"{}\"\n",
            escape_json(pytfhe_tfhe::simd::active_path().name())
        ));
        out.push_str("  },\n");
        out.push_str("  \"config\": {");
        for (i, (key, value)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape_json(key), value.render()));
        }
        out.push_str(if self.config.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let unit = match m.unit {
                Some(u) => format!(", \"unit\": \"{u}\""),
                None => String::new(),
            };
            out.push_str(&format!(
                "\n    {{ \"name\": \"{}\", \"value\": {}{unit} }}",
                escape_json(&m.name),
                m.value.render(),
            ));
        }
        out.push_str(if self.metrics.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Writes the document to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_json_with_shared_schema() {
        let mut r = BenchReport::new("demo")
            .config("workload", "MNIST_S")
            .config("workers", 4usize)
            .config("quick", true);
        r.metric_seconds("capture_s", 0.25);
        r.metric_count("gates", 1234);
        r.metric_ratio("speedup", 3.5);
        let json = r.to_json();
        pytfhe_telemetry::json::validate(&json).expect("well-formed JSON");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"simd_path\""));
        assert!(json.contains("\"workload\": \"MNIST_S\""));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("{ \"name\": \"capture_s\", \"value\": 0.25, \"unit\": \"s\" }"));
        assert!(json.contains("{ \"name\": \"gates\", \"value\": 1234 }"));
        assert!(json.contains("{ \"name\": \"speedup\", \"value\": 3.5, \"unit\": \"x\" }"));
    }

    #[test]
    fn empty_sections_stay_valid() {
        let json = BenchReport::new("empty").to_json();
        pytfhe_telemetry::json::validate(&json).expect("well-formed JSON");
        assert!(json.contains("\"config\": {}"));
        assert!(json.contains("\"metrics\": []"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = BenchReport::new("quo\"te").config("k", "v\\1\n2").to_json();
        pytfhe_telemetry::json::validate(&json).expect("well-formed JSON");
        assert!(json.contains("\"bench\": \"quo\\\"te\""));
        assert!(json.contains("\"k\": \"v\\\\1\\n2\""));
    }

    #[test]
    fn non_finite_measurements_never_break_the_document() {
        let mut r = BenchReport::new("inf");
        r.metric_seconds("bad", f64::INFINITY);
        r.metric_ratio("nan", f64::NAN);
        let json = r.to_json();
        pytfhe_telemetry::json::validate(&json).expect("well-formed JSON");
        assert!(json.contains("1e308"));
    }
}
