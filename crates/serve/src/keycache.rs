//! Fingerprint-keyed server-key cache.
//!
//! Decoding a server key is the dominant per-request cost of a
//! stateless front (bootstrapping keys are megabytes even at testing
//! parameters), so the serving layer decodes each tenant's key once and
//! shares the decoded [`ServerKey`] — behind an `Arc` — across every
//! job, session, and scheduler wave that references its fingerprint.
//!
//! The cache holds at most `capacity` decoded keys; beyond that the
//! least-recently-used key is dropped from memory. When a
//! [`DiskStore`] backs the cache, installs also persist the key bytes
//! and a miss transparently rehydrates from disk, so an evicted
//! tenant's next request costs one decode instead of a re-upload.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pytfhe_backend::DiskStore;
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::io::server_key_from_bytes;
use pytfhe_tfhe::ServerKey;

use crate::error::ServeError;

/// FNV-1a over the serialized key bytes — deliberately the same
/// function [`DiskStore::put_key_blob`] content-addresses with, so a
/// fingerprint computed here finds the same blob on rehydration.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct CacheInner {
    keys: HashMap<u64, Arc<ServerKey>>,
    /// Recency order, oldest first.
    lru: Vec<u64>,
}

/// Shared, thread-safe cache of decoded server keys.
pub struct KeyCache {
    inner: Mutex<CacheInner>,
    store: Option<DiskStore>,
    capacity: usize,
}

impl KeyCache {
    /// Creates a cache holding at most `capacity` decoded keys
    /// (clamped to at least one), optionally backed by a durable store.
    pub fn new(capacity: usize, store: Option<DiskStore>) -> Self {
        KeyCache {
            inner: Mutex::new(CacheInner { keys: HashMap::new(), lru: Vec::new() }),
            store,
            capacity: capacity.max(1),
        }
    }

    /// Number of decoded keys currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("key cache poisoned").keys.len()
    }

    /// Whether the cache holds no decoded keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes and caches a serialized server key, persisting the bytes
    /// when a store backs the cache. Returns the key's fingerprint —
    /// the tenant identity every subsequent submit references.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Tfhe`] when the bytes fail to decode and
    /// [`ServeError::Exec`] when persistence fails.
    pub fn install(&self, key_bytes: &[u8]) -> Result<u64, ServeError> {
        let fingerprint = match &self.store {
            Some(store) => store.put_key_blob(key_bytes)?.0,
            None => fnv1a(key_bytes),
        };
        {
            let inner = self.inner.lock().expect("key cache poisoned");
            if inner.keys.contains_key(&fingerprint) {
                drop(inner);
                self.touch(fingerprint);
                telemetry::metrics().counter_add("serve_key_cache_hits_total", 1);
                return Ok(fingerprint);
            }
        }
        // Decode outside the lock: key decode is the expensive step and
        // other tenants' lookups must not serialize behind it.
        let key = Arc::new(server_key_from_bytes(key_bytes)?);
        self.insert(fingerprint, key);
        telemetry::metrics().counter_add("serve_keys_installed_total", 1);
        Ok(fingerprint)
    }

    /// Looks up a decoded key, rehydrating from the backing store on a
    /// miss. `Ok(None)` means the fingerprint is genuinely unknown.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Exec`] when the store read fails and
    /// [`ServeError::Tfhe`] when a stored blob fails to decode.
    pub fn get(&self, fingerprint: u64) -> Result<Option<Arc<ServerKey>>, ServeError> {
        {
            let inner = self.inner.lock().expect("key cache poisoned");
            if let Some(key) = inner.keys.get(&fingerprint) {
                let key = Arc::clone(key);
                drop(inner);
                self.touch(fingerprint);
                telemetry::metrics().counter_add("serve_key_cache_hits_total", 1);
                return Ok(Some(key));
            }
        }
        telemetry::metrics().counter_add("serve_key_cache_misses_total", 1);
        let Some(store) = &self.store else { return Ok(None) };
        let Some(bytes) = store.get_key_blob(fingerprint)? else {
            return Ok(None);
        };
        let key = Arc::new(server_key_from_bytes(&bytes)?);
        self.insert(fingerprint, Arc::clone(&key));
        telemetry::metrics().counter_add("serve_key_cache_rehydrations_total", 1);
        Ok(Some(key))
    }

    fn touch(&self, fingerprint: u64) {
        let mut inner = self.inner.lock().expect("key cache poisoned");
        inner.lru.retain(|&fp| fp != fingerprint);
        inner.lru.push(fingerprint);
    }

    fn insert(&self, fingerprint: u64, key: Arc<ServerKey>) {
        let mut inner = self.inner.lock().expect("key cache poisoned");
        inner.keys.insert(fingerprint, key);
        inner.lru.retain(|&fp| fp != fingerprint);
        inner.lru.push(fingerprint);
        while inner.keys.len() > self.capacity {
            let victim = inner.lru.remove(0);
            inner.keys.remove(&victim);
            // Memory-only eviction: the blob stays in the store (subject
            // to the store's own key capacity), so the tenant is not lost
            // — its next request rehydrates.
            telemetry::metrics().counter_add("serve_key_cache_evictions_total", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_tfhe::io::server_key_to_bytes;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn key_bytes(seed: u64) -> Vec<u8> {
        let mut rng = SecureRng::seed_from_u64(seed);
        let ck = ClientKey::generate(Params::testing(), &mut rng);
        server_key_to_bytes(&ck.server_key(&mut rng)).to_vec()
    }

    #[test]
    fn install_then_get_hits_in_memory() {
        let cache = KeyCache::new(2, None);
        let bytes = key_bytes(1);
        let fp = cache.install(&bytes).unwrap();
        assert!(cache.get(fp).unwrap().is_some());
        assert!(cache.get(fp ^ 1).unwrap().is_none(), "unknown fingerprint");
    }

    #[test]
    fn eviction_without_a_store_forgets_the_key() {
        let cache = KeyCache::new(1, None);
        let fp1 = cache.install(&key_bytes(1)).unwrap();
        let _fp2 = cache.install(&key_bytes(2)).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(fp1).unwrap().is_none(), "evicted and storeless");
    }

    #[test]
    fn eviction_with_a_store_rehydrates() {
        let dir = std::env::temp_dir().join(format!("pytfhe-keycache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let cache = KeyCache::new(1, Some(store));
        let fp1 = cache.install(&key_bytes(1)).unwrap();
        let _fp2 = cache.install(&key_bytes(2)).unwrap();
        assert_eq!(cache.len(), 1, "capacity enforced");
        let before = telemetry::metrics()
            .snapshot()
            .counters
            .get("serve_key_cache_rehydrations_total")
            .copied()
            .unwrap_or(0);
        assert!(cache.get(fp1).unwrap().is_some(), "rehydrated from disk");
        let after = telemetry::metrics()
            .snapshot()
            .counters
            .get("serve_key_cache_rehydrations_total")
            .copied()
            .unwrap_or(0);
        assert_eq!(after, before + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprints_match_the_store_content_address() {
        let dir = std::env::temp_dir().join(format!("pytfhe-keycache-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bytes = key_bytes(3);
        let storeless = KeyCache::new(1, None).install(&bytes).unwrap();
        let store = DiskStore::open(&dir).unwrap();
        let stored = KeyCache::new(1, Some(store)).install(&bytes).unwrap();
        assert_eq!(storeless, stored, "local FNV-1a must equal the store's");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
