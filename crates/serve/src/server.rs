//! The serving front: session admission, connection handlers, and the
//! shared scheduler + key cache behind them.
//!
//! A [`ServeHandle`] owns one scheduler thread and one key cache. Each
//! attached transport gets a handler thread that speaks the frame
//! protocol: install-key, submit, fetch, close. Admission control is
//! two-level — a live-session ceiling at attach time and a per-tenant
//! in-flight job quota at submit time — and both rejections travel as
//! typed reply frames so clients can back off instead of guessing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use pytfhe_backend::DiskStore;
use pytfhe_telemetry as telemetry;
use pytfhe_wire::Format;

use crate::error::ServeError;
use crate::frame::{
    self, decode_fetch, decode_install_key, decode_submit, read_frame, write_frame,
};
use crate::keycache::KeyCache;
use crate::scheduler::Scheduler;
use crate::transport::Transport;

/// Serving-front tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sessions that may be attached at once; further attaches are
    /// rejected with [`ServeError::Overloaded`].
    pub max_sessions: usize,
    /// Jobs one tenant may have queued or running at once.
    pub tenant_quota: usize,
    /// Bootstrapped gates drained into one scheduler wave.
    pub max_wave: usize,
    /// Decoded server keys held in memory.
    pub key_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_sessions: 8, tenant_quota: 4, max_wave: 64, key_cache_capacity: 4 }
    }
}

/// A running serving front.
pub struct ServeHandle {
    config: ServeConfig,
    keys: Arc<KeyCache>,
    scheduler: Arc<Scheduler>,
    live: Arc<AtomicUsize>,
}

impl ServeHandle {
    /// Starts the front: scheduler thread plus an optionally
    /// store-backed key cache (for key persistence and rehydration).
    pub fn start(config: ServeConfig, store: Option<DiskStore>) -> Self {
        let keys = Arc::new(KeyCache::new(config.key_cache_capacity, store));
        let scheduler = Arc::new(Scheduler::start(config.max_wave));
        ServeHandle { config, keys, scheduler, live: Arc::new(AtomicUsize::new(0)) }
    }

    /// Sessions currently attached.
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// The shared scheduler, for in-process submission paths (benches).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The shared key cache, for in-process submission paths (benches).
    pub fn key_cache(&self) -> &KeyCache {
        &self.keys
    }

    /// Admits a session and spawns its handler thread, which serves the
    /// transport until the peer closes or sends a `ServeClose`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] at the session ceiling — the
    /// rejection is also written onto the transport as a reply frame
    /// before it is dropped, so the client sees a typed error rather
    /// than a dead connection.
    pub fn attach<T: Transport + 'static>(
        &self,
        mut transport: T,
    ) -> Result<JoinHandle<()>, ServeError> {
        // Reserve a slot atomically; undo on rejection.
        let prev = self.live.fetch_add(1, Ordering::SeqCst);
        if prev >= self.config.max_sessions {
            self.live.fetch_sub(1, Ordering::SeqCst);
            let err = ServeError::Overloaded { live: prev, max: self.config.max_sessions };
            telemetry::metrics().counter_add("serve_sessions_rejected_total", 1);
            let _ = write_frame(&mut transport, Format::ServeReply, &frame::reply_error(&err));
            return Err(err);
        }
        telemetry::metrics().counter_add("serve_sessions_admitted_total", 1);
        telemetry::metrics().gauge_set("serve_live_sessions", (prev + 1) as f64);
        let session = SessionWorker {
            keys: Arc::clone(&self.keys),
            scheduler: Arc::clone(&self.scheduler),
            quota: self.config.tenant_quota,
            live: Arc::clone(&self.live),
        };
        std::thread::Builder::new()
            .name("pytfhe-serve-session".into())
            .spawn(move || session.run(transport))
            .map_err(ServeError::Io)
    }
}

struct SessionWorker {
    keys: Arc<KeyCache>,
    scheduler: Arc<Scheduler>,
    quota: usize,
    live: Arc<AtomicUsize>,
}

impl SessionWorker {
    fn run<T: Transport>(self, mut transport: T) {
        // A clean EOF or a transport failure both end the session; the
        // `while let` falls through on either.
        while let Ok(Some((format, version, payload))) = read_frame(&mut transport) {
            if version != frame::FRAME_VERSION {
                let err = ServeError::Protocol(format!("unsupported frame version {version}"));
                let _ = self.reply(&mut transport, &frame::reply_error(&err));
                continue;
            }
            let close = format == Format::ServeClose;
            let reply = self.dispatch(format, &payload);
            if self.reply(&mut transport, &reply).is_err() || close {
                break;
            }
        }
        let remaining = self.live.fetch_sub(1, Ordering::SeqCst) - 1;
        telemetry::metrics().gauge_set("serve_live_sessions", remaining as f64);
    }

    fn reply<T: Transport>(&self, transport: &mut T, payload: &[u8]) -> Result<(), ServeError> {
        write_frame(transport, Format::ServeReply, payload)
    }

    fn dispatch(&self, format: Format, payload: &[u8]) -> Vec<u8> {
        let result = match format {
            Format::ServeInstallKey => self.handle_install(payload),
            Format::ServeSubmit => self.handle_submit(payload),
            Format::ServeFetch => self.handle_fetch(payload),
            Format::ServeClose => Ok(frame::reply_ok()),
            other => Err(ServeError::Protocol(format!(
                "unexpected frame {} on a serving session",
                other.name()
            ))),
        };
        result.unwrap_or_else(|err| frame::reply_error(&err))
    }

    fn handle_install(&self, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let key_bytes = decode_install_key(payload)?;
        let fingerprint = self.keys.install(&key_bytes)?;
        Ok(frame::reply_fingerprint(fingerprint))
    }

    fn handle_submit(&self, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let (fingerprint, nl, inputs) = decode_submit(payload)?;
        nl.validate().map_err(|e| ServeError::Protocol(format!("invalid program: {e}")))?;
        let key = self.keys.get(fingerprint)?.ok_or(ServeError::UnknownKey(fingerprint))?;
        let id = self.scheduler.submit(fingerprint, key, nl, inputs, self.quota)?;
        Ok(frame::reply_job(id))
    }

    fn handle_fetch(&self, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let id = decode_fetch(payload)?;
        let (outputs, params) = self.scheduler.fetch(id)?;
        Ok(frame::reply_outputs(&outputs, &params))
    }
}
