//! Typed serving-layer errors.
//!
//! Admission failures ([`ServeError::Overloaded`],
//! [`ServeError::QuotaExceeded`]) are part of the protocol: the server
//! reports them in a reply frame with enough detail for the client to
//! implement backpressure, rather than dropping the connection.

use std::fmt;

use pytfhe_backend::ExecError;
use pytfhe_tfhe::TfheError;
use pytfhe_wire::WireError;

/// Everything that can go wrong between a serving client and the front.
#[derive(Debug)]
pub enum ServeError {
    /// The server is at its live-session limit; retry later.
    Overloaded {
        /// Sessions currently attached.
        live: usize,
        /// Configured admission ceiling.
        max: usize,
    },
    /// The tenant already has its full quota of jobs in flight.
    QuotaExceeded {
        /// Jobs the tenant currently has queued or running.
        in_flight: usize,
        /// Configured per-tenant ceiling.
        quota: usize,
    },
    /// A fetch referenced a job id the server has no record of.
    UnknownJob(u64),
    /// A submit referenced a key fingerprint that was never installed
    /// and could not be rehydrated from the backing store.
    UnknownKey(u64),
    /// A frame violated the serving protocol (wrong format id, missing
    /// section, malformed body).
    Protocol(String),
    /// Envelope or section decoding failed.
    Wire(WireError),
    /// Key or ciphertext material failed to decode or evaluate.
    Tfhe(TfheError),
    /// The execution backend or its durable store failed.
    Exec(ExecError),
    /// The transport failed mid-conversation.
    Io(std::io::Error),
    /// The server is shutting down and no longer accepts work.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { live, max } => {
                write!(f, "server overloaded: {live} live sessions (max {max})")
            }
            ServeError::QuotaExceeded { in_flight, quota } => {
                write!(f, "tenant quota exceeded: {in_flight} jobs in flight (quota {quota})")
            }
            ServeError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServeError::UnknownKey(fp) => write!(f, "unknown key fingerprint {fp:#018x}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Tfhe(e) => write!(f, "tfhe error: {e}"),
            ServeError::Exec(e) => write!(f, "exec error: {e}"),
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<TfheError> for ServeError {
    fn from(e: TfheError) -> Self {
        ServeError::Tfhe(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
