//! The serving protocol's frame layer.
//!
//! Every message on the stream is a length-delimited [`pytfhe_wire`]
//! envelope: a `u32` little-endian byte count followed by that many
//! envelope bytes. The envelope's format id names the message kind
//! (install-key, submit, fetch, close, reply) and its payload is a
//! section list, so unknown sections skip cleanly and sparse bodies —
//! server keys and assembled programs — travel RLE-compressed via
//! [`pytfhe_wire::put_section_packed`].
//!
//! | frame          | sections                                        |
//! |----------------|-------------------------------------------------|
//! | `ServeInstallKey` | `KEY` (packed server-key envelope)           |
//! | `ServeSubmit`  | `FINGERPRINT`, `PROGRAM` (packed asm), `INPUTS` |
//! | `ServeFetch`   | `JOB`                                           |
//! | `ServeClose`   | —                                               |
//! | `ServeReply`   | `STATUS` (+ `FINGERPRINT`/`JOB`/`OUTPUTS`/`LIMITS`/`MESSAGE`) |

use std::io::{Read, Write};

use pytfhe_netlist::Netlist;
use pytfhe_tfhe::io::{ciphertext_from_bytes, ciphertext_to_bytes};
use pytfhe_tfhe::{LweCiphertext, Params};
use pytfhe_wire::{
    encode, find_section, find_section_packed, put_section, put_section_packed, sections, Format,
};

use crate::error::ServeError;

/// Version of every serving frame this build emits.
pub const FRAME_VERSION: u16 = 1;

/// Hard ceiling on a single frame, guarding allocation on hostile or
/// corrupt length prefixes. Testing-parameter server keys are ~2 MiB;
/// production keys tens of MiB; 256 MiB leaves generous headroom.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Section tags of the serving protocol.
pub mod tags {
    /// Packed server-key envelope bytes.
    pub const KEY: u16 = 1;
    /// `u64` LE key fingerprint (the tenant identity).
    pub const FINGERPRINT: u16 = 2;
    /// Packed assembled program binary.
    pub const PROGRAM: u16 = 3;
    /// Ciphertext list: `count u32 LE`, then per entry `len u32 LE` + bytes.
    pub const INPUTS: u16 = 4;
    /// `u64` LE job id.
    pub const JOB: u16 = 5;
    /// Ciphertext list, same layout as `INPUTS`.
    pub const OUTPUTS: u16 = 6;
    /// `u16` LE status code.
    pub const STATUS: u16 = 7;
    /// UTF-8 diagnostic text.
    pub const MESSAGE: u16 = 8;
    /// Two `u64` LE values qualifying an admission rejection
    /// (`live/max` or `in_flight/quota`).
    pub const LIMITS: u16 = 9;
}

/// Reply status codes carried in the `STATUS` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Status {
    /// Request succeeded.
    Ok = 0,
    /// Session admission refused: server at capacity.
    Overloaded = 1,
    /// Submit refused: tenant at its in-flight quota.
    QuotaExceeded = 2,
    /// Fetch referenced an id the server does not know.
    UnknownJob = 3,
    /// Submit referenced an uninstalled, unrecoverable key.
    UnknownKey = 4,
    /// The request frame itself was malformed.
    BadRequest = 5,
    /// The server failed internally while handling the request.
    Internal = 6,
    /// The server is shutting down.
    ShuttingDown = 7,
}

impl Status {
    fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::QuotaExceeded,
            3 => Status::UnknownJob,
            4 => Status::UnknownKey,
            5 => Status::BadRequest,
            6 => Status::Internal,
            7 => Status::ShuttingDown,
            _ => return None,
        })
    }
}

/// Writes one frame: `u32` LE length prefix, then the envelope.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the transport fails and
/// [`ServeError::Protocol`] when the envelope exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, format: Format, payload: &[u8]) -> Result<(), ServeError> {
    let env = encode(format, FRAME_VERSION, payload);
    let len = u32::try_from(env.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| ServeError::Protocol(format!("frame of {} bytes too large", env.len())))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&env)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning its format, version, and payload.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed
/// the connection).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on transport failure mid-frame,
/// [`ServeError::Protocol`] on an oversized or unknown-format frame,
/// and [`ServeError::Wire`] when the envelope fails validation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Format, u16, Vec<u8>)>, ServeError> {
    let mut len_buf = [0u8; 4];
    // Distinguish EOF-at-boundary from a torn length prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(ServeError::Protocol("connection closed mid length prefix".into())),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!(
            "declared frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte ceiling"
        )));
    }
    let mut env = vec![0u8; len as usize];
    r.read_exact(&mut env)?;
    let decoded = pytfhe_wire::decode(&env)?;
    let format = decoded.format;
    let version = decoded.version;
    let payload = decoded.payload.to_vec();
    Ok(Some((format, version, payload)))
}

fn ct_list_section(out: &mut Vec<u8>, tag: u16, cts: &[LweCiphertext], params: &Params) {
    let mut body = Vec::new();
    body.extend_from_slice(&(cts.len() as u32).to_le_bytes());
    for ct in cts {
        let bytes = ciphertext_to_bytes(ct, params);
        body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        body.extend_from_slice(&bytes);
    }
    put_section(out, tag, &body);
}

fn parse_ct_list(body: &[u8]) -> Result<Vec<LweCiphertext>, ServeError> {
    let bad = |msg: &str| ServeError::Protocol(format!("ciphertext list: {msg}"));
    if body.len() < 4 {
        return Err(bad("truncated count"));
    }
    let count = u32::from_le_bytes(body[..4].try_into().expect("length checked")) as usize;
    let mut rest = &body[4..];
    // A ciphertext is at least its 12-byte header; reject absurd counts
    // before allocating.
    if count > rest.len() / 12 + 1 {
        return Err(bad("declared count exceeds available bytes"));
    }
    let mut cts = Vec::with_capacity(count);
    for _ in 0..count {
        if rest.len() < 4 {
            return Err(bad("truncated entry length"));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("length checked")) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(bad("entry overruns section"));
        }
        let (ct, _params) = ciphertext_from_bytes(&rest[..len])?;
        cts.push(ct);
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after final entry"));
    }
    Ok(cts)
}

fn u64_section(out: &mut Vec<u8>, tag: u16, value: u64) {
    put_section(out, tag, &value.to_le_bytes());
}

/// Like [`find_section`] but absence is `Ok(None)` instead of an error,
/// for a reply's optional sections.
fn maybe_section(payload: &[u8], tag: u16) -> Result<Option<&[u8]>, ServeError> {
    for s in sections(payload) {
        let (t, body) = s.map_err(ServeError::Wire)?;
        if t == tag {
            return Ok(Some(body));
        }
    }
    Ok(None)
}

fn parse_u64(payload: &[u8], tag: u16) -> Result<u64, ServeError> {
    let body = find_section(payload, tag)?;
    let bytes: [u8; 8] = body
        .try_into()
        .map_err(|_| ServeError::Protocol(format!("section {tag} is not 8 bytes")))?;
    Ok(u64::from_le_bytes(bytes))
}

// ---- request encoding -------------------------------------------------

/// Builds an install-key payload from serialized server-key bytes.
pub fn encode_install_key(key_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_section_packed(&mut payload, tags::KEY, key_bytes);
    payload
}

/// Extracts the serialized server-key bytes from an install-key payload.
///
/// # Errors
///
/// Returns [`ServeError::Wire`] when the section is absent or corrupt.
pub fn decode_install_key(payload: &[u8]) -> Result<Vec<u8>, ServeError> {
    Ok(find_section_packed(payload, tags::KEY)?)
}

/// Builds a submit payload: tenant fingerprint, assembled program, and
/// encrypted inputs.
pub fn encode_submit(
    fingerprint: u64,
    nl: &Netlist,
    inputs: &[LweCiphertext],
    params: &Params,
) -> Vec<u8> {
    let mut payload = Vec::new();
    u64_section(&mut payload, tags::FINGERPRINT, fingerprint);
    put_section_packed(&mut payload, tags::PROGRAM, &pytfhe_asm::assemble(nl));
    ct_list_section(&mut payload, tags::INPUTS, inputs, params);
    payload
}

/// Parses a submit payload back into `(fingerprint, netlist, inputs)`.
///
/// # Errors
///
/// Returns [`ServeError::Wire`] on section-framing failures and
/// [`ServeError::Protocol`] when the program or ciphertexts are
/// malformed.
pub fn decode_submit(payload: &[u8]) -> Result<(u64, Netlist, Vec<LweCiphertext>), ServeError> {
    let fingerprint = parse_u64(payload, tags::FINGERPRINT)?;
    let program = find_section_packed(payload, tags::PROGRAM)?;
    let nl = pytfhe_asm::disassemble(&program)
        .map_err(|e| ServeError::Protocol(format!("program binary: {e}")))?;
    let inputs = parse_ct_list(find_section(payload, tags::INPUTS)?)?;
    Ok((fingerprint, nl, inputs))
}

/// Builds a fetch payload naming the job to wait for.
pub fn encode_fetch(job: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    u64_section(&mut payload, tags::JOB, job);
    payload
}

/// Extracts the job id from a fetch payload.
///
/// # Errors
///
/// Returns [`ServeError::Wire`] when the section is absent or malformed.
pub fn decode_fetch(payload: &[u8]) -> Result<u64, ServeError> {
    parse_u64(payload, tags::JOB)
}

// ---- reply encoding ---------------------------------------------------

/// A decoded reply frame.
#[derive(Debug)]
pub struct Reply {
    /// Outcome code.
    pub status: Status,
    /// Key fingerprint (install-key replies).
    pub fingerprint: Option<u64>,
    /// Job id (submit replies).
    pub job: Option<u64>,
    /// Decrypted-result ciphertexts (fetch replies).
    pub outputs: Option<Vec<LweCiphertext>>,
    /// `(observed, limit)` pair qualifying an admission rejection.
    pub limits: Option<(u64, u64)>,
    /// Diagnostic text for error statuses.
    pub message: Option<String>,
}

fn reply_base(status: Status) -> Vec<u8> {
    let mut payload = Vec::new();
    put_section(&mut payload, tags::STATUS, &(status as u16).to_le_bytes());
    payload
}

/// Builds an OK reply carrying an installed key's fingerprint.
pub fn reply_fingerprint(fingerprint: u64) -> Vec<u8> {
    let mut payload = reply_base(Status::Ok);
    u64_section(&mut payload, tags::FINGERPRINT, fingerprint);
    payload
}

/// Builds an OK reply carrying an accepted job id.
pub fn reply_job(job: u64) -> Vec<u8> {
    let mut payload = reply_base(Status::Ok);
    u64_section(&mut payload, tags::JOB, job);
    payload
}

/// Builds an OK reply carrying a finished job's output ciphertexts.
pub fn reply_outputs(outputs: &[LweCiphertext], params: &Params) -> Vec<u8> {
    let mut payload = reply_base(Status::Ok);
    ct_list_section(&mut payload, tags::OUTPUTS, outputs, params);
    payload
}

/// Builds a bare OK reply (close acknowledgement).
pub fn reply_ok() -> Vec<u8> {
    reply_base(Status::Ok)
}

/// Builds an error reply from a serving error, mapping admission
/// failures onto their dedicated statuses with their limit pairs.
pub fn reply_error(err: &ServeError) -> Vec<u8> {
    let (status, limits) = match err {
        ServeError::Overloaded { live, max } => {
            (Status::Overloaded, Some((*live as u64, *max as u64)))
        }
        ServeError::QuotaExceeded { in_flight, quota } => {
            (Status::QuotaExceeded, Some((*in_flight as u64, *quota as u64)))
        }
        ServeError::UnknownJob(_) => (Status::UnknownJob, None),
        ServeError::UnknownKey(_) => (Status::UnknownKey, None),
        ServeError::Protocol(_) | ServeError::Wire(_) => (Status::BadRequest, None),
        ServeError::Shutdown => (Status::ShuttingDown, None),
        _ => (Status::Internal, None),
    };
    let mut payload = reply_base(status);
    if let Some((observed, limit)) = limits {
        let mut body = [0u8; 16];
        body[..8].copy_from_slice(&observed.to_le_bytes());
        body[8..].copy_from_slice(&limit.to_le_bytes());
        put_section(&mut payload, tags::LIMITS, &body);
    }
    put_section(&mut payload, tags::MESSAGE, err.to_string().as_bytes());
    payload
}

/// Parses a reply payload.
///
/// # Errors
///
/// Returns [`ServeError::Wire`] on framing failures and
/// [`ServeError::Protocol`] on unknown status codes or malformed
/// optional sections.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ServeError> {
    let status_body = find_section(payload, tags::STATUS)?;
    let code: [u8; 2] = status_body
        .try_into()
        .map_err(|_| ServeError::Protocol("status section is not 2 bytes".into()))?;
    let status = Status::from_code(u16::from_le_bytes(code)).ok_or_else(|| {
        ServeError::Protocol(format!("unknown status {}", u16::from_le_bytes(code)))
    })?;
    let optional_u64 = |tag: u16| -> Result<Option<u64>, ServeError> {
        match maybe_section(payload, tag)? {
            None => Ok(None),
            Some(body) => {
                let bytes: [u8; 8] = body
                    .try_into()
                    .map_err(|_| ServeError::Protocol(format!("section {tag} is not 8 bytes")))?;
                Ok(Some(u64::from_le_bytes(bytes)))
            }
        }
    };
    let outputs = match maybe_section(payload, tags::OUTPUTS)? {
        Some(body) => Some(parse_ct_list(body)?),
        None => None,
    };
    let limits = match maybe_section(payload, tags::LIMITS)? {
        Some(body) => {
            let bytes: [u8; 16] = body
                .try_into()
                .map_err(|_| ServeError::Protocol("limits section is not 16 bytes".into()))?;
            Some((
                u64::from_le_bytes(bytes[..8].try_into().expect("length checked")),
                u64::from_le_bytes(bytes[8..].try_into().expect("length checked")),
            ))
        }
        None => None,
    };
    let message = maybe_section(payload, tags::MESSAGE)?
        .map(|body| String::from_utf8_lossy(body).into_owned());
    Ok(Reply {
        status,
        fingerprint: optional_u64(tags::FINGERPRINT)?,
        job: optional_u64(tags::JOB)?,
        outputs,
        limits,
        message,
    })
}

/// Converts an error reply back into the typed error the server raised.
pub fn reply_to_error(reply: &Reply) -> ServeError {
    let (observed, limit) = reply.limits.unwrap_or((0, 0));
    let msg = reply.message.clone().unwrap_or_default();
    match reply.status {
        Status::Ok => ServeError::Protocol("OK reply treated as error".into()),
        Status::Overloaded => {
            ServeError::Overloaded { live: observed as usize, max: limit as usize }
        }
        Status::QuotaExceeded => {
            ServeError::QuotaExceeded { in_flight: observed as usize, quota: limit as usize }
        }
        Status::UnknownJob => ServeError::UnknownJob(0),
        Status::UnknownKey => ServeError::UnknownKey(0),
        Status::BadRequest => ServeError::Protocol(msg),
        Status::Internal => ServeError::Protocol(format!("server internal error: {msg}")),
        Status::ShuttingDown => ServeError::Shutdown,
    }
}

/// Decodes a frame known to be a reply, checking format and version.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] when the frame is not a v1
/// `ServeReply`, plus any [`decode_reply`] failure.
pub fn expect_reply(format: Format, version: u16, payload: &[u8]) -> Result<Reply, ServeError> {
    if format != Format::ServeReply || version != FRAME_VERSION {
        return Err(ServeError::Protocol(format!(
            "expected ServeReply v{FRAME_VERSION}, got {} v{version}",
            format.name()
        )));
    }
    decode_reply(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;
    use pytfhe_tfhe::{ClientKey, SecureRng};

    fn sample_cts() -> (Params, Vec<LweCiphertext>) {
        let params = Params::testing();
        let mut rng = SecureRng::seed_from_u64(7);
        let key = ClientKey::generate(params, &mut rng);
        let cts = key.encrypt_bits(&[true, false], &mut rng);
        (params, cts)
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let (mut a, mut b) = crate::transport::duplex();
        write_frame(&mut a, Format::ServeFetch, &encode_fetch(42)).unwrap();
        let (format, version, payload) = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(format, Format::ServeFetch);
        assert_eq!(version, FRAME_VERSION);
        assert_eq!(decode_fetch(&payload).unwrap(), 42);
        drop(a);
        assert!(read_frame(&mut b).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn submit_payload_round_trips() {
        let (params, cts) = sample_cts();
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Xor, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let payload = encode_submit(0xDEAD_BEEF, &nl, &cts, &params);
        let (fp, nl2, inputs) = decode_submit(&payload).unwrap();
        assert_eq!(fp, 0xDEAD_BEEF);
        assert_eq!(nl2.num_nodes(), nl.num_nodes());
        assert_eq!(inputs.len(), 2);
    }

    #[test]
    fn replies_round_trip_statuses_and_limits() {
        let payload = reply_error(&ServeError::QuotaExceeded { in_flight: 5, quota: 4 });
        let reply = decode_reply(&payload).unwrap();
        assert_eq!(reply.status, Status::QuotaExceeded);
        assert_eq!(reply.limits, Some((5, 4)));
        match reply_to_error(&reply) {
            ServeError::QuotaExceeded { in_flight: 5, quota: 4 } => {}
            other => panic!("wrong error: {other}"),
        }

        let (params, cts) = sample_cts();
        let reply = decode_reply(&reply_outputs(&cts, &params)).unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(reply.outputs.unwrap().len(), 2);
    }

    #[test]
    fn oversized_declared_frames_are_rejected() {
        let (mut a, mut b) = crate::transport::duplex();
        use std::io::Write as _;
        a.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        assert!(matches!(read_frame(&mut b), Err(ServeError::Protocol(_))));
    }
}
