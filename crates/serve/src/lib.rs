//! `pytfhe-serve` — the multi-tenant FHE serving front.
//!
//! The paper's pipeline ends with a cloud executor that evaluates one
//! tenant's program at a time. This crate adds the layer in front of
//! it: many concurrent client sessions, each owning its own server
//! key, stream programs and ciphertexts over a length-delimited
//! [`pytfhe_wire`] frame protocol, and one *cross-session batching
//! scheduler* drains every session's ready gates into shared
//! [`batch_bootstrap_mixed`](pytfhe_tfhe::ServerKey::batch_bootstrap_mixed)
//! waves.
//!
//! The pieces:
//!
//! - [`transport`]: the byte-stream abstraction plus an in-memory
//!   duplex pipe with socket semantics for tests and benches.
//! - [`frame`]: the wire protocol — install-key / submit / fetch /
//!   close / reply frames, with server keys and program binaries
//!   travelling RLE-compressed.
//! - [`keycache`]: fingerprint-keyed decoded-server-key cache with LRU
//!   eviction and transparent [`DiskStore`](pytfhe_backend::DiskStore)
//!   rehydration — decoding a key once per tenant instead of once per
//!   request is the serving layer's dominant saving on small programs.
//! - [`scheduler`]: per-tenant job queues, fair round-robin wave
//!   draining, one batched launch per distinct key per wave.
//! - [`server`] / [`client`]: the session front (admission control,
//!   handler threads) and the blocking client.
//!
//! ```no_run
//! use pytfhe_serve::{duplex, ServeClient, ServeConfig, ServeHandle};
//!
//! let front = ServeHandle::start(ServeConfig::default(), None);
//! let (near, far) = duplex();
//! front.attach(far).unwrap();
//! let mut client = ServeClient::new(near);
//! // client.install_key(..), client.run(..), client.close()
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod keycache;
pub mod scheduler;
pub mod server;
pub mod transport;

pub use client::ServeClient;
pub use error::ServeError;
pub use frame::Status;
pub use keycache::KeyCache;
pub use scheduler::Scheduler;
pub use server::{ServeConfig, ServeHandle};
pub use transport::{duplex, PipeEnd, Transport};
