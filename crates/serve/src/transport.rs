//! Byte-stream transports for the serving protocol.
//!
//! The server and client speak over anything implementing
//! [`Transport`] (a blanket over `Read + Write + Send`): a TCP stream,
//! a Unix socket, or — for tests, benches, and the demo — the
//! in-memory [`duplex`] pipe, which gives the full concurrency
//! behaviour of a socket pair without touching the network stack.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};

/// A bidirectional byte stream the serving layer can run over.
pub trait Transport: Read + Write + Send {}

impl<T: Read + Write + Send> Transport for T {}

/// One end of an in-memory duplex byte pipe.
///
/// Writes on one end become reads on the other, in order. Dropping an
/// end makes the peer's reads return EOF (`Ok(0)`) once buffered bytes
/// are drained, and its writes fail with `BrokenPipe` — the same
/// shutdown semantics a socket gives.
pub struct PipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Arc<Mutex<Receiver<Vec<u8>>>>,
    pending: VecDeque<u8>,
}

/// Creates a connected pair of in-memory duplex pipe ends.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    let a = PipeEnd { tx: a_tx, rx: Arc::new(Mutex::new(a_rx)), pending: VecDeque::new() };
    let b = PipeEnd { tx: b_tx, rx: Arc::new(Mutex::new(b_rx)), pending: VecDeque::new() };
    (a, b)
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pending.is_empty() {
            let rx = self.rx.lock().expect("pipe receiver poisoned");
            // Block for the first chunk, then opportunistically drain
            // whatever else already arrived.
            match rx.recv() {
                Ok(chunk) => self.pending.extend(chunk),
                Err(_) => return Ok(0), // peer dropped: EOF
            }
            while let Ok(chunk) = rx.try_recv() {
                self.pending.extend(chunk);
            }
        }
        // Bulk-copy out of the deque: server keys are megabytes, and a
        // byte-at-a-time loop here dominates the whole request path.
        let n = buf.len().min(self.pending.len());
        let (front, back) = self.pending.as_slices();
        let from_front = n.min(front.len());
        buf[..from_front].copy_from_slice(&front[..from_front]);
        if n > from_front {
            buf[from_front..n].copy_from_slice(&back[..n - from_front]);
        }
        self.pending.drain(..n);
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_carries_bytes_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn dropping_one_end_is_eof_for_the_other() {
        let (a, mut b) = duplex();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
        assert!(b.write_all(b"x").is_err());
    }

    #[test]
    fn reads_resume_across_chunk_boundaries() {
        let (mut a, mut b) = duplex();
        a.write_all(b"abc").unwrap();
        a.write_all(b"def").unwrap();
        let mut buf = [0u8; 6];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }
}
