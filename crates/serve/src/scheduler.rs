//! The cross-session batching scheduler.
//!
//! Every live session's submitted jobs land in per-tenant queues; a
//! single scheduler thread repeatedly drains *ready* bootstrapped gates
//! from all queues into one shared wave, groups the wave by server key,
//! and executes each group through [`ServerKey::batch_bootstrap_mixed`]
//! launches — the SoA staging pass that amortizes per-launch overhead
//! across every tenant's gates at once. Each tenant's launch is split
//! into per-lane chunks dispatched on the shared
//! [`pytfhe_backend::pool::WorkerPool`], so the wave's bootstraps run
//! concurrently across lanes (with work stealing between tenants)
//! rather than serially on the scheduler thread. Cheap
//! non-bootstrapped gates (`Not`, `Buf`, constants) are folded inline
//! while scanning, so waves contain only bootstrap work.
//!
//! Fairness: each wave visits tenants round-robin starting one past the
//! tenant that led the previous wave, and no tenant may occupy more
//! than `max(1, max_wave / live_tenants)` slots of a wave while another
//! tenant still has ready gates. A greedy tenant with a deep queue
//! therefore shares every wave instead of monopolizing the engine.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pytfhe_backend::pool::{Job, SlotCells, WorkerPool};
use pytfhe_netlist::{GateKind, Netlist, Node};
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::{BootGate, GateScratch, LweCiphertext, Params, ServerKey};

use crate::error::ServeError;

/// Histogram buckets for wave occupancy (gates per batched launch).
const OCCUPANCY_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Safety ceiling on a blocking fetch, so a lost job surfaces as an
/// error instead of a hung connection.
const FETCH_TIMEOUT: Duration = Duration::from_secs(300);

fn boot_gate(kind: GateKind) -> Option<BootGate> {
    match kind {
        GateKind::Nand => Some(BootGate::Nand),
        GateKind::And => Some(BootGate::And),
        GateKind::Or => Some(BootGate::Or),
        GateKind::Nor => Some(BootGate::Nor),
        GateKind::Xor => Some(BootGate::Xor),
        GateKind::Xnor => Some(BootGate::Xnor),
        GateKind::Andny => Some(BootGate::Andny),
        GateKind::Andyn => Some(BootGate::Andyn),
        GateKind::Orny => Some(BootGate::Orny),
        GateKind::Oryn => Some(BootGate::Oryn),
        GateKind::Not | GateKind::Buf | GateKind::Const0 | GateKind::Const1 => None,
    }
}

/// One job's incremental execution state.
struct JobState {
    id: u64,
    /// The tenant's parameter set, carried through to the completed
    /// result so reply frames can serialize outputs without a key
    /// lookup.
    params: Params,
    nl: Netlist,
    /// Per-node computed ciphertexts; `None` until evaluated (or while
    /// staged in an in-flight wave).
    values: Vec<Option<LweCiphertext>>,
    /// First node not yet evaluated *or staged*. Netlists are
    /// topologically ordered by construction, so scanning forward from
    /// here visits gates whose operands are either computed or staged
    /// earlier in the same wave.
    next_node: usize,
    /// Nodes staged in the current wave, awaiting write-back.
    staged: usize,
}

impl JobState {
    fn complete(&self) -> bool {
        self.next_node == self.nl.num_nodes() && self.staged == 0
    }
}

struct TenantQueue {
    key: Arc<ServerKey>,
    jobs: Vec<JobState>,
}

/// One staged bootstrapped gate: operands cloned out of the job state
/// so the wave executes without holding the scheduler lock.
struct WaveSlot {
    tenant: u64,
    job: u64,
    node: usize,
    gate: BootGate,
    a: LweCiphertext,
    b: LweCiphertext,
}

struct SchedState {
    tenants: BTreeMap<u64, TenantQueue>,
    /// Finished jobs awaiting fetch: id → outputs (with the tenant's
    /// parameter set) or error text.
    completed: HashMap<u64, Result<(Vec<LweCiphertext>, Params), String>>,
    /// Queued-or-running job count per tenant (quota accounting).
    in_flight: HashMap<u64, usize>,
    /// Every job id ever issued, so fetch can distinguish "pending"
    /// from "never existed".
    known: HashSet<u64>,
    /// Fingerprint of the tenant that led the previous wave.
    rr_cursor: u64,
    next_job: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when a job completes.
    done: Condvar,
    max_wave: usize,
}

/// Handle to the scheduler thread. Dropping without [`Scheduler::shutdown`]
/// detaches the worker; it exits once its queues drain and the handle's
/// shared state is released.
pub struct Scheduler {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts the scheduler thread. `max_wave` bounds the bootstrapped
    /// gates drained into one wave across all tenants (clamped ≥ 1).
    pub fn start(max_wave: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                tenants: BTreeMap::new(),
                completed: HashMap::new(),
                in_flight: HashMap::new(),
                known: HashSet::new(),
                rr_cursor: 0,
                next_job: 1,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            max_wave: max_wave.max(1),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("pytfhe-serve-sched".into())
            .spawn(move || run_scheduler(&worker_shared))
            .expect("spawn scheduler thread");
        Scheduler { shared, worker: Some(worker) }
    }

    /// Jobs a tenant currently has queued or running.
    pub fn in_flight(&self, tenant: u64) -> usize {
        let state = self.shared.state.lock().expect("scheduler poisoned");
        state.in_flight.get(&tenant).copied().unwrap_or(0)
    }

    /// Enqueues a job for `tenant` under `key`, enforcing the tenant's
    /// in-flight `quota`. Returns the job id to fetch results with.
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`] at the quota ceiling,
    /// [`ServeError::Protocol`] when inputs mismatch the netlist, and
    /// [`ServeError::Shutdown`] after shutdown began.
    pub fn submit(
        &self,
        tenant: u64,
        key: Arc<ServerKey>,
        nl: Netlist,
        inputs: Vec<LweCiphertext>,
        quota: usize,
    ) -> Result<u64, ServeError> {
        if inputs.len() != nl.num_inputs() {
            return Err(ServeError::Protocol(format!(
                "program declares {} inputs, request carries {}",
                nl.num_inputs(),
                inputs.len()
            )));
        }
        // The wire program format cannot encode fused LUT nodes, so a
        // LUT-bearing netlist here means a caller bypassed assembly;
        // the cross-tenant wave drainer only batches boolean gates.
        if nl.num_luts() > 0 {
            return Err(ServeError::Protocol(format!(
                "program carries {} fused LUT nodes; serving requires boolean gate programs",
                nl.num_luts()
            )));
        }
        let mut values: Vec<Option<LweCiphertext>> = vec![None; nl.num_nodes()];
        for (node, ct) in nl.inputs().to_vec().into_iter().zip(inputs) {
            values[node.index()] = Some(ct);
        }
        let mut state = self.shared.state.lock().expect("scheduler poisoned");
        if state.shutdown {
            return Err(ServeError::Shutdown);
        }
        let in_flight = state.in_flight.get(&tenant).copied().unwrap_or(0);
        if in_flight >= quota {
            telemetry::metrics().counter_add("serve_jobs_rejected_quota_total", 1);
            return Err(ServeError::QuotaExceeded { in_flight, quota });
        }
        let id = state.next_job;
        state.next_job += 1;
        state.known.insert(id);
        *state.in_flight.entry(tenant).or_insert(0) += 1;
        let params = *key.params();
        let queue = state
            .tenants
            .entry(tenant)
            .or_insert_with(|| TenantQueue { key: Arc::clone(&key), jobs: Vec::new() });
        queue.jobs.push(JobState { id, params, nl, values, next_node: 0, staged: 0 });
        telemetry::metrics().counter_add("serve_jobs_submitted_total", 1);
        telemetry::metrics()
            .counter_add(&format!("serve_tenant_{tenant:016x}_jobs_submitted_total"), 1);
        telemetry::metrics()
            .gauge_set(&format!("serve_tenant_{tenant:016x}_queue_depth"), queue.jobs.len() as f64);
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Blocks until job `id` finishes, returning its output ciphertexts
    /// and the tenant's parameter set.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id never issued, and
    /// [`ServeError::Protocol`] if the job errored or the safety
    /// timeout expired.
    pub fn fetch(&self, id: u64) -> Result<(Vec<LweCiphertext>, Params), ServeError> {
        let mut state = self.shared.state.lock().expect("scheduler poisoned");
        if !state.known.contains(&id) {
            return Err(ServeError::UnknownJob(id));
        }
        loop {
            if let Some(result) = state.completed.remove(&id) {
                return result.map_err(ServeError::Protocol);
            }
            let (next, timed_out) =
                self.shared.done.wait_timeout(state, FETCH_TIMEOUT).expect("scheduler poisoned");
            state = next;
            if timed_out.timed_out() {
                return Err(ServeError::Protocol(format!(
                    "job {id} did not complete within {FETCH_TIMEOUT:?}"
                )));
            }
        }
    }

    /// Stops the scheduler after draining queued jobs, then joins the
    /// worker thread.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Folds the cheap non-bootstrapped node kinds inline. Returns `true`
/// when the node was handled without a wave slot.
fn fold_cheap(key: &ServerKey, job: &mut JobState, node_idx: usize) -> bool {
    let Node::Gate { kind, a, b: _ } = job.nl.node(pytfhe_netlist::NodeId(node_idx as u32)) else {
        return true; // inputs were seeded at submit
    };
    match kind {
        GateKind::Not => {
            let Some(src) = job.values[a.index()].clone() else { return false };
            job.values[node_idx] = Some(key.not(&src));
            true
        }
        GateKind::Buf => {
            let Some(src) = job.values[a.index()].clone() else { return false };
            job.values[node_idx] = Some(src);
            true
        }
        GateKind::Const0 => {
            job.values[node_idx] = Some(key.constant(false));
            true
        }
        GateKind::Const1 => {
            job.values[node_idx] = Some(key.constant(true));
            true
        }
        _ => false,
    }
}

/// Drains one wave of ready bootstrapped gates from all tenants,
/// fair-share bounded, folding cheap gates along the way.
fn collect_wave(state: &mut SchedState, max_wave: usize) -> Vec<WaveSlot> {
    let live: Vec<u64> =
        state.tenants.iter().filter(|(_, q)| !q.jobs.is_empty()).map(|(&fp, _)| fp).collect();
    if live.is_empty() {
        return Vec::new();
    }
    let fair_share = (max_wave / live.len()).max(1);
    let start = live.iter().position(|&fp| fp > state.rr_cursor).unwrap_or(0);
    let mut wave = Vec::new();
    for offset in 0..live.len() {
        let tenant = live[(start + offset) % live.len()];
        let queue = state.tenants.get_mut(&tenant).expect("live tenant");
        let mut share = fair_share.min(max_wave.saturating_sub(wave.len()));
        for job in &mut queue.jobs {
            while share > 0 && job.next_node < job.nl.num_nodes() {
                let node_idx = job.next_node;
                if job.values[node_idx].is_some() {
                    job.next_node += 1;
                    continue;
                }
                let Node::Gate { kind, a, b } =
                    job.nl.node(pytfhe_netlist::NodeId(node_idx as u32))
                else {
                    unreachable!("inputs are always seeded");
                };
                let Some(gate) = boot_gate(kind) else {
                    // Cheap gate: fold inline, or stall on an operand
                    // still in flight from this same wave.
                    if fold_cheap(&queue.key, job, node_idx) {
                        job.next_node += 1;
                        continue;
                    }
                    break;
                };
                // Operands still in flight from this same wave stall the
                // job until write-back.
                let (Some(ca), Some(cb)) =
                    (job.values[a.index()].clone(), job.values[b.index()].clone())
                else {
                    break;
                };
                wave.push(WaveSlot { tenant, job: job.id, node: node_idx, gate, a: ca, b: cb });
                job.staged += 1;
                job.next_node += 1;
                share -= 1;
            }
            if share == 0 {
                break;
            }
        }
        if wave.len() >= max_wave {
            break;
        }
    }
    if !wave.is_empty() {
        state.rr_cursor = live[start];
    }
    wave
}

/// Executes one wave outside the lock on the shared [`WorkerPool`]:
/// each tenant's slots are grouped by key, split into per-lane chunks,
/// and every chunk across every tenant is dispatched as one pool run —
/// so tenants bootstrap concurrently *and* a single tenant's wide wave
/// splits across lanes (idle lanes steal loaded tenants' chunks),
/// instead of one serial `batch_bootstrap_mixed` per tenant on the
/// scheduler thread. Bootstrap scratch (FFT buffers, SoA staging) is
/// pooled per tenant per chunk slot across waves — allocating it fresh
/// every wave measurably dominates small-job workloads.
fn execute_wave(
    keys: &HashMap<u64, Arc<ServerKey>>,
    wave: &[WaveSlot],
    scratch_pool: &mut HashMap<u64, Vec<GateScratch>>,
) -> Vec<(u64, u64, usize, LweCiphertext)> {
    let mut by_tenant: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, slot) in wave.iter().enumerate() {
        by_tenant.entry(slot.tenant).or_default().push(i);
    }
    let pool = WorkerPool::global();
    let width = pool.width();

    /// One tenant's staged share of the wave: wave indices, gate kinds,
    /// output buffers, and the chunk geometry splitting it across lanes.
    struct TenantWork {
        slots: Vec<usize>,
        gates: Vec<BootGate>,
        outs: Vec<LweCiphertext>,
        chunk: usize,
        scratch_base: usize,
    }
    let mut flat_scratches: Vec<GateScratch> = Vec::new();
    let mut scratch_owners: Vec<(u64, usize)> = Vec::new();
    let mut works: Vec<(u64, TenantWork)> = Vec::new();
    for (tenant, slots) in by_tenant {
        let key = &keys[&tenant];
        let chunk = slots.len().div_ceil(width).max(1);
        let n_chunks = slots.len().div_ceil(chunk);
        let mut scratches = scratch_pool.remove(&tenant).unwrap_or_default();
        while scratches.len() < n_chunks {
            scratches.push(key.gate_scratch());
        }
        let scratch_base = flat_scratches.len();
        scratch_owners.push((tenant, scratches.len()));
        flat_scratches.append(&mut scratches);
        let gates = slots.iter().map(|&i| wave[i].gate).collect();
        let outs = (0..slots.len()).map(|_| key.constant(false)).collect();
        works.push((tenant, TenantWork { slots, gates, outs, chunk, scratch_base }));
    }

    // Scratch hand-out is keyed by flat chunk index — unique per job —
    // so lanes can steal chunks without sharing buffers.
    let cells = SlotCells::new(std::mem::take(&mut flat_scratches));
    let run = {
        let cells_ref = &cells;
        let mut jobs: Vec<Job<'_>> = Vec::new();
        for (tenant, work) in works.iter_mut() {
            let key = &keys[tenant];
            let chunk = work.chunk;
            let scratch_base = work.scratch_base;
            for (c, ((slot_chunk, gate_chunk), out_chunk)) in work
                .slots
                .chunks(chunk)
                .zip(work.gates.chunks(chunk))
                .zip(work.outs.chunks_mut(chunk))
                .enumerate()
            {
                let scratch_idx = scratch_base + c;
                jobs.push(Box::new(move |lane| {
                    let _span = telemetry::worker_span_with(
                        "serve",
                        || format!("wave chunk: {} gates", slot_chunk.len()),
                        lane as u32,
                    );
                    // SAFETY: `scratch_idx` is unique per job (one
                    // chunk, one slot), so no two jobs share a scratch.
                    let scratch = unsafe { cells_ref.slot(scratch_idx) };
                    let pairs: Vec<(&LweCiphertext, &LweCiphertext)> =
                        slot_chunk.iter().map(|&i| (&wave[i].a, &wave[i].b)).collect();
                    key.batch_bootstrap_mixed(gate_chunk, &pairs, out_chunk, scratch);
                }));
            }
        }
        // A panicked bootstrap crashed the scheduler thread before the
        // pool existed too; keep that contract.
        pool.run(width, jobs).expect("serve wave worker panicked")
    };
    let mut flat = cells.into_inner();
    for &(tenant, count) in scratch_owners.iter().rev() {
        let rest = flat.split_off(flat.len() - count);
        scratch_pool.insert(tenant, rest);
    }
    telemetry::metrics().counter_add("serve_wave_steals_total", run.steals);

    let mut results = Vec::with_capacity(wave.len());
    for (_, work) in works {
        for (&i, out) in work.slots.iter().zip(work.outs) {
            results.push((wave[i].tenant, wave[i].job, wave[i].node, out));
        }
    }
    results
}

fn run_scheduler(shared: &Shared) {
    let mut scratch_pool: HashMap<u64, Vec<GateScratch>> = HashMap::new();
    loop {
        // Collect a wave (or exit) under the lock.
        let (wave, keys) = {
            let mut state = shared.state.lock().expect("scheduler poisoned");
            loop {
                let wave = collect_wave(&mut state, shared.max_wave);
                if !wave.is_empty() {
                    let keys: HashMap<u64, Arc<ServerKey>> = wave
                        .iter()
                        .map(|s| (s.tenant, Arc::clone(&state.tenants[&s.tenant].key)))
                        .collect();
                    break (wave, keys);
                }
                // Cheap-only jobs (no bootstrapped gates) finish during
                // collection; publish them before sleeping.
                finish_complete_jobs(&mut state, shared);
                let queued: usize = state.tenants.values().map(|q| q.jobs.len()).sum();
                if state.shutdown && queued == 0 {
                    return;
                }
                state = shared.work.wait(state).expect("scheduler poisoned");
            }
        };

        let occupancy = wave.len();
        let results = execute_wave(&keys, &wave, &mut scratch_pool);

        let mut state = shared.state.lock().expect("scheduler poisoned");
        // Drop scratch for tenants that no longer have live queues so the
        // pool stays bounded by the set of active tenants.
        scratch_pool.retain(|fp, _| state.tenants.contains_key(fp));
        for (tenant, job_id, node, ct) in results {
            if let Some(queue) = state.tenants.get_mut(&tenant) {
                if let Some(job) = queue.jobs.iter_mut().find(|j| j.id == job_id) {
                    job.values[node] = Some(ct);
                    job.staged -= 1;
                }
            }
        }
        let metrics = telemetry::metrics();
        metrics.counter_add("serve_waves_total", 1);
        metrics.counter_add("serve_gates_batched_total", occupancy as u64);
        metrics.observe("serve_batch_occupancy", occupancy as f64, &OCCUPANCY_BUCKETS);
        finish_complete_jobs(&mut state, shared);
        // Dependent gates unblocked by this wave are picked up by the
        // next collect_wave call without waiting.
    }
}

/// Moves finished jobs from their queues into the completed map and
/// wakes fetchers.
fn finish_complete_jobs(state: &mut SchedState, shared: &Shared) {
    let mut finished = Vec::new();
    for (&tenant, queue) in &mut state.tenants {
        let mut i = 0;
        while i < queue.jobs.len() {
            if queue.jobs[i].complete() {
                let job = queue.jobs.remove(i);
                let outputs: Result<(Vec<LweCiphertext>, Params), String> = job
                    .nl
                    .outputs()
                    .iter()
                    .map(|&n| {
                        job.values[n.index()]
                            .clone()
                            .ok_or_else(|| format!("output node {} never computed", n.index()))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|cts| (cts, job.params));
                finished.push((tenant, job.id, outputs, queue.jobs.len()));
            } else {
                i += 1;
            }
        }
    }
    if finished.is_empty() {
        return;
    }
    let metrics = telemetry::metrics();
    for (tenant, id, outputs, depth) in finished {
        state.completed.insert(id, outputs);
        if let Some(count) = state.in_flight.get_mut(&tenant) {
            *count = count.saturating_sub(1);
        }
        metrics.counter_add("serve_jobs_completed_total", 1);
        metrics.counter_add(&format!("serve_tenant_{tenant:016x}_jobs_completed_total"), 1);
        metrics.gauge_set(&format!("serve_tenant_{tenant:016x}_queue_depth"), depth as f64);
    }
    shared.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn setup() -> (ClientKey, Arc<ServerKey>, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(11);
        let ck = ClientKey::generate(Params::testing(), &mut rng);
        let sk = Arc::new(ck.server_key(&mut rng));
        (ck, sk, rng)
    }

    fn xor_chain(bits: usize) -> Netlist {
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..bits).map(|_| nl.add_input()).collect();
        let mut acc = inputs[0];
        for &next in &inputs[1..] {
            acc = nl.add_gate(GateKind::Xor, acc, next).unwrap();
        }
        nl.mark_output(acc).unwrap();
        nl
    }

    #[test]
    fn single_job_matches_plaintext() {
        let (ck, sk, mut rng) = setup();
        let sched = Scheduler::start(16);
        let nl = xor_chain(5);
        let bits = [true, false, true, true, false];
        let cts = ck.encrypt_bits(&bits, &mut rng);
        let id = sched.submit(1, sk, nl.clone(), cts, 8).unwrap();
        let (out, _) = sched.fetch(id).unwrap();
        assert_eq!(ck.decrypt_bits(&out), nl.eval_plain(&bits));
        sched.shutdown();
    }

    #[test]
    fn quota_rejects_the_excess_job() {
        let (ck, sk, mut rng) = setup();
        let sched = Scheduler::start(4);
        // Quota 1: the first job is admitted, an immediate second is not.
        let nl = xor_chain(8);
        let bits = vec![true; 8];
        let id = sched
            .submit(7, Arc::clone(&sk), nl.clone(), ck.encrypt_bits(&bits, &mut rng), 1)
            .unwrap();
        match sched.submit(7, Arc::clone(&sk), nl.clone(), ck.encrypt_bits(&bits, &mut rng), 1) {
            Err(ServeError::QuotaExceeded { in_flight: 1, quota: 1 }) => {}
            other => panic!("expected quota rejection, got {other:?}"),
        }
        sched.fetch(id).unwrap();
        // The slot freed; the tenant may submit again.
        sched.submit(7, sk, nl, ck.encrypt_bits(&bits, &mut rng), 1).unwrap();
        sched.shutdown();
    }

    #[test]
    fn unknown_job_is_a_typed_error() {
        let sched = Scheduler::start(4);
        assert!(matches!(sched.fetch(999), Err(ServeError::UnknownJob(999))));
        sched.shutdown();
    }

    #[test]
    fn cheap_only_programs_complete_without_a_wave() {
        let (ck, sk, mut rng) = setup();
        let sched = Scheduler::start(4);
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let n = nl.add_gate(GateKind::Not, a, a).unwrap();
        nl.mark_output(n).unwrap();
        let id = sched.submit(3, sk, nl, ck.encrypt_bits(&[true], &mut rng), 4).unwrap();
        let (out, _) = sched.fetch(id).unwrap();
        assert_eq!(ck.decrypt_bits(&out), vec![false]);
        sched.shutdown();
    }

    #[test]
    fn two_tenants_share_waves_and_both_finish_correctly() {
        let mut rng = SecureRng::seed_from_u64(21);
        let ck1 = ClientKey::generate(Params::testing(), &mut rng);
        let sk1 = Arc::new(ck1.server_key(&mut rng));
        let ck2 = ClientKey::generate(Params::testing(), &mut rng);
        let sk2 = Arc::new(ck2.server_key(&mut rng));
        let sched = Scheduler::start(8);
        let nl = xor_chain(6);
        let bits1 = [true, true, false, true, false, false];
        let bits2 = [false, true, true, true, true, false];
        let id1 = sched.submit(1, sk1, nl.clone(), ck1.encrypt_bits(&bits1, &mut rng), 4).unwrap();
        let id2 = sched.submit(2, sk2, nl.clone(), ck2.encrypt_bits(&bits2, &mut rng), 4).unwrap();
        assert_eq!(ck1.decrypt_bits(&sched.fetch(id1).unwrap().0), nl.eval_plain(&bits1));
        assert_eq!(ck2.decrypt_bits(&sched.fetch(id2).unwrap().0), nl.eval_plain(&bits2));
        sched.shutdown();
    }
}
