//! Blocking serving-protocol client.
//!
//! Wraps any [`Transport`] in the frame protocol: install a server
//! key once, then submit programs and fetch results. Each method is
//! one request/reply exchange; error replies come back as the typed
//! [`ServeError`] the server raised, so callers can react to
//! [`ServeError::QuotaExceeded`] with backoff rather than string
//! matching.

use pytfhe_netlist::Netlist;
use pytfhe_tfhe::{LweCiphertext, Params};
use pytfhe_wire::Format;

use crate::error::ServeError;
use crate::frame::{
    encode_fetch, encode_install_key, encode_submit, expect_reply, read_frame, reply_to_error,
    write_frame, Reply, Status,
};
use crate::transport::Transport;

/// A client session over one transport.
pub struct ServeClient<T: Transport> {
    transport: T,
}

impl<T: Transport> ServeClient<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        ServeClient { transport }
    }

    fn exchange(&mut self, format: Format, payload: &[u8]) -> Result<Reply, ServeError> {
        write_frame(&mut self.transport, format, payload)?;
        let (rformat, rversion, rpayload) = read_frame(&mut self.transport)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))?;
        let reply = expect_reply(rformat, rversion, &rpayload)?;
        if reply.status == Status::Ok {
            Ok(reply)
        } else {
            Err(reply_to_error(&reply))
        }
    }

    /// Installs serialized server-key bytes, returning the fingerprint
    /// that names this tenant in every subsequent submit.
    ///
    /// # Errors
    ///
    /// Transport failures, plus whatever typed error the server raised.
    pub fn install_key(&mut self, key_bytes: &[u8]) -> Result<u64, ServeError> {
        let reply = self.exchange(Format::ServeInstallKey, &encode_install_key(key_bytes))?;
        reply
            .fingerprint
            .ok_or_else(|| ServeError::Protocol("install reply lacks a fingerprint".into()))
    }

    /// Submits a program with its encrypted inputs under an installed
    /// key. Returns the job id; the server schedules asynchronously.
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`] at the tenant quota,
    /// [`ServeError::UnknownKey`] for an uninstalled fingerprint, plus
    /// transport failures.
    pub fn submit(
        &mut self,
        fingerprint: u64,
        nl: &Netlist,
        inputs: &[LweCiphertext],
        params: &Params,
    ) -> Result<u64, ServeError> {
        let reply =
            self.exchange(Format::ServeSubmit, &encode_submit(fingerprint, nl, inputs, params))?;
        reply.job.ok_or_else(|| ServeError::Protocol("submit reply lacks a job id".into()))
    }

    /// Blocks until the job finishes and returns its output
    /// ciphertexts.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for a bad id, plus transport
    /// failures.
    pub fn fetch(&mut self, job: u64) -> Result<Vec<LweCiphertext>, ServeError> {
        let reply = self.exchange(Format::ServeFetch, &encode_fetch(job))?;
        reply.outputs.ok_or_else(|| ServeError::Protocol("fetch reply lacks outputs".into()))
    }

    /// Runs a program synchronously: submit then fetch.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::submit`] and [`ServeClient::fetch`]
    /// can raise.
    pub fn run(
        &mut self,
        fingerprint: u64,
        nl: &Netlist,
        inputs: &[LweCiphertext],
        params: &Params,
    ) -> Result<Vec<LweCiphertext>, ServeError> {
        let job = self.submit(fingerprint, nl, inputs, params)?;
        self.fetch(job)
    }

    /// Ends the session cleanly, waiting for the server's
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn close(mut self) -> Result<(), ServeError> {
        self.exchange(Format::ServeClose, &[])?;
        Ok(())
    }
}
