//! Property-based tests of the netlist IR and its optimization passes.

use proptest::prelude::*;
use pytfhe_netlist::opt::{
    absorb_inverters, constant_fold, cse, dce, lut_cover, optimize, LutCoverConfig, OptConfig,
};
use pytfhe_netlist::topo::{LevelSchedule, Levels};
use pytfhe_netlist::{GateKind, Netlist, Node, NodeId, ALL_GATE_KINDS};

fn random_netlist(inputs: usize, max_gates: usize) -> impl Strategy<Value = Netlist> {
    prop::collection::vec(
        (0usize..ALL_GATE_KINDS.len(), any::<prop::sample::Index>(), any::<prop::sample::Index>()),
        1..max_gates,
    )
    .prop_map(move |choices| {
        let mut nl = Netlist::new();
        let mut pool: Vec<NodeId> = (0..inputs).map(|_| nl.add_input()).collect();
        for (k, ia, ib) in choices {
            let kind = ALL_GATE_KINDS[k];
            let a = pool[ia.index(pool.len())];
            let b = pool[ib.index(pool.len())];
            pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
        }
        let n = pool.len();
        nl.mark_output(pool[n - 1]).expect("exists");
        nl.mark_output(pool[n / 2]).expect("exists");
        nl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Each individual pass preserves semantics (not just the pipeline).
    #[test]
    fn each_pass_preserves_semantics(
        nl in random_netlist(5, 100),
        bits in prop::collection::vec(any::<bool>(), 5),
    ) {
        let want = nl.eval_plain(&bits);
        prop_assert_eq!(&constant_fold(&nl).0.eval_plain(&bits), &want, "fold");
        prop_assert_eq!(&absorb_inverters(&nl).0.eval_plain(&bits), &want, "absorb");
        prop_assert_eq!(&cse(&nl).0.eval_plain(&bits), &want, "cse");
        prop_assert_eq!(&dce(&nl).0.eval_plain(&bits), &want, "dce");
    }

    /// The optimizer is idempotent at its fixpoint.
    #[test]
    fn optimizer_is_idempotent(nl in random_netlist(5, 80)) {
        let (once, _) = optimize(&nl, &OptConfig::default()).expect("valid");
        let (twice, report) = optimize(&once, &OptConfig::default()).expect("valid");
        prop_assert_eq!(once.num_gates(), twice.num_gates());
        prop_assert!(report.gates_after == report.gates_before);
    }

    /// Level assignments respect dependencies and schedules cover every
    /// gate exactly once.
    #[test]
    fn levels_respect_dependencies(nl in random_netlist(4, 120)) {
        let levels = Levels::compute(&nl);
        for (i, node) in nl.nodes().iter().enumerate() {
            if let pytfhe_netlist::Node::Gate { kind, a, b } = *node {
                if kind.is_const() {
                    continue;
                }
                prop_assert!(levels.level[i] > levels.level[a.index()]);
                if !kind.is_unary() {
                    prop_assert!(levels.level[i] > levels.level[b.index()]);
                }
            }
        }
        let sched = LevelSchedule::from_levels(&nl, &levels);
        prop_assert_eq!(sched.num_gates(), nl.num_gates());
    }

    /// Optimized netlists never have more bootstrapped gates, and the
    /// optimizer's validation accepts its own output.
    #[test]
    fn optimizer_monotone_and_valid(nl in random_netlist(5, 100)) {
        let before = nl.num_bootstrapped_gates();
        let (opt, _) = optimize(&nl, &OptConfig::default()).expect("valid input");
        prop_assert!(opt.num_bootstrapped_gates() <= before);
        prop_assert!(opt.validate().is_ok());
        prop_assert_eq!(opt.num_inputs(), nl.num_inputs());
        prop_assert_eq!(opt.outputs().len(), nl.outputs().len());
    }

    /// LUT covering is bit-exact on random circuits at every width
    /// limit, never increases the bootstrap count, and produces only
    /// Input/Lut/Const nodes.
    #[test]
    fn lut_cover_is_bit_exact_on_random_circuits(
        nl in random_netlist(5, 100),
        max_width in 2usize..5,
        bits in prop::collection::vec(any::<bool>(), 5),
    ) {
        let want = nl.eval_plain(&bits);
        let cfg = LutCoverConfig { max_width, ..LutCoverConfig::default() };
        let (lowered, report) = lut_cover(&nl, &cfg).expect("valid input");
        prop_assert_eq!(&lowered.eval_plain(&bits), &want);
        prop_assert!(lowered.validate().is_ok());
        prop_assert!(report.bootstraps_after <= report.bootstraps_before, "{}", report);
        prop_assert_eq!(report.luts_emitted, lowered.num_luts());
        for node in lowered.nodes() {
            match node {
                Node::Input | Node::Lut { .. } => {}
                Node::Gate { kind, .. } => prop_assert!(kind.is_const(), "leftover {}", kind),
            }
        }
        // The optimizer accepts (and preserves) lowered netlists.
        let (opt, _) = optimize(&lowered, &OptConfig::default()).expect("valid lowered");
        prop_assert_eq!(&opt.eval_plain(&bits), &want);
    }

    /// Gate histograms and stats are consistent with direct counts.
    #[test]
    fn stats_are_consistent(nl in random_netlist(4, 60)) {
        let stats = pytfhe_netlist::NetlistStats::of(&nl);
        prop_assert_eq!(stats.gates, nl.num_gates());
        prop_assert_eq!(stats.histogram.total() as usize, nl.num_gates());
        prop_assert_eq!(
            stats.histogram.total_bootstrapped() as usize,
            nl.num_bootstrapped_gates()
        );
        let buf_and_const: u64 = stats.histogram.count(GateKind::Buf)
            + stats.histogram.count(GateKind::Const0)
            + stats.histogram.count(GateKind::Const1);
        prop_assert_eq!(stats.histogram.total() - buf_and_const, stats.histogram.total_bootstrapped());
    }
}
