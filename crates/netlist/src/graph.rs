use crate::{GateKind, LutSpec, NetlistError};
use std::fmt;

/// Identifier of a node (input signal or gate) inside a [`Netlist`].
///
/// Node ids are dense indices assigned in creation order; because gates may
/// only reference already-existing nodes, every netlist is topologically
/// ordered by construction. This in-memory representation uses 32-bit ids
/// (4 G nodes); the on-disk PyTFHE binary format widens them to the 62-bit
/// indices of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for direct slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A single node of the DAG: a primary input, a two-input gate, or a
/// fused multi-input LUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A primary input signal (one encrypted bit at run time).
    Input,
    /// A gate evaluating `kind` on the outputs of nodes `a` and `b`.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// First operand.
        a: NodeId,
        /// Second operand (equal to `a` for unary gates, ignored for
        /// constants).
        b: NodeId,
    },
    /// A fused LUT evaluating `spec` on `ins[..spec.width]`, produced by
    /// the [`crate::opt::lut_cover`] pass and executed by one
    /// programmable bootstrap. Unused input slots repeat `ins[0]` so
    /// structurally equal LUTs compare equal.
    Lut {
        /// Truth table, width, and wire precision.
        spec: LutSpec,
        /// Input operands; only `ins[..spec.width]` are read.
        ins: [NodeId; crate::MAX_LUT_INPUTS],
    },
}

/// A named, ordered group of nodes forming a logical signal bundle,
/// e.g. the 16 bits of one `Float(8, 8)` tensor element.
///
/// Ports let the ChiselTorch frontend communicate tensor layouts to the
/// client encryption API without constraining the flat bit-level program
/// the backends execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, e.g. `"input"` or `"logits[3]"`.
    pub name: String,
    /// The nodes carrying this port's bits, least significant first.
    pub bits: Vec<NodeId>,
}

/// A combinational TFHE program: a DAG of two-input gates.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty netlist with preallocated capacity for `nodes`
    /// nodes. Building multi-million-gate neural-network circuits reallocates
    /// heavily otherwise.
    pub fn with_capacity(nodes: usize) -> Self {
        Netlist { nodes: Vec::with_capacity(nodes), ..Self::default() }
    }

    /// Appends a primary input and returns its id.
    pub fn add_input(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input);
        self.inputs.push(id);
        id
    }

    /// Appends a gate evaluating `kind` on `a` and `b` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingInput`] if either operand does not
    /// refer to an existing node, and [`NetlistError::TooLarge`] once the
    /// 32-bit id space is exhausted.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        a: NodeId,
        b: NodeId,
    ) -> Result<NodeId, NetlistError> {
        let len = self.nodes.len() as u64;
        // Constants have no real operands; normalize them to node 0 so that
        // structurally equal constants compare equal. Unary gates normalize
        // their ignored second operand to the first.
        let (a, b) = if kind.is_const() {
            (NodeId(0), NodeId(0))
        } else if kind.is_unary() {
            (a, a)
        } else {
            (a, b)
        };
        if !kind.is_const() {
            if u64::from(a.0) >= len {
                return Err(NetlistError::DanglingInput { node: u64::from(a.0), len });
            }
            if u64::from(b.0) >= len {
                return Err(NetlistError::DanglingInput { node: u64::from(b.0), len });
            }
        }
        if len >= u64::from(u32::MAX) {
            return Err(NetlistError::TooLarge);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Gate { kind, a, b });
        Ok(id)
    }

    /// Appends a fused LUT node evaluating `spec` on `ins` and returns its
    /// id. Unused input slots are normalized to repeat `ins[0]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingInput`] if any of the first
    /// `spec.width` operands does not refer to an existing node, and
    /// [`NetlistError::TooLarge`] once the id space is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `ins` holds fewer than `spec.width` operands.
    pub fn add_lut(&mut self, spec: LutSpec, ins: &[NodeId]) -> Result<NodeId, NetlistError> {
        let width = spec.width as usize;
        assert!(ins.len() >= width, "LUT of width {width} needs {width} operands");
        let len = self.nodes.len() as u64;
        for &op in &ins[..width] {
            if u64::from(op.0) >= len {
                return Err(NetlistError::DanglingInput { node: u64::from(op.0), len });
            }
        }
        if len >= u64::from(u32::MAX) {
            return Err(NetlistError::TooLarge);
        }
        let mut slots = [ins[0]; crate::MAX_LUT_INPUTS];
        slots[..width].copy_from_slice(&ins[..width]);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Lut { spec, ins: slots });
        Ok(id)
    }

    /// Marks `node` as a primary output. A node may be marked several times;
    /// each mark produces one output instruction in the assembled binary.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownOutput`] if the node does not exist.
    pub fn mark_output(&mut self, node: NodeId) -> Result<(), NetlistError> {
        if node.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownOutput { node: u64::from(node.0) });
        }
        self.outputs.push(node);
        Ok(())
    }

    /// Declares a named input port over nodes that must already be inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadPort`] if any node does not exist or is
    /// not a primary input.
    pub fn declare_input_port(
        &mut self,
        name: impl Into<String>,
        bits: Vec<NodeId>,
    ) -> Result<(), NetlistError> {
        let name = name.into();
        for &bit in &bits {
            match self.nodes.get(bit.index()) {
                Some(Node::Input) => {}
                _ => return Err(NetlistError::BadPort { name }),
            }
        }
        self.input_ports.push(Port { name, bits });
        Ok(())
    }

    /// Declares a named output port; the nodes are also marked as outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadPort`] if any node does not exist.
    pub fn declare_output_port(
        &mut self,
        name: impl Into<String>,
        bits: Vec<NodeId>,
    ) -> Result<(), NetlistError> {
        let name = name.into();
        for &bit in &bits {
            if bit.index() >= self.nodes.len() {
                return Err(NetlistError::BadPort { name });
            }
        }
        for &bit in &bits {
            self.outputs.push(bit);
        }
        self.output_ports.push(Port { name, bits });
        Ok(())
    }

    /// All nodes in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Primary inputs in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order (duplicates possible).
    #[inline]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Declared input ports.
    #[inline]
    pub fn input_ports(&self) -> &[Port] {
        &self.input_ports
    }

    /// Declared output ports.
    #[inline]
    pub fn output_ports(&self) -> &[Port] {
        &self.output_ports
    }

    /// Total number of nodes (inputs + gates).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of gates (excluding primary inputs).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - self.inputs.len()
    }

    /// Number of *bootstrapped* gates: gates that cost a TFHE bootstrapping
    /// at run time. Constants and buffers are free on every backend, so they
    /// are excluded; this is the gate count reported in the paper's Figure
    /// 14 comparison.
    pub fn num_bootstrapped_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| match n {
                Node::Gate { kind, .. } => !kind.is_const() && *kind != GateKind::Buf,
                Node::Lut { spec, .. } => spec.bootstraps() > 0,
                Node::Input => false,
            })
            .count()
    }

    /// Number of fused LUT nodes.
    pub fn num_luts(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Lut { .. })).count()
    }

    /// The wire precision of a LUT-lowered netlist: the (single, global)
    /// message precision its LUT nodes carry, or `None` if the netlist
    /// has no LUTs. Lowered netlists are homogeneous by construction, so
    /// this is the maximum over nodes.
    pub fn lut_precision(&self) -> Option<u8> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Lut { spec, .. } => Some(spec.precision),
                _ => None,
            })
            .max()
    }

    /// Evaluates the netlist on plaintext input bits, returning the output
    /// bits in output order. This is the reference oracle used throughout
    /// the test suites.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits.len()` differs from [`Netlist::num_inputs`].
    pub fn eval_plain(&self, input_bits: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_bits.len(),
            self.inputs.len(),
            "expected {} input bits, got {}",
            self.inputs.len(),
            input_bits.len()
        );
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Input => {
                    values[i] = input_bits[next_input];
                    next_input += 1;
                }
                Node::Gate { kind, a, b } => {
                    values[i] = kind.eval(values[a.index()], values[b.index()]);
                }
                Node::Lut { spec, ins } => {
                    let j = ins[..spec.width as usize]
                        .iter()
                        .enumerate()
                        .fold(0usize, |acc, (bit, op)| {
                            acc | (usize::from(values[op.index()]) << bit)
                        });
                    values[i] = spec.eval(j);
                }
            }
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Drops output marks beyond `len`; used by the optimizer's rewriter,
    /// which rebuilds the flat output list itself.
    pub(crate) fn truncate_outputs_impl(&mut self, len: usize) {
        self.outputs.truncate(len);
    }

    /// Checks structural invariants: operands precede their gates, outputs
    /// exist, ports reference valid nodes, and at least one output is
    /// declared.
    ///
    /// Netlists built through this API uphold these by construction; this is
    /// used to validate netlists decoded from untrusted binaries.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Gate { kind, a, b } => {
                    if kind.is_const() {
                        continue;
                    }
                    if a.index() >= i {
                        return Err(NetlistError::DanglingInput {
                            node: u64::from(a.0),
                            len: i as u64,
                        });
                    }
                    if !kind.is_unary() && b.index() >= i {
                        return Err(NetlistError::DanglingInput {
                            node: u64::from(b.0),
                            len: i as u64,
                        });
                    }
                }
                Node::Lut { spec, ins } => {
                    for op in &ins[..spec.width as usize] {
                        if op.index() >= i {
                            return Err(NetlistError::DanglingInput {
                                node: u64::from(op.0),
                                len: i as u64,
                            });
                        }
                    }
                }
                Node::Input => {}
            }
        }
        for out in &self.outputs {
            if out.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownOutput { node: u64::from(out.0) });
            }
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let sum = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let carry = nl.add_gate(GateKind::And, a, b).unwrap();
        nl.mark_output(sum).unwrap();
        nl.mark_output(carry).unwrap();
        nl
    }

    #[test]
    fn half_adder_truth_table() {
        let nl = half_adder();
        assert_eq!(nl.eval_plain(&[false, false]), vec![false, false]);
        assert_eq!(nl.eval_plain(&[true, false]), vec![true, false]);
        assert_eq!(nl.eval_plain(&[false, true]), vec![true, false]);
        assert_eq!(nl.eval_plain(&[true, true]), vec![false, true]);
    }

    #[test]
    fn counts() {
        let nl = half_adder();
        assert_eq!(nl.num_nodes(), 4);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.num_bootstrapped_gates(), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn dangling_input_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let err = nl.add_gate(GateKind::And, a, NodeId(7)).unwrap_err();
        assert!(matches!(err, NetlistError::DanglingInput { node: 7, .. }));
    }

    #[test]
    fn unknown_output_rejected() {
        let mut nl = Netlist::new();
        nl.add_input();
        assert!(nl.mark_output(NodeId(9)).is_err());
    }

    #[test]
    fn no_outputs_invalid() {
        let mut nl = Netlist::new();
        nl.add_input();
        assert_eq!(nl.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn ports() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        nl.declare_input_port("x", vec![a, b]).unwrap();
        let g = nl.add_gate(GateKind::Or, a, b).unwrap();
        nl.declare_output_port("y", vec![g]).unwrap();
        assert_eq!(nl.input_ports()[0].name, "x");
        assert_eq!(nl.outputs(), &[g]);
        // A gate is not a valid input-port bit.
        assert!(nl.declare_input_port("bad", vec![g]).is_err());
    }

    #[test]
    fn lut_nodes_evaluate_and_validate() {
        use crate::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let c = nl.add_input();
        // Full-adder sum: parity of three bits, one width-3 LUT.
        let parity = LutSpec::new(3, 3, 0b1001_0110);
        let sum = nl.add_lut(parity, &[a, b, c]).unwrap();
        let inv = nl.add_lut(LutSpec::new(1, 3, 0b01), &[sum]).unwrap();
        nl.mark_output(sum).unwrap();
        nl.mark_output(inv).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.num_luts(), 2);
        assert_eq!(nl.lut_precision(), Some(3));
        // Only the parity LUT bootstraps; the inverter is affine.
        assert_eq!(nl.num_bootstrapped_gates(), 1);
        for bits in 0u32..8 {
            let input: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let want = bits.count_ones() % 2 == 1;
            assert_eq!(nl.eval_plain(&input), vec![want, !want], "{input:?}");
        }
    }

    #[test]
    fn lut_dangling_input_rejected() {
        use crate::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let err = nl.add_lut(LutSpec::new(2, 2, 0b0110), &[a, NodeId(9)]).unwrap_err();
        assert!(matches!(err, NetlistError::DanglingInput { node: 9, .. }));
    }

    #[test]
    fn buf_and_const_not_bootstrapped() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let c = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let buf = nl.add_gate(GateKind::Buf, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, c, buf).unwrap();
        nl.mark_output(g).unwrap();
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.num_bootstrapped_gates(), 1);
        assert_eq!(nl.eval_plain(&[true]), vec![true]);
    }
}
