//! Netlist optimization passes — the Yosys-`opt`/ABC substitute of the
//! PyTFHE compilation flow (Step 2 of Figure 2).
//!
//! Every TFHE gate costs a bootstrapping (around 13 ms on one CPU core,
//! Figure 7), so gate-count reduction translates one-for-one into runtime
//! reduction. The passes here are semantics-preserving rewrites of the DAG:
//!
//! * [`constant_fold`] — propagates `CONST0`/`CONST1` (baked-in plaintext
//!   model weights produce many), simplifies trivial identities
//!   (`XOR(x, x) = 0`, `AND(x, x) = x`, …) and removes buffers,
//! * [`absorb_inverters`] — folds `NOT` gates into their consumers using
//!   the negated-input gate kinds (`AND(!a, b) → ANDNY(a, b)`),
//! * [`cse`] — structural common-subexpression elimination,
//! * [`dce`] — dead-gate elimination by backward reachability,
//! * [`optimize`] — runs the full pipeline to a fixpoint.
//!
//! All passes preserve the number and order of primary inputs and outputs,
//! so an optimized netlist is a drop-in replacement for the original.

//! A fifth pass changes the *execution model* rather than the gate count
//! and therefore runs separately from [`optimize`]:
//!
//! * [`lut_cover`] — extracts fanout-free multi-gate cones of up to
//!   `max_width` inputs and fuses each into a single [`Node::Lut`]
//!   evaluated by one programmable bootstrap, then lowers every
//!   remaining gate to an equivalent width-≤2 LUT so the whole netlist
//!   runs on one message encoding. Cones are fused only when they
//!   strictly reduce the bootstrap count.

use crate::{GateKind, LutSpec, Netlist, NetlistError, Node, NodeId, Port};
use std::collections::HashMap;
use std::fmt;

/// Result of resolving an old node through a rewrite: either a known
/// constant or a node in the new netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Lit {
    Const(bool),
    Id(NodeId),
}

/// Bookkeeping shared by all passes: maps old node ids to new literals and
/// rebuilds ports/outputs at the end.
struct Rewriter {
    out: Netlist,
    map: Vec<Lit>,
}

impl Rewriter {
    fn new(nl: &Netlist) -> Self {
        Rewriter {
            out: Netlist::with_capacity(nl.num_nodes()),
            map: Vec::with_capacity(nl.num_nodes()),
        }
    }

    /// Copies a primary input (inputs are always preserved).
    fn copy_input(&mut self) {
        let id = self.out.add_input();
        self.map.push(Lit::Id(id));
    }

    fn resolve(&self, old: NodeId) -> Lit {
        self.map[old.index()]
    }

    /// Materializes a literal as a node id in the new netlist (constants
    /// become `CONST` gates). Needed for outputs, which must be node ids.
    fn materialize(&mut self, lit: Lit) -> NodeId {
        match lit {
            Lit::Id(id) => id,
            Lit::Const(b) => {
                let kind = if b { GateKind::Const1 } else { GateKind::Const0 };
                let zero = NodeId(0);
                self.out
                    .add_gate(kind, zero, zero)
                    .expect("materializing a constant cannot fail: node 0 exists")
            }
        }
    }

    /// Finishes the rewrite: rebuilds outputs and ports of `src` in the new
    /// netlist.
    fn finish(mut self, src: &Netlist) -> Netlist {
        debug_assert_eq!(self.map.len(), src.num_nodes());
        let outputs: Vec<Lit> = src.outputs().iter().map(|&o| self.resolve(o)).collect();
        // Output ports first (they mark their own outputs); plain outputs
        // that belong to no port are re-marked individually. To preserve
        // output *order* exactly we bypass declare_output_port and rebuild
        // both lists manually.
        for lit in outputs {
            let id = self.materialize(lit);
            self.out.mark_output(id).expect("materialized output exists");
        }
        let in_ports: Vec<Port> = src
            .input_ports()
            .iter()
            .map(|p| Port {
                name: p.name.clone(),
                bits: p
                    .bits
                    .iter()
                    .map(|&b| match self.resolve(b) {
                        Lit::Id(id) => id,
                        Lit::Const(_) => unreachable!("primary inputs never fold to constants"),
                    })
                    .collect(),
            })
            .collect();
        for p in in_ports {
            self.out.declare_input_port(p.name, p.bits).expect("rewritten input port stays valid");
        }
        let out_ports: Vec<(String, Vec<Lit>)> = src
            .output_ports()
            .iter()
            .map(|p| (p.name.clone(), p.bits.iter().map(|&b| self.resolve(b)).collect()))
            .collect();
        for (name, lits) in out_ports {
            let bits: Vec<NodeId> = lits.into_iter().map(|l| self.materialize(l)).collect();
            // Port bits were already marked as outputs above (output ports
            // contribute to `outputs()`), so only record the port metadata.
            self.out.push_output_port_raw(name, bits);
        }
        self.out
    }
}

impl Netlist {
    /// Records output-port metadata without re-marking outputs; used by the
    /// rewriter, which reconstructs the flat output list itself to preserve
    /// ordering exactly.
    pub(crate) fn push_output_port_raw(&mut self, name: String, bits: Vec<NodeId>) {
        // Reuse declare_output_port's validation but drop the extra marks it
        // added: it appends `bits.len()` entries at the tail.
        let before = self.outputs().len();
        self.declare_output_port(name, bits).expect("rewritten output port stays valid");
        self.truncate_outputs(before);
    }

    pub(crate) fn truncate_outputs(&mut self, len: usize) {
        self.truncate_outputs_impl(len);
    }
}

/// Statistics of one optimization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Gates before the pass.
    pub gates_before: usize,
    /// Gates after the pass.
    pub gates_after: usize,
}

impl PassStats {
    /// Gates removed by the pass.
    pub fn removed(&self) -> usize {
        self.gates_before.saturating_sub(self.gates_after)
    }
}

/// Propagates constants, simplifies same-operand identities, and removes
/// buffers and double negations.
pub fn constant_fold(nl: &Netlist) -> (Netlist, PassStats) {
    let before = nl.num_gates();
    let mut rw = Rewriter::new(nl);
    for node in nl.nodes() {
        match *node {
            Node::Input => rw.copy_input(),
            Node::Gate { kind, a, b } => {
                let lit = if kind.is_const() {
                    Lit::Const(kind == GateKind::Const1)
                } else {
                    let la = rw.resolve(a);
                    let lb = rw.resolve(b);
                    fold_gate(&mut rw, kind, la, lb)
                };
                rw.map.push(lit);
            }
            Node::Lut { spec, ins } => {
                let lit = fold_lut(&mut rw, spec, &ins);
                rw.map.push(lit);
            }
        }
    }
    let out = rw.finish(nl);
    let stats = PassStats { gates_before: before, gates_after: out.num_gates() };
    (out, stats)
}

/// Folds a LUT node: constant inputs specialize the table to a narrower
/// LUT; fully-constant and passthrough tables disappear. The result stays
/// in LUT form (never a two-input [`GateKind`]), preserving the lowered
/// netlist's single-encoding invariant.
fn fold_lut(rw: &mut Rewriter, spec: LutSpec, ins: &[NodeId]) -> Lit {
    let mut width = spec.width;
    let mut table = spec.table;
    let mut ops: Vec<NodeId> = Vec::with_capacity(width as usize);
    for &input in ins.iter().take(spec.width as usize) {
        match rw.resolve(input) {
            Lit::Id(id) => ops.push(id),
            Lit::Const(c) => {
                // Fix the input currently at position `ops.len()` to `c`:
                // keep the table entries whose bit at that position is `c`.
                let pos = ops.len();
                let mut narrowed = 0u16;
                for j in 0..1usize << (width - 1) {
                    let low = j & ((1 << pos) - 1);
                    let high = j >> pos;
                    let full = low | (usize::from(c) << pos) | (high << (pos + 1));
                    narrowed |= ((table >> full) & 1) << j;
                }
                table = narrowed;
                width -= 1;
            }
        }
    }
    if width == 0 {
        return Lit::Const(table & 1 == 1);
    }
    let folded = LutSpec::new(width, spec.precision, table);
    if let Some(c) = folded.as_const() {
        return Lit::Const(c);
    }
    if folded.is_passthrough() {
        return Lit::Id(ops[0]);
    }
    Lit::Id(rw.out.add_lut(folded, &ops).expect("operands exist in rewritten netlist"))
}

/// Core folding rules for a single gate; emits a gate only when no rule
/// applies.
fn fold_gate(rw: &mut Rewriter, kind: GateKind, la: Lit, lb: Lit) -> Lit {
    use GateKind::*;
    // Rule 0: constants evaluate immediately.
    if kind == Const0 {
        return Lit::Const(false);
    }
    if kind == Const1 {
        return Lit::Const(true);
    }
    // Rule 1: both operands constant.
    if let (Lit::Const(ca), Lit::Const(cb)) = (la, lb) {
        return Lit::Const(kind.eval(ca, cb));
    }
    // Rule 2: unary gates.
    if kind == Buf {
        return la;
    }
    if kind == Not {
        return match la {
            Lit::Const(c) => Lit::Const(!c),
            Lit::Id(id) => emit_not(rw, id),
        };
    }
    // Rule 3: one constant operand — specialize to a unary function of the
    // other operand.
    if let Lit::Const(c) = la {
        return specialize(rw, kind, c, lb, true);
    }
    if let Lit::Const(c) = lb {
        return specialize(rw, kind, c, la, false);
    }
    // Rule 4: same-operand identities.
    if la == lb {
        let (Lit::Id(id),) = (la,) else { unreachable!() };
        return match kind {
            And | Or => Lit::Id(id),
            Xor => Lit::Const(false),
            Xnor | Orny | Oryn => Lit::Const(true),
            Andny | Andyn => Lit::Const(false),
            Nand | Nor => emit_not(rw, id),
            Not | Buf | Const0 | Const1 => unreachable!("handled above"),
        };
    }
    let (Lit::Id(ia), Lit::Id(ib)) = (la, lb) else { unreachable!() };
    Lit::Id(rw.out.add_gate(kind, ia, ib).expect("operands exist in rewritten netlist"))
}

/// Emits (or folds) a NOT of an existing new-netlist node.
fn emit_not(rw: &mut Rewriter, id: NodeId) -> Lit {
    // Collapse double negation: NOT(NOT(x)) = x.
    if let Node::Gate { kind: GateKind::Not, a, .. } = rw.out.node(id) {
        return Lit::Id(a);
    }
    Lit::Id(rw.out.add_gate(GateKind::Not, id, id).expect("operand exists"))
}

/// Specializes a binary gate with one constant operand. `c` is the constant;
/// `other` the remaining operand; `const_is_a` says which side it was on.
fn specialize(rw: &mut Rewriter, kind: GateKind, c: bool, other: Lit, const_is_a: bool) -> Lit {
    // Evaluate the gate's restriction to the free variable: f(c, x) (or
    // f(x, c)) is one of {0, 1, x, !x}.
    let f = |x: bool| if const_is_a { kind.eval(c, x) } else { kind.eval(x, c) };
    let f0 = f(false);
    let f1 = f(true);
    match (f0, f1) {
        (false, false) => Lit::Const(false),
        (true, true) => Lit::Const(true),
        (false, true) => other, // identity
        (true, false) => match other {
            Lit::Const(cc) => Lit::Const(!cc),
            Lit::Id(id) => emit_not(rw, id),
        },
    }
}

/// Folds `NOT` gates into their consumers (`AND(!a, b) → ANDNY(a, b)` and
/// friends). The freed `NOT` gates become dead and are removed by a
/// subsequent [`dce`] pass.
pub fn absorb_inverters(nl: &Netlist) -> (Netlist, PassStats) {
    let before = nl.num_gates();
    // Which old nodes are inverters (NOT gates or negation LUTs), and
    // what do they negate?
    let negand: Vec<Option<NodeId>> = nl
        .nodes()
        .iter()
        .map(|n| match n {
            Node::Gate { kind: GateKind::Not, a, .. } => Some(*a),
            Node::Lut { spec, ins } if spec.is_negation() => Some(ins[0]),
            _ => None,
        })
        .collect();
    let mut rw = Rewriter::new(nl);
    for node in nl.nodes() {
        match *node {
            Node::Input => rw.copy_input(),
            Node::Gate { mut kind, mut a, mut b } => {
                if kind.is_const() {
                    let id = rw.out.add_gate(kind, NodeId(0), NodeId(0)).expect("const gate");
                    rw.map.push(Lit::Id(id));
                    continue;
                }
                if let (Some(na), Some(k)) = (negand[a.index()], kind.absorb_not_a()) {
                    kind = k;
                    a = na;
                    if kind.is_unary() {
                        b = a;
                    }
                }
                if !kind.is_unary() && !kind.is_const() {
                    if let (Some(nb), Some(k)) = (negand[b.index()], kind.absorb_not_b()) {
                        kind = k;
                        b = nb;
                    }
                }
                let lit = match (rw.resolve(a), rw.resolve(b)) {
                    (Lit::Id(ia), Lit::Id(ib)) => {
                        Lit::Id(rw.out.add_gate(kind, ia, ib).expect("operands exist"))
                    }
                    _ => unreachable!("absorb pass never produces constants"),
                };
                rw.map.push(lit);
            }
            Node::Lut { spec, mut ins } => {
                // An inverter feeding input `i` folds into the table by
                // flipping the table along that axis.
                let mut table = spec.table;
                for i in 0..spec.width as usize {
                    if let Some(n) = negand[ins[i].index()] {
                        ins[i] = n;
                        let mut flipped = 0u16;
                        for j in 0..spec.entries() {
                            flipped |= ((table >> (j ^ (1 << i))) & 1) << j;
                        }
                        table = flipped;
                    }
                }
                let ops: Vec<NodeId> = ins[..spec.width as usize]
                    .iter()
                    .map(|&op| match rw.resolve(op) {
                        Lit::Id(id) => id,
                        Lit::Const(_) => unreachable!("absorb pass never produces constants"),
                    })
                    .collect();
                let folded = LutSpec::new(spec.width, spec.precision, table);
                rw.map.push(Lit::Id(rw.out.add_lut(folded, &ops).expect("operands exist")));
            }
        }
    }
    let out = rw.finish(nl);
    let stats = PassStats { gates_before: before, gates_after: out.num_gates() };
    (out, stats)
}

/// Structural common-subexpression elimination: two gates with the same
/// function and operands (up to commutativity) are merged.
pub fn cse(nl: &Netlist) -> (Netlist, PassStats) {
    let before = nl.num_gates();
    let mut rw = Rewriter::new(nl);
    let mut table: HashMap<(GateKind, NodeId, NodeId), NodeId> =
        HashMap::with_capacity(nl.num_gates());
    let mut lut_table: HashMap<(LutSpec, [NodeId; crate::MAX_LUT_INPUTS]), NodeId> = HashMap::new();
    for node in nl.nodes() {
        match *node {
            Node::Input => rw.copy_input(),
            Node::Lut { spec, ins } => {
                let mut ops = [NodeId(0); crate::MAX_LUT_INPUTS];
                for (slot, op) in ops.iter_mut().zip(ins) {
                    *slot = match rw.resolve(op) {
                        Lit::Id(id) => id,
                        Lit::Const(_) => unreachable!("cse operates on fold-free netlists"),
                    };
                }
                let lit = match lut_table.get(&(spec, ops)) {
                    Some(&existing) => Lit::Id(existing),
                    None => {
                        let id = rw.out.add_lut(spec, &ops).expect("operands exist");
                        lut_table.insert((spec, ops), id);
                        Lit::Id(id)
                    }
                };
                rw.map.push(lit);
            }
            Node::Gate { kind, a, b } => {
                if kind.is_const() {
                    let key = (kind, NodeId(0), NodeId(0));
                    let lit = match table.get(&key) {
                        Some(&existing) => Lit::Id(existing),
                        None => {
                            let id = rw.out.add_gate(kind, NodeId(0), NodeId(0)).expect("const");
                            table.insert(key, id);
                            Lit::Id(id)
                        }
                    };
                    rw.map.push(lit);
                    continue;
                }
                let (Lit::Id(mut ia), Lit::Id(mut ib)) = (rw.resolve(a), rw.resolve(b)) else {
                    unreachable!("cse operates on fold-free netlists")
                };
                let mut k = kind;
                if k.is_unary() {
                    ib = ia;
                } else if k.is_commutative() {
                    if ia > ib {
                        std::mem::swap(&mut ia, &mut ib);
                    }
                } else if ia > ib {
                    k = k.swapped();
                    std::mem::swap(&mut ia, &mut ib);
                }
                let lit = match table.get(&(k, ia, ib)) {
                    Some(&existing) => Lit::Id(existing),
                    None => {
                        let id = rw.out.add_gate(k, ia, ib).expect("operands exist");
                        table.insert((k, ia, ib), id);
                        Lit::Id(id)
                    }
                };
                rw.map.push(lit);
            }
        }
    }
    let out = rw.finish(nl);
    let stats = PassStats { gates_before: before, gates_after: out.num_gates() };
    (out, stats)
}

/// Dead-gate elimination: removes gates that no output transitively depends
/// on. Primary inputs are always preserved (the program interface is part of
/// the contract).
pub fn dce(nl: &Netlist) -> (Netlist, PassStats) {
    let before = nl.num_gates();
    let mut live = vec![false; nl.num_nodes()];
    for &out in nl.outputs() {
        live[out.index()] = true;
    }
    for i in (0..nl.num_nodes()).rev() {
        if !live[i] {
            continue;
        }
        match nl.nodes()[i] {
            Node::Gate { kind, a, b } => {
                if !kind.is_const() {
                    live[a.index()] = true;
                    if !kind.is_unary() {
                        live[b.index()] = true;
                    }
                }
            }
            Node::Lut { spec, ins } => {
                for op in &ins[..spec.width as usize] {
                    live[op.index()] = true;
                }
            }
            Node::Input => {}
        }
    }
    let mut rw = Rewriter::new(nl);
    for (i, node) in nl.nodes().iter().enumerate() {
        match *node {
            Node::Input => rw.copy_input(),
            Node::Lut { spec, ins } => {
                if live[i] {
                    let ops: Vec<NodeId> = ins[..spec.width as usize]
                        .iter()
                        .map(|&op| match rw.resolve(op) {
                            Lit::Id(id) => id,
                            Lit::Const(_) => unreachable!("dce never produces constants"),
                        })
                        .collect();
                    rw.map.push(Lit::Id(rw.out.add_lut(spec, &ops).expect("operands exist")));
                } else {
                    rw.map.push(Lit::Const(false));
                }
            }
            Node::Gate { kind, a, b } => {
                if live[i] {
                    if kind.is_const() {
                        let id = rw.out.add_gate(kind, NodeId(0), NodeId(0)).expect("const");
                        rw.map.push(Lit::Id(id));
                        continue;
                    }
                    let ia = rw.resolve(a);
                    let ib = rw.resolve(b);
                    let (Lit::Id(ia), Lit::Id(ib)) = (ia, ib) else {
                        unreachable!("dce never produces constants")
                    };
                    rw.map.push(Lit::Id(rw.out.add_gate(kind, ia, ib).expect("operands exist")));
                } else {
                    // Dead; map to an arbitrary placeholder that nothing will
                    // read. Use the gate's own (live-mapped or not) first
                    // operand id 0 sentinel via a constant literal.
                    rw.map.push(Lit::Const(false));
                }
            }
        }
    }
    let out = rw.finish(nl);
    let stats = PassStats { gates_before: before, gates_after: out.num_gates() };
    (out, stats)
}

/// Configuration of the full optimization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Run constant folding.
    pub fold: bool,
    /// Run inverter absorption.
    pub absorb: bool,
    /// Run common-subexpression elimination.
    pub cse: bool,
    /// Run dead-code elimination.
    pub dce: bool,
    /// Maximum number of pipeline iterations before giving up on reaching a
    /// fixpoint.
    pub max_iterations: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { fold: true, absorb: true, cse: true, dce: true, max_iterations: 8 }
    }
}

impl OptConfig {
    /// Everything disabled — the configuration the Cingulata/E3-style
    /// baselines run with (Section III-B: "Both Cingulata and E3 do not
    /// provide any gate-level or boolean optimizations").
    pub fn none() -> Self {
        OptConfig { fold: false, absorb: false, cse: false, dce: false, max_iterations: 0 }
    }
}

/// Report of a full [`optimize`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Gates before optimization.
    pub gates_before: usize,
    /// Gates after optimization.
    pub gates_after: usize,
    /// Pipeline iterations executed.
    pub iterations: usize,
}

/// Runs the configured passes to a fixpoint (or `max_iterations`).
///
/// # Errors
///
/// Returns an error if the input netlist fails validation.
pub fn optimize(nl: &Netlist, config: &OptConfig) -> Result<(Netlist, OptReport), NetlistError> {
    nl.validate()?;
    let mut report =
        OptReport { gates_before: nl.num_gates(), gates_after: nl.num_gates(), iterations: 0 };
    let mut current = nl.clone();
    for _ in 0..config.max_iterations {
        let gates_at_start = current.num_gates();
        if config.fold {
            current = constant_fold(&current).0;
        }
        if config.absorb {
            current = absorb_inverters(&current).0;
        }
        if config.cse {
            current = cse(&current).0;
        }
        if config.dce {
            current = dce(&current).0;
        }
        report.iterations += 1;
        if current.num_gates() == gates_at_start {
            break;
        }
    }
    report.gates_after = current.num_gates();
    Ok((current, report))
}

/// Configuration of the [`lut_cover`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutCoverConfig {
    /// Maximum cone width (LUT inputs), `2..=MAX_LUT_INPUTS`. Callers
    /// should clamp this to what the target parameter set can decode
    /// (`NoiseModel::max_lut_width` in `pytfhe-tfhe`).
    pub max_width: usize,
    /// Minimum number of bootstrapped gates a cone must absorb to be
    /// fused. The default of 2 fuses only cones that strictly reduce the
    /// bootstrap count (2 gates → 1 programmable bootstrap).
    pub min_absorbed: usize,
}

impl Default for LutCoverConfig {
    fn default() -> Self {
        LutCoverConfig { max_width: crate::MAX_LUT_INPUTS, min_absorbed: 2 }
    }
}

/// Report of a [`lut_cover`] run — the LUT-cone coverage numbers
/// surfaced by `netlist::stats` consumers and the shortint benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LutCoverReport {
    /// Multi-gate cones fused into LUT nodes.
    pub cones_fused: usize,
    /// Gates absorbed into some cone (removed from the netlist).
    pub gates_absorbed: usize,
    /// LUT nodes in the lowered netlist (fused cones plus 1:1-lowered
    /// leftover gates).
    pub luts_emitted: usize,
    /// Bootstrapped gates before lowering.
    pub bootstraps_before: usize,
    /// Bootstrapping programmable LUT evaluations after lowering.
    pub bootstraps_after: usize,
}

impl LutCoverReport {
    /// Bootstraps eliminated by the pass.
    pub fn bootstraps_saved(&self) -> usize {
        self.bootstraps_before.saturating_sub(self.bootstraps_after)
    }
}

impl fmt::Display for LutCoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cones fused, {} gates absorbed, {} LUTs emitted, {} -> {} bootstraps ({} saved)",
            self.cones_fused,
            self.gates_absorbed,
            self.luts_emitted,
            self.bootstraps_before,
            self.bootstraps_after,
            self.bootstraps_saved()
        )
    }
}

/// Covers the netlist with fused LUT cones and lowers it to the message
/// encoding: fanout-free cones of up to `max_width` inputs whose fusion
/// strictly reduces the bootstrap count become single [`Node::Lut`]
/// nodes, and every remaining gate is converted to the equivalent
/// width-≤2 LUT so all wires share one message encoding. Constants stay
/// as [`GateKind::Const0`]/[`GateKind::Const1`] gates (executed as
/// trivial message-encoded samples).
///
/// The lowered netlist computes the same function — `eval_plain` results
/// are bit-identical — but executes each fused cone with one
/// programmable bootstrap instead of one bootstrap per gate.
///
/// A netlist that already contains LUT nodes is returned unchanged with
/// an identity report (the pass is not re-entrant: the cone-growth cost
/// model reasons about two-input gates).
///
/// # Errors
///
/// Returns an error if the input netlist fails validation.
pub fn lut_cover(
    nl: &Netlist,
    config: &LutCoverConfig,
) -> Result<(Netlist, LutCoverReport), NetlistError> {
    nl.validate()?;
    assert!(
        (2..=crate::MAX_LUT_INPUTS).contains(&config.max_width),
        "max_width {} out of range",
        config.max_width
    );
    let identity = LutCoverReport {
        bootstraps_before: nl.num_bootstrapped_gates(),
        bootstraps_after: nl.num_bootstrapped_gates(),
        luts_emitted: nl.num_luts(),
        ..LutCoverReport::default()
    };
    if nl.num_luts() > 0 {
        return Ok((nl.clone(), identity));
    }

    // Reference counts (gate operand reads + output marks) and output
    // flags: a gate is absorbable only when its sole consumer is inside
    // the cone being grown.
    let n = nl.num_nodes();
    let mut fanout = vec![0usize; n];
    let mut is_output = vec![false; n];
    for node in nl.nodes() {
        if let Node::Gate { kind, a, b } = *node {
            if kind.is_const() {
                continue;
            }
            fanout[a.index()] += 1;
            if !kind.is_unary() {
                fanout[b.index()] += 1;
            }
        }
    }
    for &out in nl.outputs() {
        fanout[out.index()] += 1;
        is_output[out.index()] = true;
    }

    // Is this node a gate a cone may swallow (anything but inputs and
    // constants)?
    let expandable = |id: NodeId| match nl.node(id) {
        Node::Gate { kind, .. } => !kind.is_const(),
        _ => false,
    };
    let costs_bootstrap = |id: NodeId| match nl.node(id) {
        Node::Gate { kind, .. } => !kind.is_const() && kind != GateKind::Buf,
        _ => false,
    };

    // Grow a cone per root, most-recent roots first so deep cones get
    // first claim on shared structure.
    let mut absorbed = vec![false; n];
    struct Cone {
        leaves: Vec<NodeId>,
        members: Vec<NodeId>, // ascending id order, root included
    }
    let mut cones: HashMap<usize, Cone> = HashMap::new();
    for i in (0..n).rev() {
        let root = NodeId(i as u32);
        if absorbed[i] || !costs_bootstrap(root) {
            continue;
        }
        let Node::Gate { kind, a, b } = nl.node(root) else { unreachable!() };
        let mut leaves: Vec<NodeId> = vec![a];
        if !kind.is_unary() && b != a {
            leaves.push(b);
        }
        let mut members = vec![root];
        loop {
            // Find a leaf gate whose only consumer is this cone and whose
            // expansion keeps the leaf set within `max_width`.
            let candidate = leaves.iter().position(|&u| {
                if !expandable(u) || absorbed[u.index()] || is_output[u.index()] {
                    return false;
                }
                if fanout[u.index()] != 1 {
                    return false;
                }
                let Node::Gate { kind, a, b } = nl.node(u) else { unreachable!() };
                let mut grown = leaves.len() - 1;
                if !leaves.contains(&a) {
                    grown += 1;
                }
                if !kind.is_unary() && b != a && !leaves.contains(&b) {
                    grown += 1;
                }
                grown <= config.max_width
            });
            let Some(pos) = candidate else { break };
            let u = leaves.swap_remove(pos);
            let Node::Gate { kind, a, b } = nl.node(u) else { unreachable!() };
            if !leaves.contains(&a) {
                leaves.push(a);
            }
            if !kind.is_unary() && !leaves.contains(&b) {
                leaves.push(b);
            }
            members.push(u);
        }
        let absorbed_bootstraps = members.iter().filter(|&&m| costs_bootstrap(m)).count();
        if members.len() < 2 || absorbed_bootstraps < config.min_absorbed {
            continue;
        }
        for &m in &members {
            if m != root {
                absorbed[m.index()] = true;
            }
        }
        members.sort_unstable();
        cones.insert(i, Cone { leaves, members });
    }

    // One netlist-global wire precision: the widest fused cone (and at
    // least 2, the width of 1:1-lowered binary gates).
    let q = cones.values().map(|c| c.leaves.len()).max().unwrap_or(0).max(2) as u8;

    // Truth table of a cone: evaluate its members (ascending id = topo
    // order) over all leaf patterns.
    let cone_table = |cone: &Cone| -> u16 {
        let mut table = 0u16;
        let mut values: HashMap<NodeId, bool> = HashMap::new();
        for pattern in 0..1usize << cone.leaves.len() {
            values.clear();
            for (bit, &leaf) in cone.leaves.iter().enumerate() {
                values.insert(leaf, (pattern >> bit) & 1 == 1);
            }
            for &m in &cone.members {
                let Node::Gate { kind, a, b } = nl.node(m) else { unreachable!() };
                let va = values[&a];
                let vb = if kind.is_unary() || kind.is_const() { va } else { values[&b] };
                values.insert(m, kind.eval(va, vb));
            }
            let root = *cone.members.last().expect("cone has a root");
            table |= u16::from(values[&root]) << pattern;
        }
        table
    };

    // Rebuild: fused roots become wide LUTs, leftover gates lower 1:1.
    let mut rw = Rewriter::new(nl);
    let mut report = LutCoverReport {
        cones_fused: cones.len(),
        bootstraps_before: nl.num_bootstrapped_gates(),
        ..LutCoverReport::default()
    };
    for (i, node) in nl.nodes().iter().enumerate() {
        match *node {
            Node::Input => rw.copy_input(),
            Node::Lut { .. } => unreachable!("handled by the early return"),
            Node::Gate { kind, a, b } => {
                if absorbed[i] {
                    // Swallowed by some cone; nothing reads this slot.
                    rw.map.push(Lit::Const(false));
                    report.gates_absorbed += 1;
                    continue;
                }
                if let Some(cone) = cones.get(&i) {
                    let table = cone_table(cone);
                    let ops: Vec<NodeId> = cone
                        .leaves
                        .iter()
                        .map(|&l| match rw.resolve(l) {
                            Lit::Id(id) => id,
                            Lit::Const(_) => unreachable!("leaves are never absorbed"),
                        })
                        .collect();
                    let spec = LutSpec::new(cone.leaves.len() as u8, q, table);
                    rw.map.push(Lit::Id(rw.out.add_lut(spec, &ops).expect("leaves exist")));
                    continue;
                }
                if kind.is_const() {
                    let id = rw.out.add_gate(kind, NodeId(0), NodeId(0)).expect("const gate");
                    rw.map.push(Lit::Id(id));
                    continue;
                }
                let (Lit::Id(ia), Lit::Id(ib)) = (rw.resolve(a), rw.resolve(b)) else {
                    unreachable!("operands of live gates are never absorbed")
                };
                let lit = if kind.is_unary() {
                    let table = if kind == GateKind::Not { 0b01 } else { 0b10 };
                    Lit::Id(rw.out.add_lut(LutSpec::new(1, q, table), &[ia]).expect("operand"))
                } else {
                    let mut table = 0u16;
                    for j in 0..4usize {
                        table |= u16::from(kind.eval(j & 1 == 1, j >> 1 == 1)) << j;
                    }
                    Lit::Id(
                        rw.out
                            .add_lut(LutSpec::new(2, q, table), &[ia, ib])
                            .expect("operands exist"),
                    )
                };
                rw.map.push(lit);
            }
        }
    }
    let out = rw.finish(nl);
    report.luts_emitted = out.num_luts();
    report.bootstraps_after = out.num_bootstrapped_gates();
    debug_assert!(report.bootstraps_after <= report.bootstraps_before);
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks that `opt` preserves semantics of `nl` for every
    /// input combination (requires few inputs).
    fn assert_equivalent(nl: &Netlist, opt: &Netlist) {
        assert_eq!(nl.num_inputs(), opt.num_inputs());
        assert_eq!(nl.outputs().len(), opt.outputs().len());
        let n = nl.num_inputs();
        assert!(n <= 16, "too many inputs for exhaustive check");
        for bits in 0u32..(1 << n) {
            let input: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(nl.eval_plain(&input), opt.eval_plain(&input), "inputs {input:?}");
        }
    }

    #[test]
    fn fold_removes_constants() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, a, one).unwrap(); // = a
        let h = nl.add_gate(GateKind::Xor, g, a).unwrap(); // = 0
        let i = nl.add_gate(GateKind::Or, h, a).unwrap(); // = a
        nl.mark_output(i).unwrap();
        let (opt, stats) = constant_fold(&nl);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_gates(), 0, "everything folds to the input");
        assert_eq!(stats.removed(), 4);
    }

    #[test]
    fn fold_materializes_constant_outputs() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, a).unwrap(); // = 0
        nl.mark_output(x).unwrap();
        let (opt, _) = constant_fold(&nl);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_gates(), 1); // one CONST0
    }

    #[test]
    fn fold_collapses_double_negation() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let n1 = nl.add_gate(GateKind::Not, a, a).unwrap();
        let n2 = nl.add_gate(GateKind::Not, n1, n1).unwrap();
        nl.mark_output(n2).unwrap();
        let (opt, _) = constant_fold(&nl);
        assert_equivalent(&nl, &opt);
        // n2 folds to `a`; n1 stays but is dead until DCE.
        let (opt, _) = dce(&opt);
        assert_eq!(opt.num_gates(), 0);
    }

    #[test]
    fn absorb_then_dce_removes_inverters() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Not, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, na, b).unwrap(); // = ANDNY(a, b)
        nl.mark_output(g).unwrap();
        let (step, _) = absorb_inverters(&nl);
        assert_equivalent(&nl, &step);
        let (opt, _) = dce(&step);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_gates(), 1);
        assert!(matches!(opt.node(opt.outputs()[0]), Node::Gate { kind: GateKind::Andny, .. }));
    }

    #[test]
    fn cse_merges_duplicates_including_commuted() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g1 = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let g2 = nl.add_gate(GateKind::Xor, b, a).unwrap();
        let g3 = nl.add_gate(GateKind::Andyn, a, b).unwrap();
        let g4 = nl.add_gate(GateKind::Andny, b, a).unwrap(); // same fn as g3
        let h = nl.add_gate(GateKind::Or, g1, g2).unwrap();
        let i = nl.add_gate(GateKind::Or, g3, g4).unwrap();
        let j = nl.add_gate(GateKind::And, h, i).unwrap();
        nl.mark_output(j).unwrap();
        let (opt, _) = cse(&nl);
        assert_equivalent(&nl, &opt);
        let (opt, _) = dce(&opt);
        // g2 and g4 merged away; OR(x, x) shapes remain until folding.
        assert_eq!(opt.num_gates(), 5);
    }

    #[test]
    fn dce_removes_unreachable() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let live = nl.add_gate(GateKind::And, a, b).unwrap();
        let _dead = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let _deader = nl.add_gate(GateKind::Or, _dead, b).unwrap();
        nl.mark_output(live).unwrap();
        let (opt, stats) = dce(&nl);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(stats.removed(), 2);
    }

    #[test]
    fn pipeline_reaches_fixpoint() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let na = nl.add_gate(GateKind::Not, a, a).unwrap();
        let g1 = nl.add_gate(GateKind::And, na, one).unwrap(); // = !a
        let g2 = nl.add_gate(GateKind::Or, g1, b).unwrap(); // = ORNY(a, b)
        let g3 = nl.add_gate(GateKind::Or, g1, b).unwrap(); // duplicate
        let g4 = nl.add_gate(GateKind::And, g2, g3).unwrap(); // = g2
        nl.mark_output(g4).unwrap();
        let (opt, report) = optimize(&nl, &OptConfig::default()).unwrap();
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_gates(), 1);
        assert!(report.iterations >= 1);
        assert_eq!(report.gates_before, 6);
        assert_eq!(report.gates_after, 1);
    }

    #[test]
    fn optimize_none_is_identity() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let g = nl.add_gate(GateKind::Buf, a, a).unwrap();
        nl.mark_output(g).unwrap();
        let (opt, report) = optimize(&nl, &OptConfig::none()).unwrap();
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn optimize_rejects_invalid() {
        let nl = Netlist::new();
        assert!(optimize(&nl, &OptConfig::default()).is_err());
    }

    /// A 2-bit ripple-carry adder: classic multi-gate cones (sum and
    /// carry trees) with reconvergent fanout at the carry.
    fn two_bit_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a0 = nl.add_input();
        let a1 = nl.add_input();
        let b0 = nl.add_input();
        let b1 = nl.add_input();
        let s0 = nl.add_gate(GateKind::Xor, a0, b0).unwrap();
        let c0 = nl.add_gate(GateKind::And, a0, b0).unwrap();
        let x1 = nl.add_gate(GateKind::Xor, a1, b1).unwrap();
        let s1 = nl.add_gate(GateKind::Xor, x1, c0).unwrap();
        let t1 = nl.add_gate(GateKind::And, x1, c0).unwrap();
        let t2 = nl.add_gate(GateKind::And, a1, b1).unwrap();
        let c1 = nl.add_gate(GateKind::Or, t1, t2).unwrap();
        nl.mark_output(s0).unwrap();
        nl.mark_output(s1).unwrap();
        nl.mark_output(c1).unwrap();
        nl
    }

    #[test]
    fn lut_cover_fuses_cones_and_preserves_semantics() {
        let nl = two_bit_adder();
        let (lowered, report) = lut_cover(&nl, &LutCoverConfig::default()).unwrap();
        assert_equivalent(&nl, &lowered);
        lowered.validate().unwrap();
        // Lowered netlists hold only Input/Lut/Const nodes.
        for node in lowered.nodes() {
            match node {
                Node::Input | Node::Lut { .. } => {}
                Node::Gate { kind, .. } => assert!(kind.is_const(), "leftover gate {kind}"),
            }
        }
        assert!(report.cones_fused >= 1, "{report}");
        assert!(report.gates_absorbed >= 1, "{report}");
        assert!(
            report.bootstraps_after < report.bootstraps_before,
            "fusion must strictly reduce bootstraps: {report}"
        );
        assert_eq!(report.luts_emitted, lowered.num_luts());
        // All LUTs share the netlist-global precision.
        let q = lowered.lut_precision().unwrap();
        for node in lowered.nodes() {
            if let Node::Lut { spec, .. } = node {
                assert_eq!(spec.precision, q);
                assert!(spec.width <= q);
            }
        }
    }

    #[test]
    fn lut_cover_respects_width_limit() {
        let nl = two_bit_adder();
        for max_width in 2..=4 {
            let cfg = LutCoverConfig { max_width, ..LutCoverConfig::default() };
            let (lowered, _) = lut_cover(&nl, &cfg).unwrap();
            assert_equivalent(&nl, &lowered);
            for node in lowered.nodes() {
                if let Node::Lut { spec, .. } = node {
                    assert!((spec.width as usize) <= max_width);
                }
            }
        }
    }

    #[test]
    fn lut_cover_keeps_shared_gates_unfused() {
        // c0 has fanout 2 (both consumers), so it must stay its own LUT.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let c = nl.add_input();
        let shared = nl.add_gate(GateKind::And, a, b).unwrap();
        let u = nl.add_gate(GateKind::Xor, shared, c).unwrap();
        let v = nl.add_gate(GateKind::Or, shared, c).unwrap();
        nl.mark_output(u).unwrap();
        nl.mark_output(v).unwrap();
        let (lowered, report) = lut_cover(&nl, &LutCoverConfig::default()).unwrap();
        assert_equivalent(&nl, &lowered);
        // No single-consumer interior gates exist, so nothing fuses and
        // the bootstrap count carries over 1:1.
        assert_eq!(report.cones_fused, 0);
        assert_eq!(report.bootstraps_after, report.bootstraps_before);
    }

    #[test]
    fn lut_cover_absorbs_inverter_chains() {
        // NOT(AND(NOT a, b)) collapses into one width-2 LUT.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate(GateKind::Not, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, na, b).unwrap();
        let out = nl.add_gate(GateKind::Not, g, g).unwrap();
        nl.mark_output(out).unwrap();
        let (lowered, report) = lut_cover(&nl, &LutCoverConfig::default()).unwrap();
        assert_equivalent(&nl, &lowered);
        assert_eq!(report.cones_fused, 1);
        assert_eq!(lowered.num_bootstrapped_gates(), 1);
    }

    #[test]
    fn lowered_netlists_survive_the_optimizer() {
        let nl = two_bit_adder();
        let (lowered, _) = lut_cover(&nl, &LutCoverConfig::default()).unwrap();
        let (opt, _) = optimize(&lowered, &OptConfig::default()).unwrap();
        assert_equivalent(&nl, &opt);
        // The optimizer must not resurrect two-input boolean gates.
        for node in opt.nodes() {
            if let Node::Gate { kind, .. } = node {
                assert!(kind.is_const(), "optimizer reintroduced gate {kind}");
            }
        }
    }

    #[test]
    fn fold_specializes_constant_lut_inputs() {
        use crate::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        // maj(a, b, 1) = a | b.
        let maj: u16 = (0..8).fold(0, |t, j: u16| t | (u16::from(j.count_ones() >= 2) << j));
        let g = nl.add_lut(LutSpec::new(3, 3, maj), &[a, b, one]).unwrap();
        nl.mark_output(g).unwrap();
        let (opt, _) = constant_fold(&nl);
        assert_equivalent(&nl, &opt);
        let Node::Lut { spec, .. } = opt.node(opt.outputs()[0]) else {
            panic!("expected a narrowed LUT")
        };
        assert_eq!(spec.width, 2);
        assert_eq!(spec.table, 0b1110); // OR truth table
    }

    #[test]
    fn cse_merges_identical_luts() {
        use crate::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let spec = LutSpec::new(2, 2, 0b0110);
        let g1 = nl.add_lut(spec, &[a, b]).unwrap();
        let g2 = nl.add_lut(spec, &[a, b]).unwrap();
        let h = nl.add_lut(LutSpec::new(2, 2, 0b1000), &[g1, g2]).unwrap();
        nl.mark_output(h).unwrap();
        let (opt, _) = cse(&nl);
        let (opt, _) = dce(&opt);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_luts(), 2);
    }

    #[test]
    fn absorb_folds_inverters_into_lut_tables() {
        use crate::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_lut(LutSpec::new(1, 2, 0b01), &[a]).unwrap();
        let g = nl.add_lut(LutSpec::new(2, 2, 0b1000), &[na, b]).unwrap(); // AND(na, b)
        nl.mark_output(g).unwrap();
        let (step, _) = absorb_inverters(&nl);
        assert_equivalent(&nl, &step);
        let (opt, _) = dce(&step);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.num_luts(), 1);
        let Node::Lut { spec, .. } = opt.node(opt.outputs()[0]) else { panic!("lut expected") };
        assert_eq!(spec.table, 0b0100); // ANDNY truth table: !a & b
    }

    #[test]
    fn ports_survive_optimization() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        nl.declare_input_port("x", vec![a, b]).unwrap();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, a, one).unwrap();
        let h = nl.add_gate(GateKind::Xor, g, b).unwrap();
        nl.declare_output_port("y", vec![h]).unwrap();
        let (opt, _) = optimize(&nl, &OptConfig::default()).unwrap();
        assert_eq!(opt.input_ports().len(), 1);
        assert_eq!(opt.input_ports()[0].bits.len(), 2);
        assert_eq!(opt.output_ports().len(), 1);
        assert_eq!(opt.outputs().len(), 1);
        assert_equivalent(&nl, &opt);
    }
}
