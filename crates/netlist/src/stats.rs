//! Netlist statistics: gate histograms and shape summaries.
//!
//! These are the numbers behind Figure 14 of the paper (gate distribution of
//! the MNIST network across frameworks) and the x-axis ordering of Figure 10
//! (benchmarks sorted by gate count).

use crate::gate::ALL_GATE_KINDS;
use crate::topo::Levels;
use crate::{GateKind, Netlist, Node};
use std::fmt;

/// Gate counts per [`GateKind`], plus fused-LUT counts per width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateHistogram {
    counts: [u64; 16],
    luts_by_width: [u64; crate::MAX_LUT_INPUTS],
}

impl GateHistogram {
    /// Counts the gates of `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut h = GateHistogram::default();
        for node in nl.nodes() {
            match node {
                Node::Gate { kind, .. } => h.counts[kind.opcode() as usize] += 1,
                Node::Lut { spec, .. } => h.luts_by_width[spec.width as usize - 1] += 1,
                Node::Input => {}
            }
        }
        h
    }

    /// The count of one gate kind.
    #[inline]
    pub fn count(&self, kind: GateKind) -> u64 {
        self.counts[kind.opcode() as usize]
    }

    /// The count of fused LUTs of one width (`1..=MAX_LUT_INPUTS`).
    #[inline]
    pub fn lut_count(&self, width: usize) -> u64 {
        self.luts_by_width[width - 1]
    }

    /// Total fused-LUT count across all widths.
    pub fn total_luts(&self) -> u64 {
        self.luts_by_width.iter().sum()
    }

    /// Total gate count across all kinds (fused LUTs included).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.total_luts()
    }

    /// Total count of gates that require a bootstrapping at run time
    /// (everything except constants and buffers). Fused LUTs are counted
    /// conservatively: every LUT of width ≥ 2 bootstraps, and width-1
    /// LUTs are affine (buffer/inverter/constant) and free.
    pub fn total_bootstrapped(&self) -> u64 {
        ALL_GATE_KINDS
            .iter()
            .filter(|k| !k.is_const() && **k != GateKind::Buf)
            .map(|k| self.count(*k))
            .sum::<u64>()
            + self.luts_by_width[1..].iter().sum::<u64>()
    }

    /// Iterates over `(kind, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (GateKind, u64)> + '_ {
        ALL_GATE_KINDS.iter().map(|&k| (k, self.count(k))).filter(|(_, c)| *c > 0)
    }
}

impl fmt::Display for GateHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kind, count) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{kind}: {count}")?;
            first = false;
        }
        for (w, &count) in self.luts_by_width.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "lut{}: {count}", w + 1)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A one-struct summary of a netlist's size and shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Total gates (including constants and buffers).
    pub gates: usize,
    /// Gates costing a bootstrap at run time.
    pub bootstrapped_gates: usize,
    /// Fused multi-input LUT nodes (each evaluated by one programmable
    /// bootstrap regardless of how many gates it absorbed).
    pub luts: usize,
    /// Critical-path depth in waves.
    pub depth: u32,
    /// Widest wave.
    pub max_width: u64,
    /// Average wave width.
    pub avg_width: f64,
    /// Per-kind histogram.
    pub histogram: GateHistogram,
}

impl NetlistStats {
    /// Computes all statistics of `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let levels = Levels::compute(nl);
        NetlistStats {
            inputs: nl.num_inputs(),
            outputs: nl.outputs().len(),
            gates: nl.num_gates(),
            bootstrapped_gates: nl.num_bootstrapped_gates(),
            luts: nl.num_luts(),
            depth: levels.depth(),
            max_width: levels.max_width(),
            avg_width: levels.avg_width(),
            histogram: GateHistogram::of(nl),
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({} bootstrapped), {} inputs, {} outputs, depth {}, width max {} avg {:.1}",
            self.gates,
            self.bootstrapped_gates,
            self.inputs,
            self.outputs,
            self.depth,
            self.max_width,
            self.avg_width
        )?;
        if self.luts > 0 {
            write!(f, ", {} fused LUTs", self.luts)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::Xor, a, x).unwrap();
        let z = nl.add_gate(GateKind::And, x, y).unwrap();
        let w = nl.add_gate(GateKind::Buf, z, z).unwrap();
        nl.mark_output(w).unwrap();
        let h = GateHistogram::of(&nl);
        assert_eq!(h.count(GateKind::Xor), 2);
        assert_eq!(h.count(GateKind::And), 1);
        assert_eq!(h.count(GateKind::Buf), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.total_bootstrapped(), 3);
        assert_eq!(h.iter().count(), 3);
    }

    #[test]
    fn stats_summary() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Nand, a, b).unwrap();
        let y = nl.add_gate(GateKind::Nand, x, b).unwrap();
        nl.mark_output(y).unwrap();
        let s = NetlistStats::of(&nl);
        assert_eq!(s.gates, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_width, 1);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        let text = s.to_string();
        assert!(text.contains("2 gates"));
    }

    #[test]
    fn empty_histogram_display() {
        let h = GateHistogram::default();
        assert_eq!(h.to_string(), "(empty)");
    }
}
