//! Topological analysis of netlists.
//!
//! Backends schedule TFHE programs with the BFS wavefront of the paper's
//! Algorithm 1: a gate becomes *ready* once both operands are computed, and
//! all ready gates of a wave can run in parallel. Because netlists are
//! topologically ordered by construction, the wave (*level*) of every node
//! can be computed in one linear scan.

use crate::{Netlist, Node};

/// Per-node level assignment plus aggregate shape information.
///
/// The level of an input is `0`; the level of a gate is one plus the maximum
/// level of its operands (constants sit at level 0 as they have no real
/// dependencies). Level `k` therefore contains exactly the gates computable
/// in wave `k` of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// `level[i]` is the wave index of node `i`.
    pub level: Vec<u32>,
    /// `sizes[k]` is the number of *gates* in wave `k` (inputs excluded).
    pub sizes: Vec<u64>,
}

impl Levels {
    /// Computes the level assignment of `nl` in one linear pass.
    pub fn compute(nl: &Netlist) -> Self {
        let mut level = vec![0u32; nl.num_nodes()];
        let mut max_level = 0u32;
        for (i, node) in nl.nodes().iter().enumerate() {
            let l = match *node {
                Node::Input => continue,
                Node::Gate { kind, a, b } => {
                    if kind.is_const() {
                        0
                    } else if kind.is_unary() {
                        level[a.index()] + 1
                    } else {
                        level[a.index()].max(level[b.index()]) + 1
                    }
                }
                Node::Lut { spec, ins } => {
                    ins[..spec.width as usize].iter().map(|op| level[op.index()]).max().unwrap_or(0)
                        + 1
                }
            };
            level[i] = l;
            max_level = max_level.max(l);
        }
        let mut sizes = vec![0u64; max_level as usize + 1];
        for (i, node) in nl.nodes().iter().enumerate() {
            if !matches!(node, Node::Input) {
                sizes[level[i] as usize] += 1;
            }
        }
        Levels { level, sizes }
    }

    /// The critical-path depth of the circuit: the highest wave index, i.e.
    /// the number of dependent gate evaluations on the longest path.
    pub fn depth(&self) -> u32 {
        (self.sizes.len() as u32).saturating_sub(1)
    }

    /// The widest wave: the maximum number of gates that can execute in
    /// parallel. This bounds the useful worker count of any backend.
    pub fn max_width(&self) -> u64 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Average wave width (gates / waves); the paper's small "mostly serial"
    /// benchmarks such as NR-Solver have an average width close to 1.
    pub fn avg_width(&self) -> f64 {
        let gates: u64 = self.sizes.iter().sum();
        let waves = self.sizes.iter().filter(|&&s| s > 0).count();
        if waves == 0 {
            0.0
        } else {
            gates as f64 / waves as f64
        }
    }
}

/// A full wave-by-wave schedule: for every wave, the node ids of the gates
/// it contains, in id order. This is the data structure the multithreaded
/// executor and both simulators consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// `waves[k]` lists the gate node ids of wave `k` (wave 0 holds
    /// constants only; real gates start at wave 1 unless the circuit is
    /// trivial).
    pub waves: Vec<Vec<u32>>,
}

impl LevelSchedule {
    /// Builds the schedule from a level assignment.
    pub fn from_levels(nl: &Netlist, levels: &Levels) -> Self {
        let mut waves: Vec<Vec<u32>> = vec![Vec::new(); levels.sizes.len()];
        for (i, node) in nl.nodes().iter().enumerate() {
            if !matches!(node, Node::Input) {
                waves[levels.level[i] as usize].push(i as u32);
            }
        }
        LevelSchedule { waves }
    }

    /// Convenience: compute levels and schedule in one call.
    pub fn compute(nl: &Netlist) -> Self {
        Self::from_levels(nl, &Levels::compute(nl))
    }

    /// Total number of scheduled gates.
    pub fn num_gates(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input();
        let other = nl.add_input();
        for _ in 0..n {
            prev = nl.add_gate(GateKind::Nand, prev, other).unwrap();
        }
        nl.mark_output(prev).unwrap();
        nl
    }

    #[test]
    fn chain_is_serial() {
        let nl = chain(10);
        let levels = Levels::compute(&nl);
        assert_eq!(levels.sizes.len(), 11); // waves 0..=10, wave 0 empty
        assert_eq!(levels.max_width(), 1);
        let sched = LevelSchedule::from_levels(&nl, &levels);
        assert_eq!(sched.num_gates(), 10);
        assert!(sched.waves[0].is_empty());
    }

    #[test]
    fn wide_layer_is_parallel() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut gates = Vec::new();
        for _ in 0..8 {
            gates.push(nl.add_gate(GateKind::Xor, a, b).unwrap());
        }
        let mut acc = gates[0];
        for &g in &gates[1..] {
            acc = nl.add_gate(GateKind::And, acc, g).unwrap();
        }
        nl.mark_output(acc).unwrap();
        let levels = Levels::compute(&nl);
        assert_eq!(levels.max_width(), 8);
        assert!(levels.avg_width() > 1.0);
    }

    #[test]
    fn constants_at_level_zero() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let c = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let g = nl.add_gate(GateKind::And, a, c).unwrap();
        nl.mark_output(g).unwrap();
        let levels = Levels::compute(&nl);
        assert_eq!(levels.level[c.index()], 0);
        assert_eq!(levels.level[g.index()], 1);
    }

    #[test]
    fn schedule_covers_every_gate_once() {
        let nl = chain(5);
        let sched = LevelSchedule::compute(&nl);
        let mut seen = std::collections::HashSet::new();
        for wave in &sched.waves {
            for &g in wave {
                assert!(seen.insert(g));
            }
        }
        assert_eq!(seen.len(), nl.num_gates());
    }
}
