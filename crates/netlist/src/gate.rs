use crate::NetlistError;
use std::fmt;

/// The kind of a two-input boolean gate in a TFHE program.
///
/// The first eleven variants are exactly the eleven bootstrapped gates the
/// paper's binary format supports (Section IV-C: "PyTFHE supports eleven
/// different gates"); their discriminants are the 4-bit opcodes of the
/// instruction encoding in Figure 5. `Xor` is `0b0110` to match the worked
/// half-adder example of Figure 6. Opcodes `0x3` and `0xF` are reserved by
/// the binary format for *output* and *input* instructions respectively and
/// are therefore skipped.
///
/// `Const0`, `Const1` and `Buf` are pseudo-gates: constants appear when a
/// compiler bakes plaintext model weights into the circuit, and `Buf`
/// (a one-input passthrough) is emitted by total-ordering compilers such as
/// the Google Transpiler baseline (Section V-C). All three are eliminated by
/// the optimization pipeline before execution, but remain representable so
/// that unoptimized baseline netlists can be measured and executed too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum GateKind {
    /// `!(a & b)` — the universal bootstrapped gate of the TFHE library.
    Nand = 0x0,
    /// `a & b`.
    And = 0x1,
    /// `a | b`.
    Or = 0x2,
    /// `!(a | b)`.
    Nor = 0x4,
    /// `!(a ^ b)`.
    Xnor = 0x5,
    /// `a ^ b`.
    Xor = 0x6,
    /// `!a & b` ("AND-not-yes").
    Andny = 0x7,
    /// `a & !b` ("AND-yes-not").
    Andyn = 0x8,
    /// `!a | b`.
    Orny = 0x9,
    /// `a | !b`.
    Oryn = 0xA,
    /// `!a` — unary; the second input is ignored (conventionally wired to
    /// the first).
    Not = 0xB,
    /// Constant `false`; both inputs are ignored.
    Const0 = 0xC,
    /// Constant `true`; both inputs are ignored.
    Const1 = 0xD,
    /// Unary passthrough (`a`); emitted by naive frontends, optimized away.
    Buf = 0xE,
}

/// All gate kinds, in opcode order.
pub const ALL_GATE_KINDS: [GateKind; 14] = [
    GateKind::Nand,
    GateKind::And,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xnor,
    GateKind::Xor,
    GateKind::Andny,
    GateKind::Andyn,
    GateKind::Orny,
    GateKind::Oryn,
    GateKind::Not,
    GateKind::Const0,
    GateKind::Const1,
    GateKind::Buf,
];

impl GateKind {
    /// The 4-bit opcode used in the PyTFHE binary format (Figure 5).
    #[inline]
    pub fn opcode(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit opcode.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownOpcode`] for the reserved opcodes
    /// (`0x3`, `0xF`) and any value above `0xE`.
    pub fn from_opcode(opcode: u8) -> Result<Self, NetlistError> {
        Ok(match opcode {
            0x0 => GateKind::Nand,
            0x1 => GateKind::And,
            0x2 => GateKind::Or,
            0x4 => GateKind::Nor,
            0x5 => GateKind::Xnor,
            0x6 => GateKind::Xor,
            0x7 => GateKind::Andny,
            0x8 => GateKind::Andyn,
            0x9 => GateKind::Orny,
            0xA => GateKind::Oryn,
            0xB => GateKind::Not,
            0xC => GateKind::Const0,
            0xD => GateKind::Const1,
            0xE => GateKind::Buf,
            other => return Err(NetlistError::UnknownOpcode { opcode: other }),
        })
    }

    /// Evaluates the gate on plaintext bits.
    ///
    /// For unary gates (`Not`, `Buf`) the second operand is ignored; for
    /// constants both are ignored.
    #[inline]
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Nand => !(a & b),
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Nor => !(a | b),
            GateKind::Xnor => !(a ^ b),
            GateKind::Xor => a ^ b,
            GateKind::Andny => !a & b,
            GateKind::Andyn => a & !b,
            GateKind::Orny => !a | b,
            GateKind::Oryn => a | !b,
            GateKind::Not => !a,
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => a,
        }
    }

    /// Whether the gate reads only its first input.
    #[inline]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Whether the gate reads no inputs at all.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// Whether swapping the two operands leaves the function unchanged.
    #[inline]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            GateKind::Nand
                | GateKind::And
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xnor
                | GateKind::Xor
        )
    }

    /// Returns the gate kind computing the same function with the operands
    /// swapped (`f(b, a)`), used to normalize operand order during CSE.
    #[inline]
    pub fn swapped(self) -> Self {
        match self {
            GateKind::Andny => GateKind::Andyn,
            GateKind::Andyn => GateKind::Andny,
            GateKind::Orny => GateKind::Oryn,
            GateKind::Oryn => GateKind::Orny,
            other => other,
        }
    }

    /// Returns the gate kind computing the complement (`!f(a, b)`), if one
    /// exists among the supported gates.
    pub fn negated(self) -> Option<Self> {
        Some(match self {
            GateKind::Nand => GateKind::And,
            GateKind::And => GateKind::Nand,
            GateKind::Or => GateKind::Nor,
            GateKind::Nor => GateKind::Or,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Andny => GateKind::Oryn,
            GateKind::Andyn => GateKind::Orny,
            GateKind::Orny => GateKind::Andyn,
            GateKind::Oryn => GateKind::Andny,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
            GateKind::Not => GateKind::Buf,
            GateKind::Buf => GateKind::Not,
        })
    }

    /// Returns the gate computing `f(!a, b)`, used by the inverter-absorption
    /// pass to fold a `NOT` on the first operand into the consumer.
    pub fn absorb_not_a(self) -> Option<Self> {
        Some(match self {
            GateKind::And => GateKind::Andny,
            GateKind::Andny => GateKind::And,
            GateKind::Andyn => GateKind::Nor,
            GateKind::Nand => GateKind::Oryn,
            GateKind::Or => GateKind::Orny,
            GateKind::Orny => GateKind::Or,
            GateKind::Oryn => GateKind::Nand,
            GateKind::Nor => GateKind::Andyn,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Not => GateKind::Buf,
            GateKind::Buf => GateKind::Not,
            GateKind::Const0 | GateKind::Const1 => return None,
        })
    }

    /// Returns the gate computing `f(a, !b)`, the mirror of
    /// [`GateKind::absorb_not_a`]. Unary gates and constants ignore their
    /// second operand, so there is nothing to absorb and `None` is returned.
    pub fn absorb_not_b(self) -> Option<Self> {
        if self.is_unary() || self.is_const() {
            return None;
        }
        let swapped = self.swapped();
        swapped.absorb_not_a().map(GateKind::swapped)
    }

    /// Short lowercase mnemonic (e.g. `"nand"`), used in reports and
    /// disassembly listings.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Nand => "nand",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
            GateKind::Xor => "xor",
            GateKind::Andny => "andny",
            GateKind::Andyn => "andyn",
            GateKind::Orny => "orny",
            GateKind::Oryn => "oryn",
            GateKind::Not => "not",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Maximum number of inputs of a fused LUT node: a width-4 packing
/// `Σ 2^i·xᵢ` needs 16 distinguishable message windows, the most the
/// shortint parameter sets decode within the default noise budget.
pub const MAX_LUT_INPUTS: usize = 4;

/// The function of a fused multi-input LUT node: an arbitrary boolean
/// function of `width ≤ 4` inputs, evaluated at run time by a single
/// programmable bootstrap instead of a tree of two-input gates.
///
/// Bit `j` of `table` is the output for input pattern `j`, where input
/// `i` contributes bit `i` of `j` (input 0 is the least significant).
/// `precision` is the message precision (in bits) the node's *wires*
/// ride on: the LUT-cover pass assigns one netlist-global precision —
/// the maximum fused width — so every wire of a lowered netlist shares
/// one encoding and LUT outputs feed LUT inputs directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LutSpec {
    /// Number of inputs read (`1..=MAX_LUT_INPUTS`).
    pub width: u8,
    /// Message precision (bits) of the wire encoding (`width ≤ precision ≤ 4`).
    pub precision: u8,
    /// Truth table: bit `j` is the output for input pattern `j`.
    pub table: u16,
}

impl LutSpec {
    /// Builds a spec, masking `table` to the `2^width` meaningful bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or `width`/`precision` exceed the
    /// supported range.
    pub fn new(width: u8, precision: u8, table: u16) -> Self {
        assert!((1..=MAX_LUT_INPUTS as u8).contains(&width), "LUT width {width} out of range");
        assert!(
            width <= precision && precision <= MAX_LUT_INPUTS as u8,
            "LUT precision {precision} out of range for width {width}"
        );
        let mask = if width == 4 { u16::MAX } else { (1u16 << (1u16 << width)) - 1 };
        LutSpec { width, precision, table: table & mask }
    }

    /// Number of truth-table entries (`2^width`).
    #[inline]
    pub fn entries(self) -> usize {
        1 << self.width
    }

    /// The output bit for input pattern `j`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `j` is out of range.
    #[inline]
    pub fn eval(self, j: usize) -> bool {
        debug_assert!(j < self.entries(), "pattern {j} out of range");
        (self.table >> j) & 1 == 1
    }

    /// Evaluates the LUT on explicit input bits (`bits[i]` is input `i`).
    #[inline]
    pub fn eval_bits(self, bits: &[bool]) -> bool {
        let j = bits
            .iter()
            .take(self.width as usize)
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i));
        self.eval(j)
    }

    /// If the table ignores its inputs entirely, the constant it outputs.
    pub fn as_const(self) -> Option<bool> {
        let mask = if self.width == 4 { u16::MAX } else { (1u16 << (1u16 << self.width)) - 1 };
        if self.table == 0 {
            Some(false)
        } else if self.table == mask {
            Some(true)
        } else {
            None
        }
    }

    /// Whether this is the width-1 identity (`table = 0b10`): a buffer,
    /// executed as a ciphertext copy.
    #[inline]
    pub fn is_passthrough(self) -> bool {
        self.width == 1 && self.table == 0b10
    }

    /// Whether this is the width-1 inverter (`table = 0b01`): on the
    /// message encoding NOT is affine (`1/2^p − x`), so it executes
    /// without a bootstrap.
    #[inline]
    pub fn is_negation(self) -> bool {
        self.width == 1 && self.table == 0b01
    }

    /// Bootstraps this node costs at run time: 0 for constants,
    /// passthroughs and negations (all affine on the message encoding),
    /// 1 for everything else.
    pub fn bootstraps(self) -> u64 {
        u64::from(!(self.as_const().is_some() || self.is_passthrough() || self.is_negation()))
    }
}

impl fmt::Display for LutSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lut{}/{}:{:#x}", self.width, self.precision, self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trip() {
        for &kind in &ALL_GATE_KINDS {
            assert_eq!(GateKind::from_opcode(kind.opcode()).unwrap(), kind);
        }
    }

    #[test]
    fn reserved_opcodes_rejected() {
        assert!(GateKind::from_opcode(0x3).is_err());
        assert!(GateKind::from_opcode(0xF).is_err());
        assert!(GateKind::from_opcode(0x10).is_err());
    }

    #[test]
    fn xor_opcode_matches_paper_figure_6() {
        assert_eq!(GateKind::Xor.opcode(), 0b0110);
    }

    #[test]
    fn truth_tables() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(GateKind::Nand.eval(a, b), !(a && b));
            assert_eq!(GateKind::And.eval(a, b), a && b);
            assert_eq!(GateKind::Or.eval(a, b), a || b);
            assert_eq!(GateKind::Nor.eval(a, b), !(a || b));
            assert_eq!(GateKind::Xor.eval(a, b), a ^ b);
            assert_eq!(GateKind::Xnor.eval(a, b), !(a ^ b));
            assert_eq!(GateKind::Andny.eval(a, b), !a && b);
            assert_eq!(GateKind::Andyn.eval(a, b), a && !b);
            assert_eq!(GateKind::Orny.eval(a, b), !a || b);
            assert_eq!(GateKind::Oryn.eval(a, b), a || !b);
            assert_eq!(GateKind::Not.eval(a, b), !a);
            assert_eq!(GateKind::Buf.eval(a, b), a);
            assert!(!GateKind::Const0.eval(a, b));
            assert!(GateKind::Const1.eval(a, b));
        }
    }

    #[test]
    fn swapped_is_consistent() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for &kind in &ALL_GATE_KINDS {
            if kind.is_unary() || kind.is_const() {
                continue;
            }
            for (a, b) in cases {
                assert_eq!(kind.eval(a, b), kind.swapped().eval(b, a), "{kind}");
            }
        }
    }

    #[test]
    fn negated_is_consistent() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for &kind in &ALL_GATE_KINDS {
            if let Some(neg) = kind.negated() {
                for (a, b) in cases {
                    assert_eq!(!kind.eval(a, b), neg.eval(a, b), "{kind}");
                }
            }
        }
    }

    #[test]
    fn absorb_not_is_consistent() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for &kind in &ALL_GATE_KINDS {
            if let Some(absorbed) = kind.absorb_not_a() {
                for (a, b) in cases {
                    assert_eq!(kind.eval(!a, b), absorbed.eval(a, b), "{kind} not-a");
                }
            }
            if kind.is_unary() || kind.is_const() {
                continue;
            }
            if let Some(absorbed) = kind.absorb_not_b() {
                for (a, b) in cases {
                    assert_eq!(kind.eval(a, !b), absorbed.eval(a, b), "{kind} not-b");
                }
            }
        }
    }

    #[test]
    fn lut_spec_masks_and_evaluates() {
        let xor = LutSpec::new(2, 2, 0b0110);
        assert_eq!(xor.entries(), 4);
        assert!(!xor.eval(0) && xor.eval(1) && xor.eval(2) && !xor.eval(3));
        assert!(xor.eval_bits(&[true, false]));
        assert_eq!(xor.bootstraps(), 1);
        // Bits beyond 2^width are masked away.
        assert_eq!(LutSpec::new(1, 2, 0xFF06).table, 0b10);
        assert_eq!(LutSpec::new(4, 4, 0xFFFF).table, 0xFFFF);
    }

    #[test]
    fn lut_spec_classifies_affine_forms() {
        assert_eq!(LutSpec::new(2, 2, 0).as_const(), Some(false));
        assert_eq!(LutSpec::new(2, 2, 0b1111).as_const(), Some(true));
        assert_eq!(LutSpec::new(3, 3, 0b1010_1010).as_const(), None);
        assert!(LutSpec::new(1, 2, 0b10).is_passthrough());
        assert!(LutSpec::new(1, 2, 0b01).is_negation());
        assert_eq!(LutSpec::new(1, 2, 0b10).bootstraps(), 0);
        assert_eq!(LutSpec::new(1, 2, 0b01).bootstraps(), 0);
        assert_eq!(LutSpec::new(2, 2, 0).bootstraps(), 0);
        assert_eq!(LutSpec::new(3, 4, 0b0110_1001).bootstraps(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lut_spec_rejects_zero_width() {
        let _ = LutSpec::new(0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lut_spec_rejects_precision_below_width() {
        let _ = LutSpec::new(3, 2, 0);
    }

    #[test]
    fn commutativity_flag_is_sound() {
        let cases = [(false, true), (true, false)];
        for &kind in &ALL_GATE_KINDS {
            if kind.is_commutative() {
                for (a, b) in cases {
                    assert_eq!(kind.eval(a, b), kind.eval(b, a), "{kind}");
                }
            }
        }
    }
}
