use std::fmt;

/// Errors produced when constructing or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate referenced a node id that does not exist yet.
    ///
    /// Gates may only reference earlier nodes; this keeps every netlist
    /// topologically ordered by construction, which is what allows the
    /// PyTFHE binary format's fast sequential traversal.
    DanglingInput {
        /// The offending node id.
        node: u64,
        /// Number of nodes present when the reference was made.
        len: u64,
    },
    /// An output was marked on a node id that does not exist.
    UnknownOutput {
        /// The offending node id.
        node: u64,
    },
    /// An unknown 4-bit gate opcode was decoded.
    UnknownOpcode {
        /// The offending opcode.
        opcode: u8,
    },
    /// The netlist exceeds the maximum representable size (`2^62` gates in
    /// the binary format; `2^32` nodes in this in-memory representation).
    TooLarge,
    /// A port declaration referenced a node id that does not exist.
    BadPort {
        /// Name of the port being declared.
        name: String,
    },
    /// The netlist has no outputs; executing it would be a no-op.
    NoOutputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingInput { node, len } => {
                write!(f, "gate references node {node} but only {len} nodes exist")
            }
            NetlistError::UnknownOutput { node } => {
                write!(f, "output marks unknown node {node}")
            }
            NetlistError::UnknownOpcode { opcode } => {
                write!(f, "unknown gate opcode {opcode:#06b}")
            }
            NetlistError::TooLarge => write!(f, "netlist exceeds maximum representable size"),
            NetlistError::BadPort { name } => {
                write!(f, "port `{name}` references an unknown node")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no outputs"),
        }
    }
}

impl std::error::Error for NetlistError {}
