//! Gate-level netlist intermediate representation for the PyTFHE framework.
//!
//! A TFHE program is a directed acyclic graph (DAG) of two-input boolean
//! gates (plus inverters and constants). This crate provides:
//!
//! * [`GateKind`] — the eleven bootstrapped TFHE gates of the paper plus
//!   `CONST0`/`CONST1`/`BUF` pseudo-gates (Section IV-C of the paper),
//! * [`Netlist`] — the DAG itself with named input/output ports,
//! * topological analysis ([`topo`]) used by the backend schedulers
//!   (Algorithm 1 of the paper),
//! * the Yosys-substitute optimization passes ([`opt`]): constant folding,
//!   dead-gate elimination, common-subexpression elimination and inverter
//!   absorption,
//! * netlist statistics ([`stats`]) used to regenerate Figure 14.
//!
//! # Example
//!
//! Build the half adder of Figure 6 of the paper:
//!
//! ```
//! use pytfhe_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), pytfhe_netlist::NetlistError> {
//! let mut nl = Netlist::new();
//! let a = nl.add_input();
//! let b = nl.add_input();
//! let sum = nl.add_gate(GateKind::Xor, a, b)?;
//! let carry = nl.add_gate(GateKind::And, a, b)?;
//! nl.mark_output(sum)?;
//! nl.mark_output(carry)?;
//! assert_eq!(nl.num_gates(), 2);
//! # Ok(())
//! # }
//! ```

mod error;
mod gate;
mod graph;
pub mod opt;
pub mod stats;
pub mod topo;

pub use error::NetlistError;
pub use gate::{GateKind, LutSpec, ALL_GATE_KINDS, MAX_LUT_INPUTS};
pub use graph::{Netlist, Node, NodeId, Port};
pub use stats::{GateHistogram, NetlistStats};
pub use topo::{LevelSchedule, Levels};
