use crate::bit::Bit;
use crate::error::HdlError;
use crate::word::Word;
use pytfhe_netlist::{GateKind, Netlist, NetlistError, NodeId};

/// A combinational circuit under construction.
///
/// `Circuit` wraps a [`Netlist`] and exposes gate- and word-level builders.
/// With folding enabled (the default, mirroring the paper's optimized
/// ChiselTorch flow) the builder simplifies constants and trivial
/// identities as gates are emitted; with folding disabled (the baseline
/// frameworks' behaviour, Section III-B) every requested gate is
/// materialized.
#[derive(Debug, Clone)]
pub struct Circuit {
    nl: Netlist,
    fold: bool,
    const_nodes: [Option<NodeId>; 2],
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates a circuit builder with constant folding enabled.
    pub fn new() -> Self {
        Circuit { nl: Netlist::new(), fold: true, const_nodes: [None, None] }
    }

    /// Creates a builder that materializes every gate verbatim, like the
    /// DSL baselines the paper compares against.
    pub fn without_folding() -> Self {
        Circuit { nl: Netlist::new(), fold: false, const_nodes: [None, None] }
    }

    /// Whether on-the-fly folding is enabled.
    pub fn folding(&self) -> bool {
        self.fold
    }

    /// Number of gates emitted so far.
    pub fn num_gates(&self) -> usize {
        self.nl.num_gates()
    }

    /// Finishes construction and returns the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has no outputs.
    pub fn finish(self) -> Result<Netlist, HdlError> {
        self.nl.validate()?;
        Ok(self.nl)
    }

    /// Declares a `width`-bit input port and returns its word.
    pub fn input_word(&mut self, name: impl Into<String>, width: usize) -> Word {
        let ids: Vec<NodeId> = (0..width).map(|_| self.nl.add_input()).collect();
        self.nl
            .declare_input_port(name, ids.clone())
            .expect("fresh inputs always form a valid port");
        Word::from_bits(ids.into_iter().map(Bit::Node).collect())
    }

    /// Declares a `width`-bit anonymous input (no port metadata).
    pub fn input_word_anon(&mut self, width: usize) -> Word {
        Word::from_bits((0..width).map(|_| Bit::Node(self.nl.add_input())).collect())
    }

    /// Declares an output port carrying `word`.
    pub fn output_word(&mut self, name: impl Into<String>, word: &Word) {
        let ids: Vec<NodeId> = word.bits().iter().map(|&b| self.materialize(b)).collect();
        self.nl.declare_output_port(name, ids).expect("materialized bits always form a valid port");
    }

    /// Materializes a bit as a netlist node (constants become CONST gates,
    /// cached so each constant is emitted at most once).
    pub fn materialize(&mut self, bit: Bit) -> NodeId {
        match bit {
            Bit::Node(id) => id,
            Bit::Const(v) => {
                let slot = usize::from(v);
                if let Some(id) = self.const_nodes[slot] {
                    return id;
                }
                let kind = if v { GateKind::Const1 } else { GateKind::Const0 };
                let id = self
                    .nl
                    .add_gate(kind, NodeId(0), NodeId(0))
                    .expect("const gates have no operands");
                self.const_nodes[slot] = Some(id);
                id
            }
        }
    }

    fn emit(&mut self, kind: GateKind, a: Bit, b: Bit) -> Bit {
        let ia = self.materialize(a);
        let ib = self.materialize(b);
        match self.nl.add_gate(kind, ia, ib) {
            Ok(id) => Bit::Node(id),
            Err(NetlistError::TooLarge) => panic!("circuit exceeds 2^32 nodes"),
            Err(e) => unreachable!("materialized operands are always valid: {e}"),
        }
    }

    /// Emits a `BUF` gate unconditionally, bypassing folding — used to
    /// model code generators that materialize copies (the Transpiler's
    /// `Flatten` behaviour, Section V-C of the paper).
    pub fn emit_buffer(&mut self, a: Bit) -> Bit {
        self.emit(GateKind::Buf, a, a)
    }

    /// Emits (or folds) a gate of the given kind.
    pub fn gate(&mut self, kind: GateKind, a: Bit, b: Bit) -> Bit {
        if kind == GateKind::Const0 {
            return if self.fold { Bit::ZERO } else { self.emit(kind, a, b) };
        }
        if kind == GateKind::Const1 {
            return if self.fold { Bit::ONE } else { self.emit(kind, a, b) };
        }
        if !self.fold {
            return self.emit(kind, a, b);
        }
        // Unary gates.
        if kind == GateKind::Buf {
            return a;
        }
        if kind == GateKind::Not {
            return match a {
                Bit::Const(v) => Bit::Const(!v),
                Bit::Node(_) => self.emit(GateKind::Not, a, a),
            };
        }
        // Fully constant.
        if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
            return Bit::Const(kind.eval(ca, cb));
        }
        // One constant: specialize f(c, x) to {0, 1, x, !x}.
        if let Some(ca) = a.as_const() {
            let f0 = kind.eval(ca, false);
            let f1 = kind.eval(ca, true);
            return self.unary_of(f0, f1, b);
        }
        if let Some(cb) = b.as_const() {
            let f0 = kind.eval(false, cb);
            let f1 = kind.eval(true, cb);
            return self.unary_of(f0, f1, a);
        }
        // Same-operand identities.
        if a == b {
            return match kind {
                GateKind::And | GateKind::Or => a,
                GateKind::Xor | GateKind::Andny | GateKind::Andyn => Bit::ZERO,
                GateKind::Xnor | GateKind::Orny | GateKind::Oryn => Bit::ONE,
                GateKind::Nand | GateKind::Nor => self.gate(GateKind::Not, a, a),
                _ => unreachable!(),
            };
        }
        self.emit(kind, a, b)
    }

    /// Builds the unary function with truth table `(f(0), f(1)) = (f0, f1)`
    /// of `x`.
    fn unary_of(&mut self, f0: bool, f1: bool, x: Bit) -> Bit {
        match (f0, f1) {
            (false, false) => Bit::ZERO,
            (true, true) => Bit::ONE,
            (false, true) => x,
            (true, false) => self.gate(GateKind::Not, x, x),
        }
    }

    // ---- single-bit convenience gates ----

    /// `!a`.
    pub fn not(&mut self, a: Bit) -> Bit {
        self.gate(GateKind::Not, a, a)
    }

    /// `a & b`.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::And, a, b)
    }

    /// `a | b`.
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Or, a, b)
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Xor, a, b)
    }

    /// `!(a & b)`.
    pub fn nand(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Nand, a, b)
    }

    /// `!(a | b)`.
    pub fn nor(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Nor, a, b)
    }

    /// `!(a ^ b)`.
    pub fn xnor(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Xnor, a, b)
    }

    /// `a & !b`.
    pub fn andyn(&mut self, a: Bit, b: Bit) -> Bit {
        self.gate(GateKind::Andyn, a, b)
    }

    /// `s ? a : b` — three gates via `b ^ (s & (a ^ b))`.
    pub fn mux_bit(&mut self, s: Bit, a: Bit, b: Bit) -> Bit {
        if self.fold {
            if let Some(sv) = s.as_const() {
                return if sv { a } else { b };
            }
            if a == b {
                return a;
            }
        }
        let axb = self.gate(GateKind::Xor, a, b);
        let masked = self.gate(GateKind::And, s, axb);
        self.gate(GateKind::Xor, b, masked)
    }

    /// Reduction OR of a word (zero-width reduces to `false`).
    pub fn or_reduce(&mut self, w: &Word) -> Bit {
        self.reduce_tree(w, GateKind::Or, Bit::ZERO)
    }

    /// Reduction AND of a word (zero-width reduces to `true`).
    pub fn and_reduce(&mut self, w: &Word) -> Bit {
        self.reduce_tree(w, GateKind::And, Bit::ONE)
    }

    /// Reduction XOR of a word (parity; zero-width reduces to `false`).
    pub fn xor_reduce(&mut self, w: &Word) -> Bit {
        self.reduce_tree(w, GateKind::Xor, Bit::ZERO)
    }

    fn reduce_tree(&mut self, w: &Word, kind: GateKind, empty: Bit) -> Bit {
        if w.is_empty() {
            return empty;
        }
        // Balanced tree keeps the critical path logarithmic — wave depth is
        // what bounds backend parallelism (Algorithm 1).
        let mut layer: Vec<Bit> = w.bits().to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Bitwise binary operation on equal-width words.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn bitwise(&mut self, kind: GateKind, a: &Word, b: &Word) -> Result<Word, HdlError> {
        if a.width() != b.width() {
            return Err(HdlError::WidthMismatch {
                left: a.width(),
                right: b.width(),
                op: "bitwise",
            });
        }
        Ok(a.bits().iter().zip(b.bits()).map(|(&x, &y)| self.gate(kind, x, y)).collect())
    }

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, a: &Word) -> Word {
        a.bits().iter().map(|&x| self.not(x)).collect()
    }

    /// Word-level mux: `s ? a : b`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn mux_word(&mut self, s: Bit, a: &Word, b: &Word) -> Result<Word, HdlError> {
        if a.width() != b.width() {
            return Err(HdlError::WidthMismatch { left: a.width(), right: b.width(), op: "mux" });
        }
        Ok(a.bits().iter().zip(b.bits()).map(|(&x, &y)| self.mux_bit(s, x, y)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a 1-output circuit on the given input bits.
    fn eval1(nl: &Netlist, inputs: &[bool]) -> bool {
        nl.eval_plain(inputs)[0]
    }

    #[test]
    fn folding_eliminates_constant_gates() {
        let mut c = Circuit::new();
        let a = c.input_word("a", 1);
        let x = c.and(a.bit(0), Bit::ONE); // = a
        let y = c.xor(x, Bit::ZERO); // = a
        let z = c.or(y, Bit::ONE); // = 1
        assert_eq!(z, Bit::ONE);
        let w = c.and(y, a.bit(0)); // same node: = a
        assert_eq!(w, a.bit(0));
        assert_eq!(c.num_gates(), 0);
    }

    #[test]
    fn without_folding_materializes_everything() {
        let mut c = Circuit::without_folding();
        let a = c.input_word("a", 1);
        let x = c.and(a.bit(0), Bit::ONE);
        let _ = c.xor(x, Bit::ZERO);
        // 2 logic gates + 2 materialized constants.
        assert_eq!(c.num_gates(), 4);
    }

    #[test]
    fn mux_bit_truth_table() {
        let mut c = Circuit::new();
        let w = c.input_word("in", 3);
        let out = c.mux_bit(w.bit(0), w.bit(1), w.bit(2));
        c.output_word("out", &Word::from_bits(vec![out]));
        let nl = c.finish().unwrap();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(eval1(&nl, &[s, a, b]), if s { a } else { b });
                }
            }
        }
    }

    #[test]
    fn reductions() {
        let mut c = Circuit::new();
        let w = c.input_word("in", 5);
        let or = c.or_reduce(&w);
        let and = c.and_reduce(&w);
        let parity = c.xor_reduce(&w);
        c.output_word("o", &Word::from_bits(vec![or, and, parity]));
        let nl = c.finish().unwrap();
        for v in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            let out = nl.eval_plain(&bits);
            assert_eq!(out[0], v != 0);
            assert_eq!(out[1], v == 31);
            assert_eq!(out[2], v.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn empty_reductions_fold() {
        let mut c = Circuit::new();
        let w = Word::zeros(0);
        assert_eq!(c.or_reduce(&w), Bit::ZERO);
        assert_eq!(c.and_reduce(&w), Bit::ONE);
        assert_eq!(c.xor_reduce(&w), Bit::ZERO);
    }

    #[test]
    fn bitwise_checks_widths() {
        let mut c = Circuit::new();
        let a = c.input_word("a", 4);
        let b = c.input_word("b", 3);
        assert!(matches!(
            c.bitwise(GateKind::And, &a, &b),
            Err(HdlError::WidthMismatch { left: 4, right: 3, .. })
        ));
    }

    #[test]
    fn constant_nodes_are_cached() {
        let mut c = Circuit::new();
        let n1 = c.materialize(Bit::ONE);
        let n2 = c.materialize(Bit::ONE);
        let n3 = c.materialize(Bit::ZERO);
        assert_eq!(n1, n2);
        assert_ne!(n1, n3);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn finish_requires_outputs() {
        let mut c = Circuit::new();
        c.input_word("a", 1);
        assert!(c.finish().is_err());
    }
}
