//! Parameterizable floating-point circuits — ChiselTorch's `Float(e, m)`
//! data types (Section IV-B of the paper: "floating-point data types with
//! arbitrary bits of exponent and mantissa", e.g. `Float(8, 8)` for
//! bfloat16 or `Float(5, 11)` for half precision).
//!
//! # Number model
//!
//! A `Float(e, m)` value is stored LSB-first as `[mantissa, exponent,
//! sign]` and denotes `(-1)^s * 2^(exp - bias) * (1 + mant / 2^m)` with
//! `bias = 2^(e-1) - 1`. The model is deliberately simpler than IEEE 754,
//! as is typical for FHE circuits where every gate is a bootstrap:
//!
//! * `exp == 0` means zero (no subnormals; underflow flushes to zero),
//! * no NaN/infinity: overflow saturates to the largest finite value,
//! * rounding is truncation (toward zero).
//!
//! The software codec ([`FloatFormat::encode_f64`] /
//! [`FloatFormat::decode_f64`]) implements the same model bit-exactly and
//! is what the client uses to prepare tensors for encryption.

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::word::Word;
use std::fmt;

/// A floating-point format with `exp_bits` of exponent and `man_bits` of
/// mantissa (plus an implicit sign bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    /// Exponent width in bits (≥ 2).
    pub exp_bits: usize,
    /// Mantissa width in bits (≥ 1), excluding the hidden leading 1.
    pub man_bits: usize,
}

/// Guard bits carried through addition/division before truncation.
const GUARD: usize = 3;

impl FloatFormat {
    /// Creates a format; the paper's `Float(8, 8)` is
    /// `FloatFormat::new(8, 8)`.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits < 2` or `man_bits < 1`.
    pub fn new(exp_bits: usize, man_bits: usize) -> Self {
        assert!(exp_bits >= 2, "need at least 2 exponent bits");
        assert!(man_bits >= 1, "need at least 1 mantissa bit");
        assert!(exp_bits <= 11 && man_bits <= 32, "format too large for the f64 codec");
        FloatFormat { exp_bits, man_bits }
    }

    /// bfloat16-like `Float(8, 8)` (the paper's Figure 4 example).
    pub fn bf16() -> Self {
        FloatFormat::new(8, 8)
    }

    /// Half-precision-like `Float(5, 11)` (the paper's Section IV-B
    /// example; one mantissa bit more than IEEE half, hidden-bit counted).
    pub fn half() -> Self {
        FloatFormat::new(5, 11)
    }

    /// Total storage width: `1 + exp_bits + man_bits`.
    pub fn width(&self) -> usize {
        1 + self.exp_bits + self.man_bits
    }

    /// The exponent bias `2^(e-1) - 1`.
    pub fn bias(&self) -> i64 {
        (1i64 << (self.exp_bits - 1)) - 1
    }

    /// Largest finite value.
    pub fn max_value(&self) -> f64 {
        let emax = (1i64 << self.exp_bits) - 1 - self.bias();
        let mant = 2.0 - (0.5f64).powi(self.man_bits as i32 - 1) / 2.0;
        mant.min(2.0 - f64::EPSILON) * (emax as f64).exp2()
    }

    /// Encodes `x` into the format's bit pattern (LSB-first), applying the
    /// model's flush-to-zero, saturation and truncation rules.
    pub fn encode_f64(&self, x: f64) -> Vec<bool> {
        let w = self.width();
        let mut bits = vec![false; w];
        if x == 0.0 || !x.is_finite() && x.is_nan() {
            return bits;
        }
        let sign = x < 0.0;
        let mag = x.abs();
        let (mant_field, exp_field) = if mag.is_infinite() {
            ((1u64 << self.man_bits) - 1, (1u64 << self.exp_bits) - 1)
        } else {
            let e_unb = mag.log2().floor() as i64;
            let e_biased = e_unb + self.bias();
            if e_biased <= 0 {
                return bits; // underflow -> zero (sign dropped)
            }
            let emax = (1i64 << self.exp_bits) - 1;
            if e_biased >= emax {
                // saturate to the largest finite value
                ((1u64 << self.man_bits) - 1, emax as u64)
            } else {
                let frac = mag / (e_unb as f64).exp2() - 1.0; // in [0, 1)
                let mant = (frac * (1u64 << self.man_bits) as f64).floor() as u64;
                // Truncation cannot round up, so mant < 2^m always.
                (mant.min((1 << self.man_bits) - 1), e_biased as u64)
            }
        };
        for (i, bit) in bits.iter_mut().enumerate().take(self.man_bits) {
            *bit = (mant_field >> i) & 1 == 1;
        }
        for i in 0..self.exp_bits {
            bits[self.man_bits + i] = (exp_field >> i) & 1 == 1;
        }
        bits[w - 1] = sign;
        bits
    }

    /// Decodes a bit pattern back to `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from [`FloatFormat::width`].
    pub fn decode_f64(&self, bits: &[bool]) -> f64 {
        assert_eq!(bits.len(), self.width(), "float decode width mismatch");
        let mant: u64 = bits[..self.man_bits]
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i));
        let exp: u64 = bits[self.man_bits..self.man_bits + self.exp_bits]
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i));
        let sign = bits[self.width() - 1];
        if exp == 0 {
            return 0.0;
        }
        let value = (1.0 + mant as f64 / (1u64 << self.man_bits) as f64)
            * ((exp as i64 - self.bias()) as f64).exp2();
        if sign {
            -value
        } else {
            value
        }
    }

    /// Relative precision of one mantissa ULP, `2^-m`.
    pub fn ulp(&self) -> f64 {
        (-(self.man_bits as f64)).exp2()
    }
}

impl fmt::Display for FloatFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Float({}, {})", self.exp_bits, self.man_bits)
    }
}

/// The unpacked fields of a float word inside a circuit.
#[derive(Debug, Clone)]
struct Unpacked {
    sign: Bit,
    exp: Word,
    mant: Word,
    /// `exp != 0`.
    nonzero: Bit,
}

impl Circuit {
    fn unpack_float(&mut self, fmt: FloatFormat, x: &Word) -> Unpacked {
        assert_eq!(x.width(), fmt.width(), "float width mismatch");
        let mant = x.slice(0, fmt.man_bits);
        let exp = x.slice(fmt.man_bits, fmt.man_bits + fmt.exp_bits);
        let sign = x.bit(fmt.width() - 1);
        let nonzero = self.or_reduce(&exp);
        Unpacked { sign, exp, mant, nonzero }
    }

    fn pack_float(&mut self, fmt: FloatFormat, sign: Bit, exp: &Word, mant: &Word) -> Word {
        debug_assert_eq!(exp.width(), fmt.exp_bits);
        debug_assert_eq!(mant.width(), fmt.man_bits);
        let mut bits = mant.bits().to_vec();
        bits.extend_from_slice(exp.bits());
        bits.push(sign);
        Word::from_bits(bits)
    }

    /// The all-zero (positive zero) float constant.
    fn float_zero(&self, fmt: FloatFormat) -> Word {
        Word::zeros(fmt.width())
    }

    /// Clamps a signed extended exponent into the format, producing the
    /// packed result with underflow-to-zero and overflow saturation.
    ///
    /// `exp_ext`: signed, at least `exp_bits + 2` wide. `valid` gates the
    /// whole result (0 selects zero).
    fn finalize_float(
        &mut self,
        fmt: FloatFormat,
        sign: Bit,
        exp_ext: &Word,
        mant: &Word,
        valid: Bit,
    ) -> Word {
        let we = exp_ext.width();
        let emax = Word::constant((1i64 << fmt.exp_bits) - 1, we);
        let one = Word::constant(1, we);
        let underflow = self.lt_signed(exp_ext, &one).expect("same widths");
        let overflow = self.lt_signed(&emax, exp_ext).expect("same widths");
        let exp_clamped = self.mux_word(overflow, &emax, exp_ext).expect("same widths");
        let exp_field = exp_clamped.slice(0, fmt.exp_bits);
        let mant_sat = Word::constant(-1, fmt.man_bits);
        let mant_field = self.mux_word(overflow, &mant_sat, mant).expect("same widths");
        let packed = self.pack_float(fmt, sign, &exp_field, &mant_field);
        let zero = self.float_zero(fmt);
        let not_under = self.not(underflow);
        let keep = self.and(valid, not_under);
        self.mux_word(keep, &packed, &zero).expect("same widths")
    }

    /// Floating-point multiplication.
    pub fn fmul(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let ua = self.unpack_float(fmt, a);
        let ub = self.unpack_float(fmt, b);
        let m = fmt.man_bits;
        let sign = self.xor(ua.sign, ub.sign);
        // (1.ma) * (1.mb): (m+1) x (m+1) -> 2m+2 bits.
        let ma = {
            let mut bits = ua.mant.bits().to_vec();
            bits.push(Bit::ONE);
            Word::from_bits(bits)
        };
        let mb = {
            let mut bits = ub.mant.bits().to_vec();
            bits.push(Bit::ONE);
            Word::from_bits(bits)
        };
        let prod = self.mul_unsigned(&ma, &mb);
        let top = prod.bit(2 * m + 1); // product in [2, 4)
                                       // Truncated mantissa for both normalization cases.
        let hi = prod.slice(m + 1, 2 * m + 1);
        let lo = prod.slice(m, 2 * m);
        let mant = self.mux_word(top, &hi, &lo).expect("same widths");
        // exp = ea + eb - bias + top, in exp_bits + 2 signed bits.
        let we = fmt.exp_bits + 2;
        let ea = ua.exp.zext(we);
        let eb = ub.exp.zext(we);
        let esum = self.add(&ea, &eb);
        let bias = Word::constant(fmt.bias(), we);
        let ebiased = self.sub(&esum, &bias);
        let topw: Word = Word::from_bits(vec![top]).zext(we);
        let exp_ext = self.add(&ebiased, &topw);
        let valid = self.and(ua.nonzero, ub.nonzero);
        self.finalize_float(fmt, sign, &exp_ext, &mant, valid)
    }

    /// Floating-point addition (subtraction is `fadd` with
    /// [`Circuit::fneg`]).
    pub fn fadd(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let ua = self.unpack_float(fmt, a);
        let ub = self.unpack_float(fmt, b);
        let m = fmt.man_bits;
        // Canonical magnitude keys (zero -> all-zero key) for the swap.
        let mag_a = self.float_magnitude_key(&ua);
        let mag_b = self.float_magnitude_key(&ub);
        let a_smaller = self.lt_unsigned(&mag_a, &mag_b).expect("same widths");
        // x = larger magnitude, y = smaller.
        let sx = self.mux_bit(a_smaller, ub.sign, ua.sign);
        let sy = self.mux_bit(a_smaller, ua.sign, ub.sign);
        let ex = self.mux_word(a_smaller, &ub.exp, &ua.exp).expect("w");
        let ey = self.mux_word(a_smaller, &ua.exp, &ub.exp).expect("w");
        let mx_f = self.mux_word(a_smaller, &ub.mant, &ua.mant).expect("w");
        let my_f = self.mux_word(a_smaller, &ua.mant, &ub.mant).expect("w");
        let x_nonzero = self.mux_bit(a_smaller, ub.nonzero, ua.nonzero);
        let y_nonzero = self.mux_bit(a_smaller, ua.nonzero, ub.nonzero);
        // Extended significands with guard bits: [guard | mant | 1].
        let l = m + 1 + GUARD;
        let build_sig = |c: &mut Circuit, mant: &Word, nonzero: Bit| -> Word {
            let mut bits = vec![Bit::ZERO; GUARD];
            bits.extend_from_slice(mant.bits());
            bits.push(nonzero); // hidden bit only when the value is nonzero
            let sig = Word::from_bits(bits);
            // Zero values must contribute a zero significand.
            let masked: Vec<Bit> = sig.bits().iter().map(|&bb| c.and(bb, nonzero)).collect();
            Word::from_bits(masked)
        };
        let sig_x = build_sig(self, &mx_f, x_nonzero);
        let sig_y = build_sig(self, &my_f, y_nonzero);
        // Align y to x: shift right by (ex - ey), a non-negative amount.
        let d = self.sub(&ex, &ey);
        let sig_y_shifted = self.shr_barrel(&sig_y, &d);
        // Effective add or subtract.
        let same_sign = self.xnor(sx, sy);
        let sum = self.add_wide_unsigned(&sig_x, &sig_y_shifted); // l+1 bits
        let diff = self.sub(&sig_x, &sig_y_shifted).zext(l + 1); // never borrows
        let v = self.mux_word(same_sign, &sum, &diff).expect("w");
        // Normalize: find the leading one; position l means exp += 1,
        // position l-1 means exp += 0, each step lower subtracts one more.
        let lz = self.leading_zeros(&v);
        let v_norm = self.shl_barrel(&v, &lz); // leading one now at bit l
                                               // Mantissa = bits just below the leading one, truncated.
        let mant = v_norm.slice(l - m, l);
        // exp_ext = ex + 1 - lz (signed).
        let we = fmt.exp_bits + 2;
        let ex_w = ex.zext(we);
        let one = Word::constant(1, we);
        let lz_w = lz.zext(we);
        let t = self.add(&ex_w, &one);
        let exp_ext = self.sub(&t, &lz_w);
        // Result is zero iff v == 0 (covers x == y == 0 and exact
        // cancellation).
        let v_nonzero = self.or_reduce(&v);
        // Exact cancellation yields +0: gate the sign with v_nonzero.
        let sign = self.and(sx, v_nonzero);
        self.finalize_float(fmt, sign, &exp_ext, &mant, v_nonzero)
    }

    /// Floating-point subtraction `a - b`.
    pub fn fsub(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let nb = self.fneg(fmt, b);
        self.fadd(fmt, a, &nb)
    }

    /// Floating-point division `a / b`. Division by zero saturates to the
    /// largest finite value (no infinities in the model).
    pub fn fdiv(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let ua = self.unpack_float(fmt, a);
        let ub = self.unpack_float(fmt, b);
        let m = fmt.man_bits;
        let sign = self.xor(ua.sign, ub.sign);
        // Quotient of significands with m + GUARD extra bits of precision:
        // A = (1.ma) << (m + GUARD), B = (1.mb); Q in (2^(m+G-1), 2^(m+G+1)).
        let w = 2 * m + GUARD + 2;
        let ma = {
            let mut bits = ua.mant.bits().to_vec();
            bits.push(Bit::ONE);
            Word::from_bits(bits)
        };
        let mb = {
            let mut bits = ub.mant.bits().to_vec();
            bits.push(Bit::ONE);
            Word::from_bits(bits)
        };
        let num = ma.zext(w).shl_const(m + GUARD);
        let den = mb.zext(w);
        let (q, _) = self.div_unsigned(&num, &den);
        let top = q.bit(m + GUARD); // quotient in [1, 2)
        let hi = q.slice(GUARD, m + GUARD);
        let lo = q.slice(GUARD - 1, m + GUARD - 1);
        let mant = self.mux_word(top, &hi, &lo).expect("w");
        // exp = ea - eb + bias - (1 - top) = ea - eb + bias - 1 + top.
        let we = fmt.exp_bits + 2;
        let ea = ua.exp.zext(we);
        let eb = ub.exp.zext(we);
        let ediff = self.sub(&ea, &eb);
        let bias = Word::constant(fmt.bias() - 1, we);
        let ebiased = self.add(&ediff, &bias);
        let topw = Word::from_bits(vec![top]).zext(we);
        let exp_ext = self.add(&ebiased, &topw);
        // a == 0 -> zero; b == 0 -> saturate to max (force overflow path).
        let div_by_zero = self.not(ub.nonzero);
        let big = Word::constant((1i64 << fmt.exp_bits) + 1, we);
        let exp_ext = self.mux_word(div_by_zero, &big, &exp_ext).expect("w");
        self.finalize_float(fmt, sign, &exp_ext, &mant, ua.nonzero)
    }

    /// Floating-point negation (free: flips the sign bit).
    pub fn fneg(&mut self, fmt: FloatFormat, a: &Word) -> Word {
        let mut bits = a.bits().to_vec();
        let w = fmt.width();
        bits[w - 1] = self.not(bits[w - 1]);
        Word::from_bits(bits)
    }

    /// `ReLU(a) = max(a, 0)`: zero when the sign bit is set. Two gates per
    /// output bit — the cheapness of non-linearities is exactly the edge
    /// bit-level TFHE has over CKKS (Section II-C of the paper).
    pub fn frelu(&mut self, fmt: FloatFormat, a: &Word) -> Word {
        let sign = a.bit(fmt.width() - 1);
        let keep = self.not(sign);
        a.bits().iter().map(|&b| self.and(b, keep)).collect()
    }

    /// A canonical unsigned magnitude key: `[mant | exp]` with zeros
    /// mapped to the all-zero key, so unsigned comparison of keys orders
    /// absolute values.
    fn float_magnitude_key(&mut self, u: &Unpacked) -> Word {
        let raw = u.mant.concat(&u.exp);
        raw.bits().iter().map(|&b| self.and(b, u.nonzero)).collect()
    }

    /// Floating-point `a < b`.
    pub fn flt(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Bit {
        let ua = self.unpack_float(fmt, a);
        let ub = self.unpack_float(fmt, b);
        let mag_a = self.float_magnitude_key(&ua);
        let mag_b = self.float_magnitude_key(&ub);
        // Canonical signs: -0 compares as +0.
        let sa = self.and(ua.sign, ua.nonzero);
        let sb = self.and(ub.sign, ub.nonzero);
        let mag_lt = self.lt_unsigned(&mag_a, &mag_b).expect("w");
        let mag_gt = self.lt_unsigned(&mag_b, &mag_a).expect("w");
        // Same sign: positive -> |a|<|b|; negative -> |a|>|b|.
        let same = self.xnor(sa, sb);
        let by_mag = self.mux_bit(sa, mag_gt, mag_lt);
        // Different sign: a < b iff a is the negative one.
        self.mux_bit(same, by_mag, sa)
    }

    /// Floating-point maximum.
    pub fn fmax(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let a_lt_b = self.flt(fmt, a, b);
        self.mux_word(a_lt_b, b, a).expect("same widths")
    }

    /// Floating-point minimum.
    pub fn fmin(&mut self, fmt: FloatFormat, a: &Word, b: &Word) -> Word {
        let a_lt_b = self.flt(fmt, a, b);
        self.mux_word(a_lt_b, a, b).expect("same widths")
    }

    /// `(max value, argmax index)` over float items; ties resolve to the
    /// lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HdlError::ZeroWidth`] if `items` is empty.
    pub fn argmax_float(
        &mut self,
        fmt: FloatFormat,
        items: &[Word],
    ) -> Result<(Word, Word), crate::HdlError> {
        if items.is_empty() {
            return Err(crate::HdlError::ZeroWidth);
        }
        let index_bits = (usize::BITS - (items.len() - 1).max(1).leading_zeros()) as usize;
        let mut best = items[0].clone();
        let mut best_idx = Word::zeros(index_bits.max(1));
        for (i, item) in items.iter().enumerate().skip(1) {
            let improves = self.flt(fmt, &best, item);
            best = self.mux_word(improves, item, &best)?;
            let idx = Word::constant_u64(i as u64, best_idx.width());
            best_idx = self.mux_word(improves, &idx, &best_idx)?;
        }
        Ok((best, best_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::Netlist;

    fn binfloat(fmt: FloatFormat, f: impl FnOnce(&mut Circuit, &Word, &Word) -> Word) -> Netlist {
        let mut c = Circuit::new();
        let a = c.input_word("a", fmt.width());
        let b = c.input_word("b", fmt.width());
        let out = f(&mut c, &a, &b);
        c.output_word("out", &out);
        c.finish().unwrap()
    }

    fn run2(nl: &Netlist, fmt: FloatFormat, x: f64, y: f64) -> f64 {
        let mut input = fmt.encode_f64(x);
        input.extend(fmt.encode_f64(y));
        fmt.decode_f64(&nl.eval_plain(&input))
    }

    /// Relative-error assertion with an absolute floor near zero.
    fn assert_close(fmt: FloatFormat, got: f64, want: f64, ctx: &str) {
        let tol = 8.0 * fmt.ulp();
        let scale = want.abs().max(1e-30);
        if want == 0.0 {
            // Truncation may leave a few-ulp residue around cancellation.
            assert!(got.abs() <= tol * 4.0, "{ctx}: got {got}, want 0");
        } else {
            assert!(
                ((got - want) / scale).abs() < tol,
                "{ctx}: got {got}, want {want} (rel err {})",
                ((got - want) / scale).abs()
            );
        }
    }

    #[test]
    fn codec_round_trips() {
        let fmt = FloatFormat::bf16();
        for x in [0.0, 1.0, -1.0, 0.5, 3.25, -17.0, 1e-3, 1234.5, -0.0078125] {
            let bits = fmt.encode_f64(x);
            let back = fmt.decode_f64(&bits);
            assert_close(fmt, back, x, "codec");
        }
        assert_eq!(fmt.decode_f64(&fmt.encode_f64(0.0)), 0.0);
    }

    #[test]
    fn codec_saturates_and_flushes() {
        let fmt = FloatFormat::new(4, 4); // tiny range
        let max = fmt.decode_f64(&fmt.encode_f64(1e30));
        assert!(max > 100.0 && max.is_finite());
        assert_eq!(fmt.decode_f64(&fmt.encode_f64(1e-30)), 0.0);
    }

    #[test]
    fn fmul_matches_oracle() {
        let fmt = FloatFormat::bf16();
        let nl = binfloat(fmt, |c, a, b| c.fmul(fmt, a, b));
        let cases = [
            (1.0, 1.0),
            (2.0, 3.0),
            (-2.5, 4.0),
            (0.125, -0.5),
            (std::f64::consts::PI, std::f64::consts::E),
            (1000.0, 0.001),
            (0.0, 5.0),
            (7.0, 0.0),
            (-1.5, -1.5),
        ];
        for (x, y) in cases {
            // Quantize operands first: the circuit sees encoded values.
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            let yq = fmt.decode_f64(&fmt.encode_f64(y));
            let got = run2(&nl, fmt, x, y);
            assert_close(fmt, got, xq * yq, &format!("{x} * {y}"));
        }
    }

    #[test]
    fn fadd_matches_oracle() {
        let fmt = FloatFormat::bf16();
        let nl = binfloat(fmt, |c, a, b| c.fadd(fmt, a, b));
        let cases = [
            (1.0, 1.0),
            (1.0, -1.0),
            (2.5, 0.125),
            (-3.0, 1.5),
            (100.0, -0.01),
            (0.0, 4.0),
            (-4.0, 0.0),
            (0.0, 0.0),
            (1e10, 1.0),
            (-2.0, 2.0),
            (3.75, -3.5),
        ];
        for (x, y) in cases {
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            let yq = fmt.decode_f64(&fmt.encode_f64(y));
            let got = run2(&nl, fmt, x, y);
            assert_close(fmt, got, xq + yq, &format!("{x} + {y}"));
        }
    }

    #[test]
    fn fadd_randomized_against_oracle() {
        let fmt = FloatFormat::half();
        let nl = binfloat(fmt, |c, a, b| c.fadd(fmt, a, b));
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 50.0
        };
        for i in 0..200 {
            let (x, y) = (next(), next());
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            let yq = fmt.decode_f64(&fmt.encode_f64(y));
            let got = run2(&nl, fmt, x, y);
            assert_close(fmt, got, xq + yq, &format!("case {i}: {x} + {y}"));
        }
    }

    #[test]
    fn fmul_randomized_against_oracle() {
        let fmt = FloatFormat::new(6, 6);
        let nl = binfloat(fmt, |c, a, b| c.fmul(fmt, a, b));
        let mut state = 0xDEADBEEFu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 8.0
        };
        for i in 0..200 {
            let (x, y) = (next(), next());
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            let yq = fmt.decode_f64(&fmt.encode_f64(y));
            let got = run2(&nl, fmt, x, y);
            assert_close(fmt, got, xq * yq, &format!("case {i}: {x} * {y}"));
        }
    }

    #[test]
    fn fdiv_matches_oracle() {
        let fmt = FloatFormat::bf16();
        let nl = binfloat(fmt, |c, a, b| c.fdiv(fmt, a, b));
        let cases = [(1.0, 2.0), (3.0, 1.5), (-8.0, 2.0), (1.0, 3.0), (0.0, 7.0), (5.0, -0.25)];
        for (x, y) in cases {
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            let yq = fmt.decode_f64(&fmt.encode_f64(y));
            let got = run2(&nl, fmt, x, y);
            assert_close(fmt, got, xq / yq, &format!("{x} / {y}"));
        }
    }

    #[test]
    fn fdiv_by_zero_saturates() {
        let fmt = FloatFormat::bf16();
        let nl = binfloat(fmt, |c, a, b| c.fdiv(fmt, a, b));
        let got = run2(&nl, fmt, 3.0, 0.0);
        assert!(got > 1e30, "expected saturation, got {got}");
    }

    #[test]
    fn relu_and_neg() {
        let fmt = FloatFormat::bf16();
        let mut c = Circuit::new();
        let a = c.input_word("a", fmt.width());
        let relu = c.frelu(fmt, &a);
        let neg = c.fneg(fmt, &a);
        c.output_word("out", &relu.concat(&neg));
        let nl = c.finish().unwrap();
        for x in [3.5, -3.5, 0.0, -0.125] {
            let out = nl.eval_plain(&fmt.encode_f64(x));
            let relu = fmt.decode_f64(&out[..fmt.width()]);
            let neg = fmt.decode_f64(&out[fmt.width()..]);
            let xq = fmt.decode_f64(&fmt.encode_f64(x));
            assert_eq!(relu, xq.max(0.0), "relu({x})");
            assert_eq!(neg, -xq, "neg({x})");
        }
    }

    #[test]
    fn comparisons_and_extrema() {
        let fmt = FloatFormat::bf16();
        let mut c = Circuit::new();
        let a = c.input_word("a", fmt.width());
        let b = c.input_word("b", fmt.width());
        let lt = c.flt(fmt, &a, &b);
        let mx = c.fmax(fmt, &a, &b);
        let mn = c.fmin(fmt, &a, &b);
        let lt_word = Word::from_bits(vec![lt]);
        c.output_word("out", &lt_word.concat(&mx).concat(&mn));
        let nl = c.finish().unwrap();
        let values = [-7.5, -1.0, -0.25, 0.0, 0.5, 2.0, 100.0];
        for &x in &values {
            for &y in &values {
                let mut input = fmt.encode_f64(x);
                input.extend(fmt.encode_f64(y));
                let out = nl.eval_plain(&input);
                assert_eq!(out[0], x < y, "{x} < {y}");
                let w = fmt.width();
                assert_eq!(fmt.decode_f64(&out[1..1 + w]), x.max(y), "max({x},{y})");
                assert_eq!(fmt.decode_f64(&out[1 + w..]), x.min(y), "min({x},{y})");
            }
        }
    }

    #[test]
    fn argmax_float_selects() {
        let fmt = FloatFormat::bf16();
        let mut c = Circuit::new();
        let items: Vec<Word> = (0..4).map(|i| c.input_word(format!("x{i}"), fmt.width())).collect();
        let (_, idx) = c.argmax_float(fmt, &items).unwrap();
        c.output_word("idx", &idx);
        let nl = c.finish().unwrap();
        let cases = [
            ([0.1, -0.5, 3.0, 2.9], 2u64),
            ([-1.0, -2.0, -3.0, -0.5], 3),
            ([5.0, 5.0, 1.0, 0.0], 0),
        ];
        for (vals, want) in cases {
            let mut input = Vec::new();
            for v in vals {
                input.extend(fmt.encode_f64(v));
            }
            let out = nl.eval_plain(&input);
            let got = out.iter().enumerate().fold(0u64, |a, (i, &b)| a | (u64::from(b) << i));
            assert_eq!(got, want, "{vals:?}");
        }
    }
}
