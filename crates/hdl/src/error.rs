use crate::dtype::DType;
use std::fmt;

/// Errors produced while generating circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum HdlError {
    /// Two words of different widths were combined where equal widths are
    /// required.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// Two values of different data types were combined.
    DTypeMismatch {
        /// Type of the left operand.
        left: DType,
        /// Type of the right operand.
        right: DType,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The operation is not defined for this data type.
    Unsupported {
        /// The data type.
        dtype: DType,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A zero-width word was used where a value is required.
    ZeroWidth,
    /// The underlying netlist rejected a construction step.
    Netlist(pytfhe_netlist::NetlistError),
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::WidthMismatch { left, right, op } => {
                write!(f, "width mismatch in `{op}`: {left} vs {right} bits")
            }
            HdlError::DTypeMismatch { left, right, op } => {
                write!(f, "dtype mismatch in `{op}`: {left} vs {right}")
            }
            HdlError::Unsupported { dtype, op } => {
                write!(f, "operation `{op}` is not supported for {dtype}")
            }
            HdlError::ZeroWidth => write!(f, "zero-width word"),
            HdlError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for HdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HdlError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pytfhe_netlist::NetlistError> for HdlError {
    fn from(e: pytfhe_netlist::NetlistError) -> Self {
        HdlError::Netlist(e)
    }
}
