//! The ChiselTorch data-type system: `UInt(w)`, `SInt(w)`, `Fixed(w, f)`
//! and `Float(e, m)` of arbitrary widths (Section IV-B of the paper:
//! "data types are not limited to conventional byte or word alignment").
//!
//! [`DType`] carries the interpretation; [`Value`] pairs a [`Word`] with
//! its type; the typed operations on [`Circuit`] dispatch to the integer,
//! fixed-point or floating-point generators. The plaintext codec
//! ([`DType::encode_f64`] / [`DType::decode_f64`]) is what the client uses
//! to quantize tensors before encryption and to interpret decrypted
//! results — the "parameterizable data type selection" knob that trades
//! accuracy for gate count.

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::error::HdlError;
use crate::float::FloatFormat;
use crate::word::Word;
use std::fmt;

/// A ChiselTorch data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned integer of the given width.
    UInt(usize),
    /// Two's-complement signed integer, e.g. the paper's `SInt(7)`.
    SInt(usize),
    /// Signed fixed point: `width` total bits of which `frac` are
    /// fractional (value = raw / 2^frac).
    Fixed {
        /// Total width in bits.
        width: usize,
        /// Fractional bits.
        frac: usize,
    },
    /// Floating point with `e` exponent and `m` mantissa bits, e.g. the
    /// paper's `Float(8, 8)` bfloat16.
    Float {
        /// Exponent bits.
        exp: usize,
        /// Mantissa bits.
        man: usize,
    },
}

impl DType {
    /// Storage width in bits.
    pub fn width(&self) -> usize {
        match *self {
            DType::UInt(w) | DType::SInt(w) => w,
            DType::Fixed { width, .. } => width,
            DType::Float { exp, man } => 1 + exp + man,
        }
    }

    /// Whether values of this type carry a sign.
    pub fn is_signed(&self) -> bool {
        !matches!(self, DType::UInt(_))
    }

    /// The float format, when this is a float type.
    pub fn float_format(&self) -> Option<FloatFormat> {
        match *self {
            DType::Float { exp, man } => Some(FloatFormat::new(exp, man)),
            _ => None,
        }
    }

    /// Quantizes `x` to this type's bit pattern (LSB-first), clamping to
    /// the representable range.
    pub fn encode_f64(&self, x: f64) -> Vec<bool> {
        match *self {
            DType::UInt(w) => {
                let max = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                let v = x.round().clamp(0.0, max as f64) as u64;
                (0..w).map(|i| (v >> i.min(63)) & 1 == 1).collect()
            }
            DType::SInt(w) => {
                let max = (1i64 << (w - 1)) - 1;
                let min = -(1i64 << (w - 1));
                let v = x.round().clamp(min as f64, max as f64) as i64;
                (0..w).map(|i| (v >> i.min(63)) & 1 == 1).collect()
            }
            DType::Fixed { width, frac } => {
                let scaled = x * (frac as f64).exp2();
                let max = (1i64 << (width - 1)) - 1;
                let min = -(1i64 << (width - 1));
                let v = scaled.round().clamp(min as f64, max as f64) as i64;
                (0..width).map(|i| (v >> i.min(63)) & 1 == 1).collect()
            }
            DType::Float { exp, man } => FloatFormat::new(exp, man).encode_f64(x),
        }
    }

    /// Decodes a bit pattern of this type back to `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the type width.
    pub fn decode_f64(&self, bits: &[bool]) -> f64 {
        assert_eq!(bits.len(), self.width(), "dtype decode width mismatch");
        let raw: u64 =
            bits.iter().enumerate().fold(
                0,
                |acc, (i, &b)| {
                    if i < 64 {
                        acc | (u64::from(b) << i)
                    } else {
                        acc
                    }
                },
            );
        match *self {
            DType::UInt(_) => raw as f64,
            DType::SInt(w) => sign_extend(raw, w) as f64,
            DType::Fixed { width, frac } => sign_extend(raw, width) as f64 / (frac as f64).exp2(),
            DType::Float { exp, man } => FloatFormat::new(exp, man).decode_f64(bits),
        }
    }

    /// The quantization step near zero (used in accuracy analyses).
    pub fn resolution(&self) -> f64 {
        match *self {
            DType::UInt(_) | DType::SInt(_) => 1.0,
            DType::Fixed { frac, .. } => (-(frac as f64)).exp2(),
            DType::Float { man, .. } => (-(man as f64)).exp2(),
        }
    }
}

fn sign_extend(raw: u64, w: usize) -> i64 {
    if w == 0 || w >= 64 {
        return raw as i64;
    }
    let sign = (raw >> (w - 1)) & 1;
    if sign == 1 {
        (raw | !((1u64 << w) - 1)) as i64
    } else {
        raw as i64
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DType::UInt(w) => write!(f, "UInt({w})"),
            DType::SInt(w) => write!(f, "SInt({w})"),
            DType::Fixed { width, frac } => write!(f, "Fixed({width}, {frac})"),
            DType::Float { exp, man } => write!(f, "Float({exp}, {man})"),
        }
    }
}

/// A typed signal bundle: a [`Word`] plus its [`DType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The raw bits.
    pub word: Word,
    /// Their interpretation.
    pub dtype: DType,
}

impl Value {
    /// Wraps a word with its type.
    ///
    /// # Panics
    ///
    /// Panics if the word width does not match the type width.
    pub fn new(word: Word, dtype: DType) -> Self {
        assert_eq!(word.width(), dtype.width(), "value width mismatch");
        Value { word, dtype }
    }

    /// A compile-time constant of the given type.
    pub fn constant(c: &mut Circuit, x: f64, dtype: DType) -> Self {
        let _ = c;
        let bits = dtype.encode_f64(x).into_iter().map(Bit::Const).collect();
        Value { word: Word::from_bits(bits), dtype }
    }
}

macro_rules! check_same_dtype {
    ($a:expr, $b:expr, $op:literal) => {
        if $a.dtype != $b.dtype {
            return Err(HdlError::DTypeMismatch { left: $a.dtype, right: $b.dtype, op: $op });
        }
    };
}

impl Circuit {
    /// Typed addition (wrapping for integers/fixed, saturating-by-format
    /// for floats).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_add(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "add");
        let word = match a.dtype {
            DType::UInt(_) | DType::SInt(_) | DType::Fixed { .. } => self.add(&a.word, &b.word),
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.fadd(fmt, &a.word, &b.word)
            }
        };
        Ok(Value::new(word, a.dtype))
    }

    /// Typed subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_sub(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "sub");
        let word = match a.dtype {
            DType::UInt(_) | DType::SInt(_) | DType::Fixed { .. } => self.sub(&a.word, &b.word),
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.fsub(fmt, &a.word, &b.word)
            }
        };
        Ok(Value::new(word, a.dtype))
    }

    /// Typed multiplication. Integer and fixed-point products are
    /// truncated back to the operand type (fixed point re-aligns the
    /// binary point first), floats follow the format's truncation.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_mul(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "mul");
        let word = match a.dtype {
            DType::UInt(w) => self.mul_unsigned(&a.word, &b.word).slice(0, w),
            DType::SInt(w) => self.mul_signed(&a.word, &b.word).slice(0, w),
            DType::Fixed { width, frac } => {
                let wide = self.mul_signed(&a.word, &b.word);
                // Product has 2*frac fractional bits; shift back by frac.
                wide.asr_const(frac).slice(0, width)
            }
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.fmul(fmt, &a.word, &b.word)
            }
        };
        Ok(Value::new(word, a.dtype))
    }

    /// Typed division (truncating).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_div(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "div");
        let word = match a.dtype {
            DType::UInt(_) => self.div_unsigned(&a.word, &b.word).0,
            DType::SInt(_) => self.div_signed(&a.word, &b.word).0,
            DType::Fixed { frac, .. } => self.div_fixed_signed(&a.word, &b.word, frac),
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.fdiv(fmt, &a.word, &b.word)
            }
        };
        Ok(Value::new(word, a.dtype))
    }

    /// Typed negation.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::Unsupported`] for unsigned types.
    pub fn v_neg(&mut self, a: &Value) -> Result<Value, HdlError> {
        let word = match a.dtype {
            DType::UInt(_) => {
                return Err(HdlError::Unsupported { dtype: a.dtype, op: "neg" });
            }
            DType::SInt(_) | DType::Fixed { .. } => self.neg(&a.word),
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.fneg(fmt, &a.word)
            }
        };
        Ok(Value::new(word, a.dtype))
    }

    /// `ReLU(a) = max(a, 0)` — two gates per bit for every type.
    pub fn v_relu(&mut self, a: &Value) -> Value {
        let word = match a.dtype {
            DType::UInt(_) => a.word.clone(),
            DType::SInt(_) | DType::Fixed { .. } => {
                let sign = a.word.msb();
                let keep = self.not(sign);
                a.word.bits().iter().map(|&b| self.and(b, keep)).collect()
            }
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.frelu(fmt, &a.word)
            }
        };
        Value::new(word, a.dtype)
    }

    /// Typed `a < b`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_lt(&mut self, a: &Value, b: &Value) -> Result<Bit, HdlError> {
        check_same_dtype!(a, b, "lt");
        Ok(match a.dtype {
            DType::UInt(_) => self.lt_unsigned(&a.word, &b.word)?,
            DType::SInt(_) | DType::Fixed { .. } => self.lt_signed(&a.word, &b.word)?,
            DType::Float { .. } => {
                let fmt = a.dtype.float_format().expect("float");
                self.flt(fmt, &a.word, &b.word)
            }
        })
    }

    /// Typed equality.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_eq(&mut self, a: &Value, b: &Value) -> Result<Bit, HdlError> {
        check_same_dtype!(a, b, "eq");
        // Bit equality; floats additionally identify +0 with any zero
        // pattern, but the builders only ever produce canonical zeros.
        self.eq(&a.word, &b.word)
    }

    /// Typed maximum.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_max(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "max");
        let lt = self.v_lt(a, b)?;
        let word = self.mux_word(lt, &b.word, &a.word)?;
        Ok(Value::new(word, a.dtype))
    }

    /// Typed minimum.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_min(&mut self, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "min");
        let lt = self.v_lt(a, b)?;
        let word = self.mux_word(lt, &a.word, &b.word)?;
        Ok(Value::new(word, a.dtype))
    }

    /// Typed mux: `s ? a : b`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DTypeMismatch`] if types differ.
    pub fn v_mux(&mut self, s: Bit, a: &Value, b: &Value) -> Result<Value, HdlError> {
        check_same_dtype!(a, b, "mux");
        let word = self.mux_word(s, &a.word, &b.word)?;
        Ok(Value::new(word, a.dtype))
    }

    /// `(max, argmax)` over typed items; ties resolve to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::ZeroWidth`] on empty input and
    /// [`HdlError::DTypeMismatch`] on mixed types.
    pub fn v_argmax(&mut self, items: &[Value]) -> Result<(Value, Word), HdlError> {
        let Some(first) = items.first() else {
            return Err(HdlError::ZeroWidth);
        };
        for it in items {
            check_same_dtype!(first, it, "argmax");
        }
        match first.dtype {
            DType::Float { .. } => {
                let fmt = first.dtype.float_format().expect("float");
                let words: Vec<Word> = items.iter().map(|v| v.word.clone()).collect();
                let (best, idx) = self.argmax_float(fmt, &words)?;
                Ok((Value::new(best, first.dtype), idx))
            }
            _ => {
                let words: Vec<Word> = items.iter().map(|v| v.word.clone()).collect();
                let (best, idx) = self.argmax_int(&words, first.dtype.is_signed())?;
                Ok((Value::new(best, first.dtype), idx))
            }
        }
    }

    /// `(min, argmin)` over typed items.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::v_argmax`].
    pub fn v_argmin(&mut self, items: &[Value]) -> Result<(Value, Word), HdlError> {
        let Some(first) = items.first() else {
            return Err(HdlError::ZeroWidth);
        };
        for it in items {
            check_same_dtype!(first, it, "argmin");
        }
        match first.dtype {
            DType::Float { .. } => {
                // min(x) = -max(-x); negation is free for floats.
                let fmt = first.dtype.float_format().expect("float");
                let negs: Vec<Word> = items.iter().map(|v| self.fneg(fmt, &v.word)).collect();
                let (best, idx) = self.argmax_float(fmt, &negs)?;
                let best = self.fneg(fmt, &best);
                Ok((Value::new(best, first.dtype), idx))
            }
            _ => {
                let words: Vec<Word> = items.iter().map(|v| v.word.clone()).collect();
                let (best, idx) = self.argmin_int(&words, first.dtype.is_signed())?;
                Ok((Value::new(best, first.dtype), idx))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::Netlist;

    fn binval(dtype: DType, f: impl FnOnce(&mut Circuit, &Value, &Value) -> Value) -> Netlist {
        let mut c = Circuit::new();
        let a = Value::new(c.input_word("a", dtype.width()), dtype);
        let b = Value::new(c.input_word("b", dtype.width()), dtype);
        let out = f(&mut c, &a, &b);
        c.output_word("out", &out.word);
        c.finish().unwrap()
    }

    fn run2(nl: &Netlist, dtype: DType, x: f64, y: f64) -> f64 {
        let mut input = dtype.encode_f64(x);
        input.extend(dtype.encode_f64(y));
        dtype.decode_f64(&nl.eval_plain(&input))
    }

    #[test]
    fn codec_all_types() {
        for dtype in [
            DType::UInt(7),
            DType::SInt(9),
            DType::Fixed { width: 12, frac: 5 },
            DType::Float { exp: 6, man: 7 },
        ] {
            for x in [-3.0, 0.0, 1.0, 2.5, 17.0, -0.5] {
                let bits = dtype.encode_f64(x);
                assert_eq!(bits.len(), dtype.width());
                let back = dtype.decode_f64(&bits);
                let expect_err = dtype.resolution().max(x.abs() * dtype.resolution());
                if dtype == DType::UInt(7) && x < 0.0 {
                    assert_eq!(back, 0.0, "uint clamps at zero");
                } else {
                    assert!((back - x).abs() <= expect_err + 1e-12, "{dtype}: {x} -> {back}");
                }
            }
        }
    }

    #[test]
    fn codec_clamps_extremes() {
        assert_eq!(DType::SInt(4).decode_f64(&DType::SInt(4).encode_f64(100.0)), 7.0);
        assert_eq!(DType::SInt(4).decode_f64(&DType::SInt(4).encode_f64(-100.0)), -8.0);
        assert_eq!(DType::UInt(4).decode_f64(&DType::UInt(4).encode_f64(99.0)), 15.0);
        let fx = DType::Fixed { width: 6, frac: 2 };
        assert_eq!(fx.decode_f64(&fx.encode_f64(100.0)), 7.75);
    }

    #[test]
    fn fixed_point_mul_aligns_binary_point() {
        let dtype = DType::Fixed { width: 10, frac: 4 };
        let nl = binval(dtype, |c, a, b| c.v_mul(a, b).unwrap());
        for (x, y) in [(1.5, 2.0), (0.25, 0.5), (-3.0, 1.25), (2.0, -2.0)] {
            let got = run2(&nl, dtype, x, y);
            assert!((got - x * y).abs() <= 2.0 * dtype.resolution(), "{x}*{y} -> {got}");
        }
    }

    #[test]
    fn sint_arithmetic() {
        let dtype = DType::SInt(8);
        let nl = binval(dtype, |c, a, b| {
            let s = c.v_add(a, b).unwrap();
            let d = c.v_sub(&s, b).unwrap(); // back to a
            c.v_mul(&d, b).unwrap()
        });
        for (x, y) in [(3.0, 4.0), (-5.0, 6.0), (10.0, -11.0)] {
            assert_eq!(run2(&nl, dtype, x, y), x * y, "{x} {y}");
        }
    }

    #[test]
    fn div_all_int_types() {
        for dtype in [DType::UInt(8), DType::SInt(8), DType::Fixed { width: 10, frac: 3 }] {
            let nl = binval(dtype, |c, a, b| c.v_div(a, b).unwrap());
            for (x, y) in [(12.0, 4.0), (7.0, 2.0), (15.0, 5.0)] {
                let got = run2(&nl, dtype, x, y);
                assert!(
                    (got - x / y).abs() <= dtype.resolution() + 1e-12,
                    "{dtype}: {x}/{y} -> {got}"
                );
            }
        }
    }

    #[test]
    fn relu_all_types() {
        for dtype in
            [DType::SInt(6), DType::Fixed { width: 8, frac: 3 }, DType::Float { exp: 5, man: 6 }]
        {
            let mut c = Circuit::new();
            let a = Value::new(c.input_word("a", dtype.width()), dtype);
            let out = c.v_relu(&a);
            c.output_word("out", &out.word);
            let nl = c.finish().unwrap();
            for x in [-5.0, -0.5, 0.0, 0.5, 5.0] {
                let xq = dtype.decode_f64(&dtype.encode_f64(x));
                let got = dtype.decode_f64(&nl.eval_plain(&dtype.encode_f64(x)));
                assert_eq!(got, xq.max(0.0), "{dtype} relu({x})");
            }
        }
    }

    #[test]
    fn neg_unsupported_for_unsigned() {
        let mut c = Circuit::new();
        let a = Value::new(c.input_word("a", 4), DType::UInt(4));
        assert!(matches!(c.v_neg(&a), Err(HdlError::Unsupported { .. })));
    }

    #[test]
    fn dtype_mismatch_is_rejected() {
        let mut c = Circuit::new();
        let a = Value::new(c.input_word("a", 4), DType::UInt(4));
        let b = Value::new(c.input_word("b", 4), DType::SInt(4));
        assert!(matches!(c.v_add(&a, &b), Err(HdlError::DTypeMismatch { .. })));
    }

    #[test]
    fn argmax_typed() {
        let dtype = DType::Fixed { width: 8, frac: 2 };
        let mut c = Circuit::new();
        let items: Vec<Value> = (0..3)
            .map(|i| Value::new(c.input_word(format!("x{i}"), dtype.width()), dtype))
            .collect();
        let (_, idx) = c.v_argmax(&items).unwrap();
        c.output_word("idx", &idx);
        let nl = c.finish().unwrap();
        let mut input = Vec::new();
        for v in [1.5, -2.0, 3.25] {
            input.extend(dtype.encode_f64(v));
        }
        let out = nl.eval_plain(&input);
        let got = out.iter().enumerate().fold(0u64, |a, (i, &b)| a | (u64::from(b) << i));
        assert_eq!(got, 2);
    }

    #[test]
    fn argmin_typed_float() {
        let dtype = DType::Float { exp: 6, man: 6 };
        let mut c = Circuit::new();
        let items: Vec<Value> = (0..3)
            .map(|i| Value::new(c.input_word(format!("x{i}"), dtype.width()), dtype))
            .collect();
        let (best, idx) = c.v_argmin(&items).unwrap();
        c.output_word("best", &best.word);
        c.output_word("idx", &idx);
        let nl = c.finish().unwrap();
        let mut input = Vec::new();
        for v in [1.5, -2.0, 3.25] {
            input.extend(dtype.encode_f64(v));
        }
        let out = nl.eval_plain(&input);
        let w = dtype.width();
        assert_eq!(dtype.decode_f64(&out[..w]), -2.0);
        let got = out[w..].iter().enumerate().fold(0u64, |a, (i, &b)| a | (u64::from(b) << i));
        assert_eq!(got, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Float { exp: 8, man: 8 }.to_string(), "Float(8, 8)");
        assert_eq!(DType::SInt(7).to_string(), "SInt(7)");
        assert_eq!(DType::Fixed { width: 8, frac: 4 }.to_string(), "Fixed(8, 4)");
    }
}
