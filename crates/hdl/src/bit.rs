use pytfhe_netlist::NodeId;

/// A single logical signal: either a compile-time constant or a netlist
/// node.
///
/// Keeping constants symbolic until they reach a gate is what lets the
/// builder fold them away — when a neural network's plaintext weights are
/// baked into a circuit, most partial products multiply by constant bits
/// and vanish entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// A compile-time constant.
    Const(bool),
    /// The output of a netlist node.
    Node(NodeId),
}

impl Bit {
    /// The constant `false`.
    pub const ZERO: Bit = Bit::Const(false);
    /// The constant `true`.
    pub const ONE: Bit = Bit::Const(true);

    /// Returns the constant value, if this bit is a constant.
    pub fn as_const(self) -> Option<bool> {
        match self {
            Bit::Const(b) => Some(b),
            Bit::Node(_) => None,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        Bit::Const(b)
    }
}
