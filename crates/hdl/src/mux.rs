//! Multiplexer trees: selecting among many words by an index signal, and
//! index-of-maximum (`argmax`) reduction — the circuit behind the
//! data-oblivious control flow the paper requires ("the control flow ...
//! should not depend on the encrypted variables", Section IV-B).

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::error::HdlError;
use crate::word::Word;

impl Circuit {
    /// Selects `options[index]` with a balanced binary mux tree. Widths
    /// must agree; an out-of-range index selects the last option (indices
    /// are clamped structurally by the tree).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::ZeroWidth`] if `options` is empty and
    /// [`HdlError::WidthMismatch`] if option widths differ.
    pub fn select(&mut self, options: &[Word], index: &Word) -> Result<Word, HdlError> {
        if options.is_empty() {
            return Err(HdlError::ZeroWidth);
        }
        let w = options[0].width();
        for o in options {
            if o.width() != w {
                return Err(HdlError::WidthMismatch { left: w, right: o.width(), op: "select" });
            }
        }
        let mut layer: Vec<Word> = options.to_vec();
        for &sel in index.bits() {
            if layer.len() == 1 {
                break;
            }
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut i = 0;
            while i < layer.len() {
                if i + 1 < layer.len() {
                    next.push(self.mux_word(sel, &layer[i + 1], &layer[i])?);
                } else {
                    next.push(layer[i].clone());
                }
                i += 2;
            }
            layer = next;
        }
        Ok(layer.swap_remove(0))
    }

    /// Computes `(max value, argmax index)` over `items`, comparing as
    /// signed or unsigned integers. Ties resolve to the *lowest* index,
    /// matching `torch.argmax` semantics on first occurrence.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::ZeroWidth`] if `items` is empty and
    /// [`HdlError::WidthMismatch`] if widths differ.
    pub fn argmax_int(&mut self, items: &[Word], signed: bool) -> Result<(Word, Word), HdlError> {
        self.argopt_int(items, signed, true)
    }

    /// Computes `(min value, argmin index)`; see [`Circuit::argmax_int`].
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::argmax_int`].
    pub fn argmin_int(&mut self, items: &[Word], signed: bool) -> Result<(Word, Word), HdlError> {
        self.argopt_int(items, signed, false)
    }

    fn argopt_int(
        &mut self,
        items: &[Word],
        signed: bool,
        want_max: bool,
    ) -> Result<(Word, Word), HdlError> {
        if items.is_empty() {
            return Err(HdlError::ZeroWidth);
        }
        let index_bits = (usize::BITS - (items.len() - 1).max(1).leading_zeros()) as usize;
        let mut best = items[0].clone();
        let mut best_idx = Word::zeros(index_bits.max(1));
        for (i, item) in items.iter().enumerate().skip(1) {
            // Strict improvement keeps ties at the earlier index.
            let improves = if want_max {
                if signed {
                    self.lt_signed(&best, item)?
                } else {
                    self.lt_unsigned(&best, item)?
                }
            } else if signed {
                self.lt_signed(item, &best)?
            } else {
                self.lt_unsigned(item, &best)?
            };
            best = self.mux_word(improves, item, &best)?;
            let idx = Word::constant_u64(i as u64, best_idx.width());
            best_idx = self.mux_word(improves, &idx, &best_idx)?;
        }
        Ok((best, best_idx))
    }

    /// One-hot select: ORs together `value_i AND sel_i`. The caller
    /// guarantees at most one `sel` bit is set.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if lengths or widths disagree.
    pub fn onehot_select(&mut self, options: &[Word], sel: &[Bit]) -> Result<Word, HdlError> {
        if options.len() != sel.len() || options.is_empty() {
            return Err(HdlError::WidthMismatch {
                left: options.len(),
                right: sel.len(),
                op: "onehot_select",
            });
        }
        let w = options[0].width();
        let mut acc = Word::zeros(w);
        for (opt, &s) in options.iter().zip(sel) {
            if opt.width() != w {
                return Err(HdlError::WidthMismatch {
                    left: w,
                    right: opt.width(),
                    op: "onehot_select",
                });
            }
            let masked: Word = opt.bits().iter().map(|&b| self.and(b, s)).collect();
            acc = self.bitwise(pytfhe_netlist::GateKind::Or, &acc, &masked)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn select_among_constants() {
        let mut c = Circuit::new();
        let idx = c.input_word("i", 2);
        let options: Vec<Word> = (0..4).map(|v| Word::constant_u64(10 + v, 8)).collect();
        let out = c.select(&options, &idx).unwrap();
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for i in 0u64..4 {
            assert_eq!(from_bits(&nl.eval_plain(&to_bits(i, 2))), 10 + i);
        }
    }

    #[test]
    fn select_non_power_of_two() {
        let mut c = Circuit::new();
        let idx = c.input_word("i", 2);
        let options: Vec<Word> = (0..3).map(|v| Word::constant_u64(v * 7, 8)).collect();
        let out = c.select(&options, &idx).unwrap();
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for i in 0u64..3 {
            assert_eq!(from_bits(&nl.eval_plain(&to_bits(i, 2))), i * 7, "i={i}");
        }
    }

    #[test]
    fn select_rejects_empty_and_mismatched() {
        let mut c = Circuit::new();
        let idx = c.input_word("i", 1);
        assert!(matches!(c.select(&[], &idx), Err(HdlError::ZeroWidth)));
        let opts = vec![Word::zeros(4), Word::zeros(5)];
        assert!(c.select(&opts, &idx).is_err());
    }

    #[test]
    fn argmax_signed_with_ties() {
        let mut c = Circuit::new();
        let items: Vec<Word> = (0..4).map(|i| c.input_word(format!("x{i}"), 4)).collect();
        let (best, idx) = c.argmax_int(&items, true).unwrap();
        let out = best.concat(&idx);
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        let cases: [([i64; 4], i64, u64); 4] = [
            ([1, 5, -3, 5], 5, 1), // tie resolves low
            ([-8, -7, -6, -5], -5, 3),
            ([7, 0, 0, 0], 7, 0),
            ([0, 0, 0, 0], 0, 0),
        ];
        for (vals, want_max, want_idx) in cases {
            let mut input = Vec::new();
            for v in vals {
                input.extend(to_bits((v & 15) as u64, 4));
            }
            let out = nl.eval_plain(&input);
            assert_eq!(from_bits(&out[..4]), (want_max & 15) as u64, "{vals:?}");
            assert_eq!(from_bits(&out[4..]), want_idx, "{vals:?}");
        }
    }

    #[test]
    fn argmin_unsigned() {
        let mut c = Circuit::new();
        let items: Vec<Word> = (0..3).map(|i| c.input_word(format!("x{i}"), 4)).collect();
        let (best, idx) = c.argmin_int(&items, false).unwrap();
        c.output_word("out", &best.concat(&idx));
        let nl = c.finish().unwrap();
        let mut input = Vec::new();
        for v in [9u64, 2, 4] {
            input.extend(to_bits(v, 4));
        }
        let out = nl.eval_plain(&input);
        assert_eq!(from_bits(&out[..4]), 2);
        assert_eq!(from_bits(&out[4..]), 1);
    }

    #[test]
    fn onehot_select_works() {
        let mut c = Circuit::new();
        let sel_word = c.input_word("s", 3);
        let options: Vec<Word> = (0..3).map(|v| Word::constant_u64(v + 1, 4)).collect();
        let sel: Vec<Bit> = sel_word.bits().to_vec();
        let out = c.onehot_select(&options, &sel).unwrap();
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for i in 0..3 {
            let got = from_bits(&nl.eval_plain(&to_bits(1 << i, 3)));
            assert_eq!(got, i + 1);
        }
        assert_eq!(from_bits(&nl.eval_plain(&to_bits(0, 3))), 0);
    }
}
