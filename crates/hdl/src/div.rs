//! Restoring division — the `/` tensor primitive of ChiselTorch (Table I)
//! and the engine of VIP-Bench's iterative approximation workloads
//! (Newton–Raphson solver, Euler's-number approximation).

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::word::Word;

impl Circuit {
    /// Unsigned restoring division: returns `(quotient, remainder)`, both
    /// of `a.width()` bits. Division by zero yields an all-ones quotient
    /// and `remainder = a` (the conventional restoring-divider result;
    /// data-oblivious circuits cannot trap).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn div_unsigned(&mut self, a: &Word, b: &Word) -> (Word, Word) {
        assert_eq!(a.width(), b.width(), "div: width mismatch");
        let w = a.width();
        if w == 0 {
            return (Word::zeros(0), Word::zeros(0));
        }
        // Remainder register one bit wider than the divisor so trial
        // subtractions never overflow.
        let mut rem = Word::zeros(w + 1);
        let bx = b.zext(w + 1);
        let mut q = vec![Bit::ZERO; w];
        for i in (0..w).rev() {
            // Shift in the next dividend bit.
            let mut bits = vec![a.bit(i)];
            bits.extend_from_slice(&rem.bits()[..w]);
            rem = Word::from_bits(bits);
            // Trial subtract; keep if non-negative.
            let (diff, no_borrow) = self.sub_with_borrow(&rem, &bx);
            q[i] = no_borrow;
            rem = self.mux_word(no_borrow, &diff, &rem).expect("same widths");
        }
        (Word::from_bits(q), rem.slice(0, w))
    }

    /// Signed division with C semantics (truncation toward zero):
    /// returns `(quotient, remainder)` with `sign(remainder) = sign(a)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn div_signed(&mut self, a: &Word, b: &Word) -> (Word, Word) {
        assert_eq!(a.width(), b.width(), "div: width mismatch");
        let abs_a = self.abs(a);
        let abs_b = self.abs(b);
        let (q, r) = self.div_unsigned(&abs_a, &abs_b);
        let sign_q = self.xor(a.msb(), b.msb());
        let neg_q = self.neg(&q);
        let neg_r = self.neg(&r);
        let quotient = self.mux_word(sign_q, &neg_q, &q).expect("same widths");
        let remainder = self.mux_word(a.msb(), &neg_r, &r).expect("same widths");
        (quotient, remainder)
    }

    /// Fixed-point division: `(a << frac_bits) / b`, unsigned. Both inputs
    /// are `Q(w - frac_bits).frac_bits` values; the result has the same
    /// format and width.
    pub fn div_fixed_unsigned(&mut self, a: &Word, b: &Word, frac_bits: usize) -> Word {
        let w = a.width();
        let wide = w + frac_bits;
        let a_shifted = a.zext(wide).shl_const(frac_bits);
        let (q, _) = self.div_unsigned(&a_shifted, &b.zext(wide));
        q.slice(0, w)
    }

    /// Fixed-point signed division (truncating), same format in and out.
    pub fn div_fixed_signed(&mut self, a: &Word, b: &Word, frac_bits: usize) -> Word {
        let abs_a = self.abs(a);
        let abs_b = self.abs(b);
        let q = self.div_fixed_unsigned(&abs_a, &abs_b, frac_bits);
        let sign = self.xor(a.msb(), b.msb());
        let neg = self.neg(&q);
        self.mux_word(sign, &neg, &q).expect("same widths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::Netlist;

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn divider(w: usize, signed: bool) -> Netlist {
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let (q, r) = if signed { c.div_signed(&a, &b) } else { c.div_unsigned(&a, &b) };
        c.output_word("out", &q.concat(&r));
        c.finish().unwrap()
    }

    #[test]
    fn unsigned_division_exhaustive_5bit() {
        let nl = divider(5, false);
        for x in 0u64..32 {
            for y in 1u64..32 {
                let mut input = to_bits(x, 5);
                input.extend(to_bits(y, 5));
                let out = nl.eval_plain(&input);
                assert_eq!(from_bits(&out[..5]), x / y, "{x}/{y}");
                assert_eq!(from_bits(&out[5..]), x % y, "{x}%{y}");
            }
        }
    }

    #[test]
    fn unsigned_division_by_zero_is_all_ones() {
        let nl = divider(4, false);
        for x in 0u64..16 {
            let mut input = to_bits(x, 4);
            input.extend(to_bits(0, 4));
            let out = nl.eval_plain(&input);
            assert_eq!(from_bits(&out[..4]), 15, "{x}/0 quotient");
            assert_eq!(from_bits(&out[4..]), x, "{x}/0 remainder");
        }
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        let nl = divider(5, true);
        for x in -16i64..16 {
            for y in -16i64..16 {
                if y == 0 || (x == -16 && y == -1) {
                    continue; // div-by-zero and overflow are unconstrained
                }
                let mut input = to_bits((x & 31) as u64, 5);
                input.extend(to_bits((y & 31) as u64, 5));
                let out = nl.eval_plain(&input);
                let want_q = x / y; // Rust / truncates toward zero, like C
                let want_r = x % y;
                assert_eq!(from_bits(&out[..5]), (want_q & 31) as u64, "{x}/{y}");
                assert_eq!(from_bits(&out[5..]), (want_r & 31) as u64, "{x}%{y}");
            }
        }
    }

    #[test]
    fn fixed_point_division() {
        // Q4.4: value = raw / 16.
        let w = 8;
        let frac = 4;
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let q = c.div_fixed_signed(&a, &b, frac);
        c.output_word("q", &q);
        let nl = c.finish().unwrap();
        let cases = [(3.0, 2.0), (1.0, 3.0), (-2.5, 0.5), (5.0, -2.0), (0.0625, 0.0625)];
        for (x, y) in cases {
            let xr = (x * 16.0) as i64;
            let yr = (y * 16.0) as i64;
            let mut input = to_bits((xr & 255) as u64, w);
            input.extend(to_bits((yr & 255) as u64, w));
            let out = nl.eval_plain(&input);
            let raw = from_bits(&out) as i64;
            let raw = if raw >= 128 { raw - 256 } else { raw };
            let got = raw as f64 / 16.0;
            let want = x / y;
            assert!((got - want).abs() <= 1.0 / 16.0 + 1e-9, "{x}/{y}: got {got} want {want}");
        }
    }
}
