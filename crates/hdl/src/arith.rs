//! Integer arithmetic generators: ripple-carry adders, subtractors,
//! negation, schoolbook multipliers and comparators.
//!
//! These are the workhorses behind every ChiselTorch tensor op. Gate-count
//! economy matters more than logic depth for TFHE (every gate is a
//! bootstrap, Figure 7), so the generators favour the minimal-gate
//! ripple-carry/Baugh-Wooley style structures over low-depth carry-save
//! trees; the wavefront backends still recover ample parallelism across
//! *independent* arithmetic units (e.g. the thousands of multipliers of a
//! convolution layer).

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::error::HdlError;
use crate::word::Word;

impl Circuit {
    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Bit, b: Bit, cin: Bit) -> (Bit, Bit) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let ab = self.and(a, b);
        let c_axb = self.and(axb, cin);
        let carry = self.or(ab, c_axb);
        (sum, carry)
    }

    /// Ripple-carry addition with explicit carry-in; returns the sum
    /// (same width) and the carry-out.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (use the checked word ops for fallible
    /// paths; generators treat width mismatches as construction bugs).
    pub fn add_with_carry(&mut self, a: &Word, b: &Word, cin: Bit) -> (Word, Bit) {
        assert_eq!(a.width(), b.width(), "add: width mismatch");
        let mut carry = cin;
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let (s, c) = self.full_adder(x, y, carry);
            bits.push(s);
            carry = c;
        }
        (Word::from_bits(bits), carry)
    }

    /// Wrapping addition (two's complement), width preserved.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.add_with_carry(a, b, Bit::ZERO).0
    }

    /// Widening addition: result has one extra bit, never overflows
    /// (operands are treated as unsigned).
    pub fn add_wide_unsigned(&mut self, a: &Word, b: &Word) -> Word {
        let w = a.width().max(b.width());
        let (sum, carry) = self.add_with_carry(&a.zext(w), &b.zext(w), Bit::ZERO);
        let mut bits = sum.bits().to_vec();
        bits.push(carry);
        Word::from_bits(bits)
    }

    /// Widening signed addition: operands sign-extended one bit, wrap-free.
    pub fn add_wide_signed(&mut self, a: &Word, b: &Word) -> Word {
        let w = a.width().max(b.width()) + 1;
        self.add(&a.sext(w), &b.sext(w))
    }

    /// Wrapping subtraction `a - b` (two's complement), width preserved.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        let nb = self.not_word(b);
        self.add_with_carry(a, &nb, Bit::ONE).0
    }

    /// Subtraction with borrow information: returns `(diff, no_borrow)`
    /// where `no_borrow` is the adder carry-out (1 when `a >= b`
    /// unsigned).
    pub fn sub_with_borrow(&mut self, a: &Word, b: &Word) -> (Word, Bit) {
        let nb = self.not_word(b);
        self.add_with_carry(a, &nb, Bit::ONE)
    }

    /// Two's-complement negation, width preserved.
    pub fn neg(&mut self, a: &Word) -> Word {
        let zero = Word::zeros(a.width());
        self.sub(&zero, a)
    }

    /// Increment by one, width preserved.
    pub fn inc(&mut self, a: &Word) -> Word {
        let zero = Word::zeros(a.width());
        self.add_with_carry(a, &zero, Bit::ONE).0
    }

    /// Absolute value of a signed word (width preserved; `i::MIN` wraps).
    pub fn abs(&mut self, a: &Word) -> Word {
        let neg = self.neg(a);
        self.mux_word(a.msb(), &neg, a).expect("same widths")
    }

    /// Unsigned schoolbook multiplication; the result is
    /// `a.width() + b.width()` bits and exact.
    pub fn mul_unsigned(&mut self, a: &Word, b: &Word) -> Word {
        let (wa, wb) = (a.width(), b.width());
        if wa == 0 || wb == 0 {
            return Word::zeros(wa + wb);
        }
        let mut acc = Word::zeros(wa + wb);
        for (i, &bi) in b.bits().iter().enumerate() {
            // Partial product a * b_i, shifted by i: only the wa bits
            // starting at position i can change, plus the running carry.
            let pp: Word = a.bits().iter().map(|&aj| self.and(aj, bi)).collect();
            let window = acc.slice(i, (i + wa + 1).min(wa + wb));
            let sum = self.add(&pp.zext(window.width()), &window);
            let mut bits = acc.bits().to_vec();
            for (k, &s) in sum.bits().iter().enumerate() {
                bits[i + k] = s;
            }
            acc = Word::from_bits(bits);
        }
        acc
    }

    /// Signed (two's complement) multiplication with exact
    /// `a.width() + b.width()`-bit result, using the Baugh–Wooley
    /// formulation: the sign rows' partial products are complemented and
    /// two correction ones are injected, so only `a.width() * b.width()`
    /// partial products are needed (the naive sign-extension scheme
    /// generates four times as many).
    pub fn mul_signed(&mut self, a: &Word, b: &Word) -> Word {
        let (wa, wb) = (a.width(), b.width());
        let w = wa + wb;
        if wa == 0 || wb == 0 {
            return Word::zeros(w);
        }
        if wa == 1 && wb == 1 {
            // Single-bit two's complement values are {0, -1}, so the
            // product is (+1) iff both bits are set: 0b01.
            let p = self.and(a.bit(0), b.bit(0));
            return Word::from_bits(vec![p, Bit::ZERO]);
        }
        // Rows of the Baugh-Wooley array: row j is the partial product of
        // b_j, with the sign-column entries complemented.
        let mut acc = Word::zeros(w);
        for j in 0..wb {
            let bj = b.bit(j);
            let row: Vec<Bit> = (0..wa)
                .map(|i| {
                    let sign_cell = (i == wa - 1) ^ (j == wb - 1);
                    let p = self.and(a.bit(i), bj);
                    if sign_cell {
                        self.not(p)
                    } else {
                        p
                    }
                })
                .collect();
            let shifted = {
                // Place the row at offset j.
                let mut bits = vec![Bit::ZERO; j];
                bits.extend_from_slice(&row);
                Word::from_bits(bits).zext(w)
            };
            acc = self.add(&acc, &shifted);
        }
        // Correction constant: +2^(wa-1) + 2^(wb-1) + 2^(w-1) (mod 2^w),
        // from rewriting the negative sign-row terms as complements.
        let mut correction = Word::zeros(w);
        for pos in [wa - 1, wb - 1, w - 1] {
            let mut bump = Word::zeros(w);
            let mut bits = bump.bits().to_vec();
            bits[pos] = Bit::ONE;
            bump = Word::from_bits(bits);
            correction = self.add(&correction, &bump);
        }
        self.add(&acc, &correction)
    }

    /// Signed multiplication via sign extension to the full output width
    /// — the textbook scheme, kept as the oracle for
    /// [`Circuit::mul_signed`] and for the multiplier-architecture
    /// ablation study.
    pub fn mul_signed_ext(&mut self, a: &Word, b: &Word) -> Word {
        let w = a.width() + b.width();
        if w == 0 {
            return Word::zeros(0);
        }
        let ax = a.sext(w);
        let bx = b.sext(w);
        // Product of the extended operands, truncated to w bits, equals the
        // exact signed product.
        self.mul_unsigned(&ax, &bx).slice(0, w)
    }

    /// Equality comparison.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn eq(&mut self, a: &Word, b: &Word) -> Result<Bit, HdlError> {
        let diff = self.bitwise(pytfhe_netlist::GateKind::Xnor, a, b)?;
        Ok(self.and_reduce(&diff))
    }

    /// Inequality comparison.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn ne(&mut self, a: &Word, b: &Word) -> Result<Bit, HdlError> {
        let e = self.eq(a, b)?;
        Ok(self.not(e))
    }

    /// Unsigned `a < b`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn lt_unsigned(&mut self, a: &Word, b: &Word) -> Result<Bit, HdlError> {
        if a.width() != b.width() {
            return Err(HdlError::WidthMismatch { left: a.width(), right: b.width(), op: "lt" });
        }
        let (_, no_borrow) = self.sub_with_borrow(a, b);
        Ok(self.not(no_borrow))
    }

    /// Signed `a < b`: flip the sign bits and compare unsigned.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn lt_signed(&mut self, a: &Word, b: &Word) -> Result<Bit, HdlError> {
        if a.width() != b.width() {
            return Err(HdlError::WidthMismatch { left: a.width(), right: b.width(), op: "lt" });
        }
        if a.is_empty() {
            return Ok(Bit::ZERO);
        }
        let w = a.width();
        let mut af = a.bits().to_vec();
        let mut bf = b.bits().to_vec();
        af[w - 1] = self.not(af[w - 1]);
        bf[w - 1] = self.not(bf[w - 1]);
        self.lt_unsigned(&Word::from_bits(af), &Word::from_bits(bf))
    }

    /// `a <= b` (signed flag selects interpretation).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn le(&mut self, a: &Word, b: &Word, signed: bool) -> Result<Bit, HdlError> {
        let gt = if signed { self.lt_signed(b, a)? } else { self.lt_unsigned(b, a)? };
        Ok(self.not(gt))
    }

    /// Elementwise maximum of two integers.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn max_int(&mut self, a: &Word, b: &Word, signed: bool) -> Result<Word, HdlError> {
        let a_lt_b = if signed { self.lt_signed(a, b)? } else { self.lt_unsigned(a, b)? };
        self.mux_word(a_lt_b, b, a)
    }

    /// Elementwise minimum of two integers.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if widths differ.
    pub fn min_int(&mut self, a: &Word, b: &Word, signed: bool) -> Result<Word, HdlError> {
        let a_lt_b = if signed { self.lt_signed(a, b)? } else { self.lt_unsigned(a, b)? };
        self.mux_word(a_lt_b, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::Netlist;

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn binop_circuit(w: usize, f: impl FnOnce(&mut Circuit, &Word, &Word) -> Word) -> Netlist {
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let out = f(&mut c, &a, &b);
        c.output_word("out", &out);
        c.finish().unwrap()
    }

    fn eval2(nl: &Netlist, w: usize, x: u64, y: u64) -> u64 {
        let mut input = to_bits(x, w);
        input.extend(to_bits(y, w));
        from_bits(&nl.eval_plain(&input))
    }

    #[test]
    fn add_exhaustive_5bit() {
        let nl = binop_circuit(5, |c, a, b| c.add(a, b));
        for x in 0u64..32 {
            for y in 0u64..32 {
                assert_eq!(eval2(&nl, 5, x, y), (x + y) % 32, "{x}+{y}");
            }
        }
    }

    #[test]
    fn sub_exhaustive_5bit() {
        let nl = binop_circuit(5, |c, a, b| c.sub(a, b));
        for x in 0u64..32 {
            for y in 0u64..32 {
                assert_eq!(eval2(&nl, 5, x, y), (32 + x - y) % 32, "{x}-{y}");
            }
        }
    }

    #[test]
    fn add_wide_never_wraps() {
        let nl = binop_circuit(4, |c, a, b| c.add_wide_unsigned(a, b));
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(eval2(&nl, 4, x, y), x + y);
            }
        }
    }

    #[test]
    fn add_wide_signed_never_wraps() {
        let nl = binop_circuit(4, |c, a, b| c.add_wide_signed(a, b));
        for x in -8i64..8 {
            for y in -8i64..8 {
                let got = eval2(&nl, 4, (x & 15) as u64, (y & 15) as u64);
                assert_eq!(got, ((x + y) & 31) as u64, "{x}+{y}");
            }
        }
    }

    #[test]
    fn mul_unsigned_exhaustive_4bit() {
        let nl = binop_circuit(4, |c, a, b| c.mul_unsigned(a, b));
        for x in 0u64..16 {
            for y in 0u64..16 {
                assert_eq!(eval2(&nl, 4, x, y), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mul_signed_exhaustive_4bit() {
        let nl = binop_circuit(4, |c, a, b| c.mul_signed(a, b));
        for x in -8i64..8 {
            for y in -8i64..8 {
                let got = eval2(&nl, 4, (x & 15) as u64, (y & 15) as u64);
                assert_eq!(got, ((x * y) & 255) as u64, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mul_signed_ext_exhaustive_4bit() {
        let nl = binop_circuit(4, |c, a, b| c.mul_signed_ext(a, b));
        for x in -8i64..8 {
            for y in -8i64..8 {
                let got = eval2(&nl, 4, (x & 15) as u64, (y & 15) as u64);
                assert_eq!(got, ((x * y) & 255) as u64, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mul_signed_rectangular_widths() {
        // 3-bit x 5-bit signed product, exhaustive.
        let mut c = Circuit::new();
        let a = c.input_word("a", 3);
        let b = c.input_word("b", 5);
        let p = c.mul_signed(&a, &b);
        assert_eq!(p.width(), 8);
        c.output_word("p", &p);
        let nl = c.finish().unwrap();
        for x in -4i64..4 {
            for y in -16i64..16 {
                let mut input = to_bits((x & 7) as u64, 3);
                input.extend(to_bits((y & 31) as u64, 5));
                let got = from_bits(&nl.eval_plain(&input));
                assert_eq!(got, ((x * y) & 255) as u64, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mul_signed_one_bit_operands() {
        let mut c = Circuit::new();
        let a = c.input_word("a", 1);
        let b = c.input_word("b", 1);
        let p = c.mul_signed(&a, &b);
        c.output_word("p", &p);
        let nl = c.finish().unwrap();
        // 1-bit two's complement: 0 or -1; (-1)*(-1) = 1.
        assert_eq!(from_bits(&nl.eval_plain(&[false, false])), 0);
        assert_eq!(from_bits(&nl.eval_plain(&[true, false])), 0);
        assert_eq!(from_bits(&nl.eval_plain(&[true, true])), 1);
    }

    #[test]
    fn baugh_wooley_beats_sign_extension_on_gate_count() {
        let mut c1 = Circuit::new();
        let a = c1.input_word("a", 8);
        let b = c1.input_word("b", 8);
        let p = c1.mul_signed(&a, &b);
        c1.output_word("p", &p);
        let bw = c1.finish().unwrap().num_bootstrapped_gates();
        let mut c2 = Circuit::new();
        let a = c2.input_word("a", 8);
        let b = c2.input_word("b", 8);
        let p = c2.mul_signed_ext(&a, &b);
        c2.output_word("p", &p);
        let ext = c2.finish().unwrap().num_bootstrapped_gates();
        assert!(
            (bw as f64) < 0.7 * ext as f64,
            "Baugh-Wooley ({bw}) should clearly beat sign extension ({ext})"
        );
    }

    #[test]
    fn neg_inc_abs() {
        let w = 6;
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let neg = c.neg(&a);
        let inc = c.inc(&a);
        let abs = c.abs(&a);
        let out = neg.concat(&inc).concat(&abs);
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for x in -32i64..32 {
            let out = nl.eval_plain(&to_bits((x & 63) as u64, w));
            assert_eq!(from_bits(&out[0..w]), ((-x) & 63) as u64, "neg {x}");
            assert_eq!(from_bits(&out[w..2 * w]), ((x + 1) & 63) as u64, "inc {x}");
            assert_eq!(from_bits(&out[2 * w..]), (x.abs() & 63) as u64, "abs {x}");
        }
    }

    #[test]
    fn comparisons_exhaustive_4bit() {
        let mut c = Circuit::new();
        let a = c.input_word("a", 4);
        let b = c.input_word("b", 4);
        let eq = c.eq(&a, &b).unwrap();
        let ltu = c.lt_unsigned(&a, &b).unwrap();
        let lts = c.lt_signed(&a, &b).unwrap();
        let le_s = c.le(&a, &b, true).unwrap();
        c.output_word("o", &Word::from_bits(vec![eq, ltu, lts, le_s]));
        let nl = c.finish().unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let out = nl.eval_plain(&input);
                let (sx, sy) = ((x as i64 ^ 8) - 8, (y as i64 ^ 8) - 8);
                assert_eq!(out[0], x == y, "eq {x} {y}");
                assert_eq!(out[1], x < y, "ltu {x} {y}");
                assert_eq!(out[2], sx < sy, "lts {sx} {sy}");
                assert_eq!(out[3], sx <= sy, "les {sx} {sy}");
            }
        }
    }

    #[test]
    fn min_max_int() {
        let nl = binop_circuit(4, |c, a, b| {
            let mx = c.max_int(a, b, true).unwrap();
            let mn = c.min_int(a, b, true).unwrap();
            mx.concat(&mn)
        });
        for x in -8i64..8 {
            for y in -8i64..8 {
                let got = eval2(&nl, 4, (x & 15) as u64, (y & 15) as u64);
                let want = ((x.max(y) & 15) | ((x.min(y) & 15) << 4)) as u64;
                assert_eq!(got, want, "{x} {y}");
            }
        }
    }

    #[test]
    fn multiply_by_constant_folds_partial_products() {
        let mut c = Circuit::new();
        let a = c.input_word("a", 8);
        let k = Word::constant(2, 8); // one set bit
        let p = c.mul_unsigned(&a, &k);
        // Multiplying by a power of two must cost no logic gates at all.
        assert_eq!(c.num_gates(), 0, "power-of-two multiply should fold to wiring");
        c.output_word("p", &p);
        // Emitting the output may materialize free CONST gates, never logic.
        let nl = c.finish().unwrap();
        assert_eq!(nl.num_bootstrapped_gates(), 0);
    }
}
