//! Parameterizable combinational circuit generators — the pre-built,
//! pre-validated "Chisel module" layer of the PyTFHE compilation flow
//! (Step 1 of Figure 2 of the paper).
//!
//! In the paper, ChiselTorch instantiates Chisel hardware modules that are
//! elaborated to Verilog and synthesized by Yosys into a gate netlist. This
//! crate plays the role of that whole HDL pipeline: its generators build
//! the gate netlist directly, with the same guarantees the paper derives
//! from pre-built Chisel modules — correctness (every generator is tested
//! against an integer/float oracle) and parameterizability (arbitrary bit
//! widths, arbitrary float formats).
//!
//! The central type is [`Circuit`], a builder over
//! [`pytfhe_netlist::Netlist`] that performs on-the-fly constant folding —
//! crucial when plaintext model weights are baked into circuits. On top of
//! it sit:
//!
//! * [`Word`] — a little-endian bundle of bits,
//! * integer arithmetic ([`arith`]): adders, subtractors, multipliers,
//!   comparators,
//! * restoring division ([`div`]),
//! * barrel shifts and priority encoders ([`shift`]),
//! * multiplexer trees ([`mux`]),
//! * fully parameterizable floating point ([`float`]): the paper's
//!   `Float(e, m)` data types, e.g. `Float(8, 8)` (bfloat16) or
//!   `Float(5, 11)` (half precision),
//! * the [`DType`] system with plaintext encode/decode codecs ([`dtype`]).
//!
//! # Example
//!
//! An 8-bit adder compared against its oracle:
//!
//! ```
//! use pytfhe_hdl::Circuit;
//!
//! let mut c = Circuit::new();
//! let a = c.input_word("a", 8);
//! let b = c.input_word("b", 8);
//! let sum = c.add(&a, &b);
//! c.output_word("sum", &sum);
//! let nl = c.finish().unwrap();
//!
//! let bits = |x: u8| (0..8).map(|i| (x >> i) & 1 == 1).collect::<Vec<_>>();
//! let mut input = bits(100);
//! input.extend(bits(55));
//! let out = nl.eval_plain(&input);
//! let got = out.iter().enumerate().fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i));
//! assert_eq!(got, 155);
//! ```

pub mod arith;
mod bit;
mod circuit;
pub mod div;
pub mod dtype;
mod error;
pub mod float;
pub mod ks_adder;
pub mod mux;
pub mod shift;
mod word;

pub use bit::Bit;
pub use circuit::Circuit;
pub use dtype::{DType, Value};
pub use error::HdlError;
pub use float::FloatFormat;
pub use word::Word;
