use crate::bit::Bit;

/// An ordered bundle of bits, least significant first — the raw signal
/// type every arithmetic generator operates on.
///
/// `Word` is deliberately interpretation-free: signedness, binary point
/// position and float formats are imposed by the generators (and by
/// [`crate::DType`] at the typed layer), matching how hardware description
/// languages treat wire bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<Bit>,
}

impl Word {
    /// A word made of the given bits (LSB first).
    pub fn from_bits(bits: Vec<Bit>) -> Self {
        Word { bits }
    }

    /// A word of `width` constant-zero bits.
    pub fn zeros(width: usize) -> Self {
        Word { bits: vec![Bit::ZERO; width] }
    }

    /// The two's-complement constant `value`, truncated to `width` bits.
    pub fn constant(value: i64, width: usize) -> Self {
        Word { bits: (0..width).map(|i| Bit::Const((value >> i.min(63)) & 1 == 1)).collect() }
    }

    /// The unsigned constant `value`, truncated to `width` bits.
    pub fn constant_u64(value: u64, width: usize) -> Self {
        Word {
            bits: (0..width)
                .map(|i| Bit::Const(if i < 64 { (value >> i) & 1 == 1 } else { false }))
                .collect(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether the word has zero width.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// Bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> Bit {
        self.bits[i]
    }

    /// The most significant bit (the sign, for two's complement).
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    pub fn msb(&self) -> Bit {
        *self.bits.last().expect("msb of empty word")
    }

    /// Bits `lo..hi` as a new word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> Word {
        Word { bits: self.bits[lo..hi].to_vec() }
    }

    /// Concatenation: `self` occupies the low bits, `high` the high bits.
    pub fn concat(&self, high: &Word) -> Word {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Word { bits }
    }

    /// Zero-extends (or truncates) to `width` bits.
    pub fn zext(&self, width: usize) -> Word {
        let mut bits = self.bits.clone();
        bits.resize(width, Bit::ZERO);
        bits.truncate(width);
        Word { bits }
    }

    /// Sign-extends (or truncates) to `width` bits.
    pub fn sext(&self, width: usize) -> Word {
        let fill = if self.bits.is_empty() { Bit::ZERO } else { self.msb() };
        let mut bits = self.bits.clone();
        bits.resize(width, fill);
        bits.truncate(width);
        Word { bits }
    }

    /// Logical left shift by a constant amount (width preserved).
    pub fn shl_const(&self, amount: usize) -> Word {
        let w = self.width();
        let mut bits = vec![Bit::ZERO; w];
        if amount < w {
            bits[amount..].copy_from_slice(&self.bits[..w - amount]);
        }
        Word { bits }
    }

    /// Logical right shift by a constant amount (width preserved).
    pub fn shr_const(&self, amount: usize) -> Word {
        let w = self.width();
        let mut bits = vec![Bit::ZERO; w];
        let kept = w.saturating_sub(amount);
        if kept > 0 {
            bits[..kept].copy_from_slice(&self.bits[amount..amount + kept]);
        }
        Word { bits }
    }

    /// Arithmetic right shift by a constant amount (width preserved).
    pub fn asr_const(&self, amount: usize) -> Word {
        let w = self.width();
        if w == 0 {
            return self.clone();
        }
        let fill = self.msb();
        let mut bits = vec![fill; w];
        let kept = w.saturating_sub(amount);
        if kept > 0 {
            bits[..kept].copy_from_slice(&self.bits[amount..amount + kept]);
        }
        Word { bits }
    }

    /// If every bit is a constant, the unsigned value.
    pub fn as_const_u64(&self) -> Option<u64> {
        let mut v = 0u64;
        for (i, bit) in self.bits.iter().enumerate() {
            match bit.as_const() {
                Some(true) if i < 64 => v |= 1 << i,
                Some(_) => {}
                None => return None,
            }
        }
        Some(v)
    }
}

impl FromIterator<Bit> for Word {
    fn from_iter<T: IntoIterator<Item = Bit>>(iter: T) -> Self {
        Word { bits: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        let w = Word::constant(-3, 8);
        assert_eq!(w.as_const_u64(), Some(0b1111_1101));
        let w = Word::constant_u64(0xAB, 8);
        assert_eq!(w.as_const_u64(), Some(0xAB));
        assert_eq!(Word::constant(5, 3).as_const_u64(), Some(5));
    }

    #[test]
    fn extensions() {
        let w = Word::constant(-2, 4); // 0b1110
        assert_eq!(w.zext(8).as_const_u64(), Some(0b0000_1110));
        assert_eq!(w.sext(8).as_const_u64(), Some(0b1111_1110));
        assert_eq!(w.sext(2).as_const_u64(), Some(0b10));
    }

    #[test]
    fn shifts() {
        let w = Word::constant_u64(0b1011, 4);
        assert_eq!(w.shl_const(1).as_const_u64(), Some(0b0110));
        assert_eq!(w.shr_const(1).as_const_u64(), Some(0b0101));
        assert_eq!(w.asr_const(1).as_const_u64(), Some(0b1101));
        assert_eq!(w.shr_const(10).as_const_u64(), Some(0));
    }

    #[test]
    fn slicing_and_concat() {
        let w = Word::constant_u64(0b110100, 6);
        assert_eq!(w.slice(2, 6).as_const_u64(), Some(0b1101));
        let lo = Word::constant_u64(0b01, 2);
        let hi = Word::constant_u64(0b11, 2);
        assert_eq!(lo.concat(&hi).as_const_u64(), Some(0b1101));
    }
}
