//! Kogge–Stone parallel-prefix addition — the low-depth alternative to
//! the ripple-carry adder.
//!
//! Gate *count* determines total bootstraps, but gate *depth* bounds how
//! many waves Algorithm 1 needs — and therefore how much a wide backend
//! (the paper's 72-core cluster or 64-SM GPU) can overlap. Kogge–Stone
//! trades ~2× the gates for `O(log w)` instead of `O(w)` depth; the
//! `repro ablation` harness quantifies the tradeoff so users can pick per
//! deployment.

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::word::Word;

impl Circuit {
    /// Kogge–Stone addition: same function as [`Circuit::add`], depth
    /// `O(log width)` instead of `O(width)`.
    pub fn add_kogge_stone(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "add: width mismatch");
        let w = a.width();
        if w == 0 {
            return Word::zeros(0);
        }
        // Generate/propagate pairs per bit.
        let mut g: Vec<Bit> = Vec::with_capacity(w);
        let mut p: Vec<Bit> = Vec::with_capacity(w);
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            g.push(self.and(x, y));
            p.push(self.xor(x, y));
        }
        // Prefix tree: after round d, (g[i], p[i]) summarize the span
        // [i - 2^d + 1, i].
        let sum_p = p.clone(); // per-bit propagate for the final sum
        let mut dist = 1;
        while dist < w {
            let (g_prev, p_prev) = (g.clone(), p.clone());
            for i in dist..w {
                // (g, p) ∘ (g', p') = (g | (p & g'), p & p')
                let pg = self.and(p_prev[i], g_prev[i - dist]);
                g[i] = self.or(g_prev[i], pg);
                p[i] = self.and(p_prev[i], p_prev[i - dist]);
            }
            dist <<= 1;
        }
        // carry into bit i is g[i-1] (carry-in zero); sum = p ^ carry.
        let mut bits = Vec::with_capacity(w);
        bits.push(sum_p[0]);
        for i in 1..w {
            bits.push(self.xor(sum_p[i], g[i - 1]));
        }
        Word::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::topo::Levels;
    use pytfhe_netlist::Netlist;

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn adder(w: usize, kogge_stone: bool) -> Netlist {
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let s = if kogge_stone { c.add_kogge_stone(&a, &b) } else { c.add(&a, &b) };
        c.output_word("s", &s);
        c.finish().unwrap()
    }

    #[test]
    fn kogge_stone_exhaustive_6bit() {
        let nl = adder(6, true);
        for x in 0u64..64 {
            for y in 0u64..64 {
                let mut input = to_bits(x, 6);
                input.extend(to_bits(y, 6));
                assert_eq!(from_bits(&nl.eval_plain(&input)), (x + y) % 64, "{x}+{y}");
            }
        }
    }

    #[test]
    fn kogge_stone_matches_ripple_at_random_widths() {
        for w in [1usize, 2, 3, 7, 13, 24] {
            let ks = adder(w, true);
            let rc = adder(w, false);
            let mask = if w >= 64 { u64::MAX } else { (1 << w) - 1 };
            let mut state = 0xABCDEFu64;
            for _ in 0..50 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = (state >> 10) & mask;
                let y = (state >> 33) & mask;
                let mut input = to_bits(x, w);
                input.extend(to_bits(y, w));
                assert_eq!(ks.eval_plain(&input), rc.eval_plain(&input), "w={w} {x}+{y}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_logarithmic_depth() {
        let w = 32;
        let ks = Levels::compute(&adder(w, true));
        let rc = Levels::compute(&adder(w, false));
        assert!(
            ks.depth() <= 2 * (w as u32).ilog2() + 4,
            "KS depth {} should be O(log w)",
            ks.depth()
        );
        assert!(rc.depth() as usize >= w, "ripple depth {} is linear", rc.depth());
        assert!(ks.depth() < rc.depth() / 2, "KS must halve the critical path at w=32");
    }

    #[test]
    fn kogge_stone_costs_more_gates() {
        let w = 32;
        let ks = adder(w, true).num_bootstrapped_gates();
        let rc = adder(w, false).num_bootstrapped_gates();
        assert!(ks > rc, "the depth win is paid in gates: KS {ks} vs RC {rc}");
    }
}
