//! Barrel shifters and priority encoders — variable-amount shifts used by
//! the floating-point units (mantissa alignment and normalization).

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::word::Word;

impl Circuit {
    /// Logical right shift of `a` by the unsigned `amount` word (barrel
    /// shifter: one mux layer per amount bit). Amount bits beyond
    /// `log2(width)` shift everything out.
    pub fn shr_barrel(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (k, &sel) in amount.bits().iter().enumerate() {
            let shifted = if k < 64 && (1usize << k.min(63)) <= cur.width() {
                cur.shr_const(1 << k)
            } else {
                Word::zeros(cur.width())
            };
            cur = self.mux_word(sel, &shifted, &cur).expect("same widths");
            // Once a single stage clears the whole word, later stages only
            // matter if their select bit is set — handled uniformly above.
            if (1usize << k.min(63)) >= cur.width() {
                // Remaining higher amount bits each fully clear the word.
                let zero = Word::zeros(cur.width());
                for &hi in &amount.bits()[k + 1..] {
                    cur = self.mux_word(hi, &zero, &cur).expect("same widths");
                }
                break;
            }
        }
        cur
    }

    /// Logical left shift of `a` by the unsigned `amount` word.
    pub fn shl_barrel(&mut self, a: &Word, amount: &Word) -> Word {
        let mut cur = a.clone();
        for (k, &sel) in amount.bits().iter().enumerate() {
            let shifted = if k < 64 && (1usize << k.min(63)) <= cur.width() {
                cur.shl_const(1 << k)
            } else {
                Word::zeros(cur.width())
            };
            cur = self.mux_word(sel, &shifted, &cur).expect("same widths");
            if (1usize << k.min(63)) >= cur.width() {
                let zero = Word::zeros(cur.width());
                for &hi in &amount.bits()[k + 1..] {
                    cur = self.mux_word(hi, &zero, &cur).expect("same widths");
                }
                break;
            }
        }
        cur
    }

    /// Count of leading zeros of `a` (from the MSB), as a word of
    /// `ceil(log2(width + 1))` bits. `a == 0` yields `width`.
    ///
    /// This is the priority encoder used by float normalization after a
    /// subtractive cancellation.
    pub fn leading_zeros(&mut self, a: &Word) -> Word {
        let w = a.width();
        let out_bits = usize::BITS as usize - w.leading_zeros() as usize; // ceil(log2(w+1))
                                                                          // Scan from the MSB: lz = index of first set bit.
                                                                          // found: have we seen a 1 yet; count: running count.
        let mut found = Bit::ZERO;
        let mut count = Word::zeros(out_bits);
        for i in (0..w).rev() {
            let bit = a.bit(i);
            // If not found and bit is 0, increment count.
            let not_found = self.not(found);
            let inc_cond = self.andyn(not_found, bit); // !found & !bit
            let inc = self.inc(&count);
            count = self.mux_word(inc_cond, &inc, &count).expect("same widths");
            found = self.or(found, bit);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn shr_barrel_exhaustive() {
        let (w, aw) = (8usize, 4usize);
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let amt = c.input_word("amt", aw);
        let out = c.shr_barrel(&a, &amt);
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for x in [0u64, 1, 0x80, 0xFF, 0xA5] {
            for s in 0u64..16 {
                let mut input = to_bits(x, w);
                input.extend(to_bits(s, aw));
                let got = from_bits(&nl.eval_plain(&input));
                let want = if s >= 8 { 0 } else { x >> s };
                assert_eq!(got, want, "{x} >> {s}");
            }
        }
    }

    #[test]
    fn shl_barrel_exhaustive() {
        let (w, aw) = (8usize, 4usize);
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let amt = c.input_word("amt", aw);
        let out = c.shl_barrel(&a, &amt);
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for x in [0u64, 1, 0x80, 0xFF, 0xA5] {
            for s in 0u64..16 {
                let mut input = to_bits(x, w);
                input.extend(to_bits(s, aw));
                let got = from_bits(&nl.eval_plain(&input));
                let want = if s >= 8 { 0 } else { (x << s) & 0xFF };
                assert_eq!(got, want, "{x} << {s}");
            }
        }
    }

    #[test]
    fn leading_zeros_exhaustive_6bit() {
        let w = 6usize;
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let out = c.leading_zeros(&a);
        c.output_word("out", &out);
        let nl = c.finish().unwrap();
        for x in 0u64..64 {
            let got = from_bits(&nl.eval_plain(&to_bits(x, w)));
            let want = if x == 0 { 6 } else { (x as u8).leading_zeros() as u64 - 2 };
            assert_eq!(got, want, "clz({x:06b})");
        }
    }
}
