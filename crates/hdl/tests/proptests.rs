//! Property-based tests of the circuit generators against integer and
//! floating-point oracles over randomized widths and operands.

use proptest::prelude::*;
use pytfhe_hdl::{Circuit, DType, FloatFormat, Value, Word};

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Subtraction, negation and comparisons match two's complement
    /// semantics at random widths.
    #[test]
    fn sub_neg_cmp_match_i64(w in 2usize..12, x in any::<i64>(), y in any::<i64>()) {
        let mask = (1i64 << w) - 1;
        let (x, y) = (x & mask, y & mask);
        let sx = (x << (64 - w)) >> (64 - w); // sign-extended views
        let sy = (y << (64 - w)) >> (64 - w);
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let diff = c.sub(&a, &b);
        let neg = c.neg(&a);
        let lts = c.lt_signed(&a, &b).expect("widths");
        let eq = c.eq(&a, &b).expect("widths");
        c.output_word("o", &diff.concat(&neg));
        c.output_word("f", &Word::from_bits(vec![lts, eq]));
        let nl = c.finish().expect("netlist");
        let mut input = to_bits(x as u64, w);
        input.extend(to_bits(y as u64, w));
        let out = nl.eval_plain(&input);
        prop_assert_eq!(from_bits(&out[..w]) as i64, (x - y) & mask);
        prop_assert_eq!(from_bits(&out[w..2 * w]) as i64, (-x) & mask);
        prop_assert_eq!(out[2 * w], sx < sy);
        prop_assert_eq!(out[2 * w + 1], x == y);
    }

    /// Baugh-Wooley multiplication equals the sign-extension oracle for
    /// random (possibly rectangular) widths.
    #[test]
    fn mul_signed_equals_extension_oracle(
        wa in 1usize..9,
        wb in 1usize..9,
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let x = x & ((1 << wa) - 1);
        let y = y & ((1 << wb) - 1);
        let mut c = Circuit::new();
        let a = c.input_word("a", wa);
        let b = c.input_word("b", wb);
        let bw = c.mul_signed(&a, &b);
        let ext = c.mul_signed_ext(&a, &b);
        c.output_word("bw", &bw);
        c.output_word("ext", &ext);
        let nl = c.finish().expect("netlist");
        let mut input = to_bits(x, wa);
        input.extend(to_bits(y, wb));
        let out = nl.eval_plain(&input);
        let w = wa + wb;
        prop_assert_eq!(from_bits(&out[..w]), from_bits(&out[w..]), "{}x{}: {} {}", wa, wb, x, y);
    }

    /// Division satisfies the Euclidean identity at random widths.
    #[test]
    fn division_euclidean_identity(w in 2usize..10, x in any::<u64>(), y in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let (x, y) = (x & mask, (y & mask).max(1));
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let b = c.input_word("b", w);
        let (q, r) = c.div_unsigned(&a, &b);
        c.output_word("q", &q.concat(&r));
        let nl = c.finish().expect("netlist");
        let mut input = to_bits(x, w);
        input.extend(to_bits(y, w));
        let out = nl.eval_plain(&input);
        let (q, r) = (from_bits(&out[..w]), from_bits(&out[w..]));
        prop_assert_eq!(q, x / y);
        prop_assert_eq!(r, x % y);
        prop_assert_eq!(q * y + r, x);
    }

    /// Barrel shifts match `>>`/`<<` for every in-range amount.
    #[test]
    fn barrel_shifts_match(w in 2usize..12, x in any::<u64>(), s in 0usize..16) {
        let x = x & ((1 << w) - 1);
        let mut c = Circuit::new();
        let a = c.input_word("a", w);
        let amt = c.input_word("s", 4);
        let right = c.shr_barrel(&a, &amt);
        let left = c.shl_barrel(&a, &amt);
        c.output_word("o", &right.concat(&left));
        let nl = c.finish().expect("netlist");
        let mut input = to_bits(x, w);
        input.extend(to_bits(s as u64, 4));
        let out = nl.eval_plain(&input);
        let want_r = if s >= w { 0 } else { x >> s };
        let want_l = if s >= w { 0 } else { (x << s) & ((1 << w) - 1) };
        prop_assert_eq!(from_bits(&out[..w]), want_r);
        prop_assert_eq!(from_bits(&out[w..]), want_l);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Float add/mul stay within a few ULP of the quantized f64 oracle
    /// across formats.
    #[test]
    fn float_ops_close_to_oracle(
        e in 5usize..9,
        m in 4usize..11,
        x in -200.0f64..200.0,
        y in -200.0f64..200.0,
    ) {
        let fmt = FloatFormat::new(e, m);
        let mut c = Circuit::new();
        let a = c.input_word("a", fmt.width());
        let b = c.input_word("b", fmt.width());
        let sum = c.fadd(fmt, &a, &b);
        let prod = c.fmul(fmt, &a, &b);
        c.output_word("s", &sum);
        c.output_word("p", &prod);
        let nl = c.finish().expect("netlist");
        let mut input = fmt.encode_f64(x);
        input.extend(fmt.encode_f64(y));
        let out = nl.eval_plain(&input);
        let got_sum = fmt.decode_f64(&out[..fmt.width()]);
        let got_prod = fmt.decode_f64(&out[fmt.width()..]);
        let xq = fmt.decode_f64(&fmt.encode_f64(x));
        let yq = fmt.decode_f64(&fmt.encode_f64(y));
        let tol = |want: f64| 8.0 * fmt.ulp() * want.abs().max(32.0 * fmt.ulp());
        prop_assert!((got_sum - (xq + yq)).abs() <= tol(xq + yq),
            "{fmt}: {xq} + {yq} -> {got_sum}");
        prop_assert!((got_prod - xq * yq).abs() <= tol(xq * yq).max(fmt.ulp()),
            "{fmt}: {xq} * {yq} -> {got_prod}");
    }

    /// Typed fixed-point arithmetic stays within resolution of real
    /// arithmetic.
    #[test]
    fn fixed_ops_close_to_real(
        frac in 2usize..8,
        x in -7.0f64..7.0,
        y in -7.0f64..7.0,
    ) {
        let dtype = DType::Fixed { width: frac + 8, frac };
        let mut c = Circuit::new();
        let a = Value::new(c.input_word("a", dtype.width()), dtype);
        let b = Value::new(c.input_word("b", dtype.width()), dtype);
        let sum = c.v_add(&a, &b).expect("same dtype");
        let prod = c.v_mul(&a, &b).expect("same dtype");
        c.output_word("s", &sum.word);
        c.output_word("p", &prod.word);
        let nl = c.finish().expect("netlist");
        let mut input = dtype.encode_f64(x);
        input.extend(dtype.encode_f64(y));
        let out = nl.eval_plain(&input);
        let w = dtype.width();
        let got_sum = dtype.decode_f64(&out[..w]);
        let got_prod = dtype.decode_f64(&out[w..]);
        let res = dtype.resolution();
        prop_assert!((got_sum - (x + y)).abs() <= 2.0 * res, "{x}+{y} -> {got_sum}");
        prop_assert!((got_prod - x * y).abs() <= res * (x.abs() + y.abs() + 2.0),
            "{x}*{y} -> {got_prod}");
    }
}
