//! The client/server session of the paper's Figure 1.

use chiseltorch::DType;
use pytfhe_backend::{
    execute_parallel, execute_resilient, CheckpointStore, ExecError, ExecStats, FaultInjector,
    KernelGraph, ResilientConfig, TfheEngine,
};
use pytfhe_netlist::Netlist;
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::{ClientKey, LweCiphertext, Params, SecureRng, ServerKey};

/// The data owner: holds the secret key, encrypts inputs, decrypts
/// results. Never ships secret material.
#[derive(Debug)]
pub struct Client {
    key: ClientKey,
    rng: SecureRng,
}

impl Client {
    /// Creates a client with a fresh key pair under `params`, seeded
    /// deterministically (use [`Client::from_entropy`] outside tests).
    pub fn new(params: Params, seed: u64) -> Self {
        let mut rng = SecureRng::seed_from_u64(seed);
        let key = ClientKey::generate(params, &mut rng);
        Client { key, rng }
    }

    /// Creates a client with operating-system randomness.
    pub fn from_entropy(params: Params) -> Self {
        let mut rng = SecureRng::from_entropy();
        let key = ClientKey::generate(params, &mut rng);
        Client { key, rng }
    }

    /// Derives the public evaluation key to ship to the server.
    pub fn make_server_key(&mut self) -> ServerKey {
        let _span = telemetry::span("session", "derive server key");
        self.key.server_key(&mut self.rng)
    }

    /// Encrypts raw bits (little-endian program order).
    pub fn encrypt_bits(&mut self, bits: &[bool]) -> Vec<LweCiphertext> {
        let _span = telemetry::span_with("session", || format!("encrypt {} bits", bits.len()));
        self.key.encrypt_bits(bits, &mut self.rng)
    }

    /// Decrypts ciphertexts to bits.
    pub fn decrypt_bits(&self, cts: &[LweCiphertext]) -> Vec<bool> {
        let _span = telemetry::span_with("session", || format!("decrypt {} bits", cts.len()));
        self.key.decrypt_bits(cts)
    }

    /// Quantizes scalars under `dtype` and encrypts the resulting bits —
    /// the client half of the ChiselTorch data-type contract.
    pub fn encrypt_values(&mut self, values: &[f64], dtype: DType) -> Vec<LweCiphertext> {
        let bits: Vec<bool> = values.iter().flat_map(|&v| dtype.encode_f64(v)).collect();
        self.encrypt_bits(&bits)
    }

    /// Decrypts ciphertexts and decodes them as `dtype` scalars.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext count is not a multiple of the type
    /// width.
    pub fn decrypt_values(&self, cts: &[LweCiphertext], dtype: DType) -> Vec<f64> {
        let bits = self.decrypt_bits(cts);
        assert_eq!(bits.len() % dtype.width(), 0, "ragged ciphertext vector");
        bits.chunks(dtype.width()).map(|ch| dtype.decode_f64(ch)).collect()
    }
}

/// The untrusted evaluator: holds only the public evaluation key and the
/// program; sees only ciphertexts.
#[derive(Debug)]
pub struct Server {
    key: ServerKey,
    graph: KernelGraph,
}

impl Server {
    /// Creates a server around a received evaluation key.
    ///
    /// When telemetry is enabled, publishes the parameter set's
    /// analytical noise budget (fresh/blind-rotation/key-switch/gate
    /// output variances and the gate failure probability) as gauges, so
    /// every trace carries the noise model it ran under.
    pub fn new(key: ServerKey) -> Self {
        pytfhe_tfhe::NoiseModel::new(*key.params()).record_gauges();
        Server { key, graph: KernelGraph::new() }
    }

    /// The evaluation key (e.g. for engine construction).
    pub fn key(&self) -> &ServerKey {
        &self.key
    }

    /// Executes a program on encrypted inputs with the multi-threaded
    /// wavefront backend (Algorithm 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on input-count mismatches or invalid
    /// programs.
    pub fn execute(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        workers: usize,
    ) -> Result<Vec<LweCiphertext>, ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute: {} gates, {workers} workers", program.num_gates())
        });
        let engine = TfheEngine::new(&self.key);
        let (out, _) = execute_parallel(&engine, program, inputs, workers)?;
        Ok(out)
    }

    /// Executes a program on encrypted inputs with the kernel-graph
    /// backend: the first call captures the program into a batched
    /// execution plan (the CUDA-Graphs analogue of the paper's
    /// Figure 9); repeat calls on the same program replay the cached
    /// plan directly — check [`ExecStats::plan_cached`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on input-count mismatches or invalid
    /// programs.
    pub fn execute_graph(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        workers: usize,
    ) -> Result<(Vec<LweCiphertext>, ExecStats), ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute_graph: {} gates, {workers} workers", program.num_gates())
        });
        let engine = TfheEngine::new(&self.key);
        self.graph.execute(&engine, program, inputs, workers)
    }

    /// Executes a program on encrypted inputs with the fault-tolerant
    /// wavefront backend: failed gate tasks retry with backoff, crashed
    /// workers are evicted, and — when `store` is supplied — the
    /// ciphertext frontier checkpoints at every wave barrier so an
    /// interrupted evaluation resumes instead of restarting. `faults` is
    /// the injection hook; pass [`pytfhe_backend::NoFaults`] in
    /// production.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on the usual validation failures, exhausted
    /// retry budgets, full worker loss, or checkpoint mismatches.
    pub fn execute_resilient(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        cfg: &ResilientConfig,
        faults: &dyn FaultInjector,
        store: Option<&mut dyn CheckpointStore>,
    ) -> Result<(Vec<LweCiphertext>, ExecStats), ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute_resilient: {} gates, {} workers", program.num_gates(), cfg.workers)
        });
        let engine = TfheEngine::new(&self.key);
        execute_resilient(&engine, program, inputs, cfg, faults, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;

    #[test]
    fn session_round_trip() {
        let mut client = Client::new(Params::testing(), 5);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Xor, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let cts = client.encrypt_bits(&[true, false]);
        let out = server.execute(&nl, &cts, 2).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
    }

    #[test]
    fn graph_session_matches_wavefront_and_caches_the_plan() {
        let mut client = Client::new(Params::testing(), 9);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::Nand, a, b).unwrap();
        let z = nl.add_gate(GateKind::Or, x, y).unwrap();
        nl.mark_output(z).unwrap();
        for (bits, seed) in [([true, false], 0), ([true, true], 1), ([false, false], 2)] {
            let cts = client.encrypt_bits(&bits);
            let want = server.execute(&nl, &cts, 2).unwrap();
            let (got, stats) = server.execute_graph(&nl, &cts, 2).unwrap();
            assert_eq!(got, want, "graph replay must be bit-exact with execute");
            assert_eq!(stats.plan_cached, seed > 0, "only the first call captures");
        }
    }

    #[test]
    fn typed_values_round_trip() {
        let mut client = Client::new(Params::testing(), 6);
        let dtype = DType::SInt(6);
        let cts = client.encrypt_values(&[-3.0, 7.0], dtype);
        assert_eq!(cts.len(), 12);
        let back = client.decrypt_values(&cts, dtype);
        assert_eq!(back, vec![-3.0, 7.0]);
    }

    #[test]
    fn resilient_session_round_trip() {
        use pytfhe_backend::{MemoryCheckpointStore, ResilientConfig, RetryPolicy, SeededFaults};
        let mut client = Client::new(Params::testing(), 8);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::And, a, b).unwrap();
        let z = nl.add_gate(GateKind::Or, x, y).unwrap();
        nl.mark_output(z).unwrap();
        let cts = client.encrypt_bits(&[true, false]);
        let cfg = ResilientConfig { workers: 2, retry: RetryPolicy::fast(), checkpoint_every: 1 };
        let faults = SeededFaults::new(13).with_fail_prob(0.2);
        let mut store = MemoryCheckpointStore::new();
        let (out, stats) =
            server.execute_resilient(&nl, &cts, &cfg, &faults, Some(&mut store)).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
        assert!(stats.checkpoints > 0);
        assert!(store.latest().is_some());
    }

    #[test]
    fn wrong_input_count_is_reported() {
        let mut client = Client::new(Params::testing(), 7);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::And, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let cts = client.encrypt_bits(&[true]);
        assert!(matches!(
            server.execute(&nl, &cts, 1),
            Err(ExecError::InputCountMismatch { expected: 2, got: 1 })
        ));
    }
}
