//! The client/server session of the paper's Figure 1.

use chiseltorch::DType;
use pytfhe_backend::{
    execute_parallel, execute_resilient, CheckpointStore, DiskStore, ExecError, ExecStats,
    FaultInjector, KernelGraph, ResilientConfig, TfheEngine,
};
use pytfhe_netlist::Netlist;
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::{ClientKey, LweCiphertext, NoiseModel, Params, SecureRng, ServerKey, TfheError};

/// Re-exported from [`pytfhe_tfhe`], where the guard lives so lower
/// layers (e.g. shortint keygen) can run the same admission check.
pub use pytfhe_tfhe::NoiseGuard;

/// The data owner: holds the secret key, encrypts inputs, decrypts
/// results. Never ships secret material.
#[derive(Debug)]
pub struct Client {
    key: ClientKey,
    rng: SecureRng,
}

impl Client {
    /// Creates a client with a fresh key pair under `params`, seeded
    /// deterministically (use [`Client::from_entropy`] outside tests).
    pub fn new(params: Params, seed: u64) -> Self {
        let mut rng = SecureRng::seed_from_u64(seed);
        let key = ClientKey::generate(params, &mut rng);
        Client { key, rng }
    }

    /// Creates a client with operating-system randomness.
    pub fn from_entropy(params: Params) -> Self {
        let mut rng = SecureRng::from_entropy();
        let key = ClientKey::generate(params, &mut rng);
        Client { key, rng }
    }

    /// Derives the public evaluation key to ship to the server.
    pub fn make_server_key(&mut self) -> ServerKey {
        let _span = telemetry::span("session", "derive server key");
        self.key.server_key(&mut self.rng)
    }

    /// Encrypts raw bits (little-endian program order).
    pub fn encrypt_bits(&mut self, bits: &[bool]) -> Vec<LweCiphertext> {
        let _span = telemetry::span_with("session", || format!("encrypt {} bits", bits.len()));
        self.key.encrypt_bits(bits, &mut self.rng)
    }

    /// Decrypts ciphertexts to bits.
    pub fn decrypt_bits(&self, cts: &[LweCiphertext]) -> Vec<bool> {
        let _span = telemetry::span_with("session", || format!("decrypt {} bits", cts.len()));
        self.key.decrypt_bits(cts)
    }

    /// Quantizes scalars under `dtype` and encrypts the resulting bits —
    /// the client half of the ChiselTorch data-type contract.
    pub fn encrypt_values(&mut self, values: &[f64], dtype: DType) -> Vec<LweCiphertext> {
        let bits: Vec<bool> = values.iter().flat_map(|&v| dtype.encode_f64(v)).collect();
        self.encrypt_bits(&bits)
    }

    /// Decrypts ciphertexts and decodes them as `dtype` scalars.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext count is not a multiple of the type
    /// width.
    pub fn decrypt_values(&self, cts: &[LweCiphertext], dtype: DType) -> Vec<f64> {
        let bits = self.decrypt_bits(cts);
        assert_eq!(bits.len() % dtype.width(), 0, "ragged ciphertext vector");
        bits.chunks(dtype.width()).map(|ch| dtype.decode_f64(ch)).collect()
    }
}

/// The untrusted evaluator: holds only the public evaluation key and the
/// program; sees only ciphertexts.
///
/// A server constructed with [`Server::with_store`] additionally
/// persists its expensive session artifacts — the installed evaluation
/// key and every captured kernel plan — to a [`DiskStore`], and a
/// restarted process can rebuild the whole session from that directory
/// with [`Server::warm_start`] instead of paying key transfer and plan
/// capture again.
#[derive(Debug)]
pub struct Server {
    key: ServerKey,
    graph: KernelGraph,
    store: Option<DiskStore>,
}

impl Server {
    /// Creates a server around a received evaluation key.
    ///
    /// When telemetry is enabled, publishes the parameter set's
    /// analytical noise budget (fresh/blind-rotation/key-switch/gate
    /// output variances and the gate failure probability) as gauges, so
    /// every trace carries the noise model it ran under. Keys failing
    /// the default [`NoiseGuard`] are still admitted here (tests run on
    /// deliberately weak parameters), but the breach is counted on the
    /// `session_noise_guard_warnings_total` telemetry counter; use
    /// [`Server::with_noise_guard`] to make admission strict.
    pub fn new(key: ServerKey) -> Self {
        let model = NoiseModel::new(*key.params());
        model.record_gauges();
        if model.gate_failure_probability() > NoiseGuard::default().max_gate_failure_probability {
            telemetry::metrics().counter_add("session_noise_guard_warnings_total", 1);
        }
        Server { key, graph: KernelGraph::new(), store: None }
    }

    /// Creates a server only if the key's parameter set passes `guard`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::NoiseBudgetExceeded`] when the analytical
    /// per-gate failure probability exceeds the guard's threshold.
    pub fn with_noise_guard(key: ServerKey, guard: NoiseGuard) -> Result<Self, TfheError> {
        guard.admit(key.params())?;
        Ok(Self::new(key))
    }

    /// Creates a server around `key` and attaches a durable store: the
    /// key is persisted immediately (counted on
    /// `session_keys_installed_total` when newly written) and any plans
    /// already on disk are adopted into the plan cache (counted on
    /// `session_plans_warm_loaded_total`), so programs seen by an
    /// earlier process replay without re-capture.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] when the store cannot be written
    /// or listed.
    pub fn with_store(key: ServerKey, store: DiskStore) -> Result<Self, ExecError> {
        let mut server = Self::new(key);
        let bytes = pytfhe_tfhe::io::server_key_to_bytes(&server.key);
        let (_, fresh) = store.put_key_blob(&bytes)?;
        if fresh {
            telemetry::metrics().counter_add("session_keys_installed_total", 1);
        }
        server.adopt_stored_plans(&store)?;
        server.store = Some(store);
        Ok(server)
    }

    /// Rebuilds a server from a [`DiskStore`] populated by an earlier
    /// process, without the client re-shipping the evaluation key:
    /// stored keys are decoded (corrupt ones are quarantined and
    /// skipped), the first intact one becomes the session key, and all
    /// stored plans are adopted. Returns `Ok(None)` when the store holds
    /// no usable key.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] when the store itself cannot be
    /// read — corrupt individual artifacts never fail the warm start.
    pub fn warm_start(store: DiskStore) -> Result<Option<Self>, ExecError> {
        let _span = telemetry::span("session", "warm start from disk store");
        let mut key = None;
        for (id, bytes) in store.key_blobs()? {
            match pytfhe_tfhe::io::server_key_from_bytes_tagged(&bytes) {
                Ok((k, vintage)) => {
                    if vintage == pytfhe_tfhe::io::Vintage::Legacy {
                        telemetry::metrics().counter_add("session_legacy_keys_loaded_total", 1);
                    }
                    key = Some(k);
                    break;
                }
                Err(_) => store.quarantine_key(id),
            }
        }
        let Some(key) = key else { return Ok(None) };
        let mut server = Self::new(key);
        server.adopt_stored_plans(&store)?;
        server.store = Some(store);
        // Count only after the whole session rebuilt — a key decode
        // followed by a failed plan load is a failed warm start, and the
        // counter must never overcount those.
        telemetry::metrics().counter_add("session_keys_warm_started_total", 1);
        Ok(Some(server))
    }

    /// Loads every intact plan from `store` into the plan cache.
    fn adopt_stored_plans(&mut self, store: &DiskStore) -> Result<(), ExecError> {
        let plans = store.load_plans()?;
        if !plans.is_empty() {
            telemetry::metrics().counter_add("session_plans_warm_loaded_total", plans.len() as u64);
        }
        for plan in plans {
            self.graph.adopt(plan);
        }
        Ok(())
    }

    /// The evaluation key (e.g. for engine construction).
    pub fn key(&self) -> &ServerKey {
        &self.key
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    /// Executes a program on encrypted inputs with the multi-threaded
    /// wavefront backend (Algorithm 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on input-count mismatches or invalid
    /// programs.
    pub fn execute(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        workers: usize,
    ) -> Result<Vec<LweCiphertext>, ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute: {} gates, {workers} workers", program.num_gates())
        });
        let engine = TfheEngine::new(&self.key);
        let (out, _) = execute_parallel(&engine, program, inputs, workers)?;
        Ok(out)
    }

    /// Executes a program on encrypted inputs with the kernel-graph
    /// backend: the first call captures the program into a batched
    /// execution plan (the CUDA-Graphs analogue of the paper's
    /// Figure 9); repeat calls on the same program replay the cached
    /// plan directly — check [`ExecStats::plan_cached`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on input-count mismatches or invalid
    /// programs.
    pub fn execute_graph(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        workers: usize,
    ) -> Result<(Vec<LweCiphertext>, ExecStats), ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute_graph: {} gates, {workers} workers", program.num_gates())
        });
        let engine = TfheEngine::new(&self.key);
        let result = self.graph.execute(&engine, program, inputs, workers)?;
        if !result.1.plan_cached {
            telemetry::metrics().counter_add("session_plans_captured_total", 1);
            if let Some(store) = &self.store {
                // The plan was captured this call, so this lookup is a
                // cache hit; persist it for the next process. A failed
                // persist costs a future re-capture, not this run.
                match self.graph.plan_for(program).map(|(plan, _, _)| store.put_plan(&plan)) {
                    Ok(Ok(_)) => {}
                    Ok(Err(_)) | Err(_) => {
                        telemetry::metrics().counter_add("session_plan_persist_failures_total", 1);
                    }
                }
            }
        }
        Ok(result)
    }

    /// Executes a program on encrypted inputs with the fault-tolerant
    /// wavefront backend: failed gate tasks retry with backoff, crashed
    /// workers are evicted, and — when `store` is supplied — the
    /// ciphertext frontier checkpoints at every wave barrier so an
    /// interrupted evaluation resumes instead of restarting. `faults` is
    /// the injection hook; pass [`pytfhe_backend::NoFaults`] in
    /// production.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on the usual validation failures, exhausted
    /// retry budgets, full worker loss, or checkpoint mismatches.
    pub fn execute_resilient(
        &self,
        program: &Netlist,
        inputs: &[LweCiphertext],
        cfg: &ResilientConfig,
        faults: &dyn FaultInjector,
        store: Option<&mut dyn CheckpointStore>,
    ) -> Result<(Vec<LweCiphertext>, ExecStats), ExecError> {
        let _span = telemetry::span_with("session", || {
            format!("execute_resilient: {} gates, {} workers", program.num_gates(), cfg.workers)
        });
        let engine = TfheEngine::new(&self.key);
        execute_resilient(&engine, program, inputs, cfg, faults, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;

    #[test]
    fn session_round_trip() {
        let mut client = Client::new(Params::testing(), 5);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Xor, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let cts = client.encrypt_bits(&[true, false]);
        let out = server.execute(&nl, &cts, 2).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
    }

    #[test]
    fn graph_session_matches_wavefront_and_caches_the_plan() {
        let mut client = Client::new(Params::testing(), 9);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::Nand, a, b).unwrap();
        let z = nl.add_gate(GateKind::Or, x, y).unwrap();
        nl.mark_output(z).unwrap();
        for (bits, seed) in [([true, false], 0), ([true, true], 1), ([false, false], 2)] {
            let cts = client.encrypt_bits(&bits);
            let want = server.execute(&nl, &cts, 2).unwrap();
            let (got, stats) = server.execute_graph(&nl, &cts, 2).unwrap();
            assert_eq!(got, want, "graph replay must be bit-exact with execute");
            assert_eq!(stats.plan_cached, seed > 0, "only the first call captures");
        }
    }

    #[test]
    fn typed_values_round_trip() {
        let mut client = Client::new(Params::testing(), 6);
        let dtype = DType::SInt(6);
        let cts = client.encrypt_values(&[-3.0, 7.0], dtype);
        assert_eq!(cts.len(), 12);
        let back = client.decrypt_values(&cts, dtype);
        assert_eq!(back, vec![-3.0, 7.0]);
    }

    #[test]
    fn resilient_session_round_trip() {
        use pytfhe_backend::{MemoryCheckpointStore, ResilientConfig, RetryPolicy, SeededFaults};
        let mut client = Client::new(Params::testing(), 8);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::And, a, b).unwrap();
        let z = nl.add_gate(GateKind::Or, x, y).unwrap();
        nl.mark_output(z).unwrap();
        let cts = client.encrypt_bits(&[true, false]);
        let cfg = ResilientConfig { workers: 2, retry: RetryPolicy::fast(), checkpoint_every: 1 };
        let faults = SeededFaults::new(13).with_fail_prob(0.2);
        let mut store = MemoryCheckpointStore::new();
        let (out, stats) =
            server.execute_resilient(&nl, &cts, &cfg, &faults, Some(&mut store)).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
        assert!(stats.checkpoints > 0);
        assert!(store.latest().is_some());
    }

    #[test]
    fn noise_guard_rejects_weak_parameters_and_admits_loose_thresholds() {
        let mut client = Client::new(Params::testing(), 11);
        // The insecure test parameters predict an appreciable per-gate
        // failure probability; a strict guard must refuse the key.
        let err = Server::with_noise_guard(client.make_server_key(), NoiseGuard::default())
            .expect_err("testing params should fail the default guard");
        assert!(matches!(err, TfheError::NoiseBudgetExceeded { .. }), "{err:?}");
        // The same key is admitted once the threshold is loosened.
        let server =
            Server::with_noise_guard(client.make_server_key(), NoiseGuard::max_probability(1.0))
                .unwrap();
        let cts = client.encrypt_bits(&[true]);
        assert_eq!(client.decrypt_bits(&cts), vec![true]);
        drop(server);
    }

    #[test]
    fn warm_start_rebuilds_the_session_from_disk() {
        let dir = std::env::temp_dir().join(format!("pytfhe-warmstart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Nand, a, b).unwrap();
        nl.mark_output(g).unwrap();

        let mut client = Client::new(Params::testing(), 12);
        // First process: install the key, capture and persist the plan.
        {
            let store = DiskStore::open(&dir).unwrap();
            let server = Server::with_store(client.make_server_key(), store).unwrap();
            let cts = client.encrypt_bits(&[true, true]);
            let (out, stats) = server.execute_graph(&nl, &cts, 1).unwrap();
            assert!(!stats.plan_cached, "first sight of the program must capture");
            assert_eq!(client.decrypt_bits(&out), vec![false]);
        }
        // Second process: no key shipped, no capture — everything
        // restores from the store directory.
        {
            let store = DiskStore::open(&dir).unwrap();
            let server = Server::warm_start(store).unwrap().expect("a key is on disk");
            let cts = client.encrypt_bits(&[true, false]);
            let (out, stats) = server.execute_graph(&nl, &cts, 1).unwrap();
            assert!(stats.plan_cached, "warm-started plan must skip capture");
            assert_eq!(client.decrypt_bits(&out), vec![true]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_warm_start_does_not_bump_the_warm_start_counter() {
        let dir = std::env::temp_dir().join(format!("pytfhe-warmstart-ctr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut client = Client::new(Params::testing(), 14);
        drop(Server::with_store(client.make_server_key(), DiskStore::open(&dir).unwrap()).unwrap());
        // Open the store first, then sabotage the plan directory: the key
        // decodes fine, but the plan rebuild that follows must fail the
        // warm start — and a failed warm start must not count as one.
        let store = DiskStore::open(&dir).unwrap();
        std::fs::remove_dir_all(dir.join("plans")).unwrap();
        std::fs::write(dir.join("plans"), b"not a directory").unwrap();
        let counter = || {
            telemetry::metrics()
                .snapshot()
                .counters
                .get("session_keys_warm_started_total")
                .copied()
                .unwrap_or(0)
        };
        let before = counter();
        let err = Server::warm_start(store);
        assert!(matches!(err, Err(ExecError::StoreIo(_))), "{err:?}");
        assert_eq!(counter(), before, "a failed warm start must not bump the counter");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_on_an_empty_store_is_none() {
        let dir =
            std::env::temp_dir().join(format!("pytfhe-warmstart-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        assert!(Server::warm_start(store).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_quarantines_corrupt_keys_and_uses_the_intact_one() {
        let dir =
            std::env::temp_dir().join(format!("pytfhe-warmstart-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        // A garbage blob sorts first (content-addressed name) often
        // enough either way: warm start must skip it, quarantine it, and
        // land on the real key.
        store.put_key_blob(b"definitely not a server key").unwrap();
        let mut client = Client::new(Params::testing(), 13);
        drop(Server::with_store(client.make_server_key(), DiskStore::open(&dir).unwrap()).unwrap());
        let server = Server::warm_start(store).unwrap().expect("the intact key should load");
        let cts = client.encrypt_bits(&[false, true]);
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Or, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let out = server.execute(&nl, &cts, 1).unwrap();
        assert_eq!(client.decrypt_bits(&out), vec![true]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_input_count_is_reported() {
        let mut client = Client::new(Params::testing(), 7);
        let server = Server::new(client.make_server_key());
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::And, a, b).unwrap();
        nl.mark_output(g).unwrap();
        let cts = client.encrypt_bits(&[true]);
        assert!(matches!(
            server.execute(&nl, &cts, 1),
            Err(ExecError::InputCountMismatch { expected: 2, got: 1 })
        ));
    }
}
