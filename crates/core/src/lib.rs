//! **PyTFHE** — an end-to-end compilation and execution framework for
//! TFHE applications, reproduced in Rust.
//!
//! This crate is the user-facing facade over the PyTFHE workspace,
//! wiring together the full pipeline of the paper's Figure 2:
//!
//! 1. declare a model with [`chiseltorch`] (PyTorch-compatible API),
//! 2. [`compile`](fn@chiseltorch::compile) it into an optimized gate netlist
//!    (the Chisel → Verilog → Yosys path of the paper, fused — see
//!    DESIGN.md),
//! 3. [`assemble`](pytfhe_asm::assemble) the netlist into the 128-bit
//!    PyTFHE binary format,
//! 4. execute it on a backend: reference, multi-threaded wavefront, or
//!    the cluster/GPU performance simulators,
//! 5. decrypt on the client.
//!
//! The [`Client`]/[`Server`] session types implement the privacy
//! protocol of the paper's Figure 1: the client keeps the secret key and
//! ships only ciphertexts and the public evaluation key; the server
//! computes blindly.
//!
//! # End-to-end example
//!
//! ```
//! use pytfhe::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1-2. Declare and compile a (tiny) model.
//! let dtype = DType::Fixed { width: 8, frac: 4 };
//! let model = nn::Sequential::new(dtype).add(nn::ReLU::new());
//! let compiled = chiseltorch::compile(&model, &[2])?;
//!
//! // 3. Assemble the PyTFHE binary and reload it, as the server would.
//! let binary = pytfhe_asm::assemble(compiled.netlist());
//! let program = pytfhe_asm::disassemble(&binary)?;
//!
//! // 4-5. Encrypted round trip (insecure test parameters for speed).
//! let mut client = Client::new(Params::testing(), 42);
//! let server = Server::new(client.make_server_key());
//! let input = client.encrypt_values(&[-1.5, 0.75], dtype);
//! let output = server.execute(&program, &input, 1)?;
//! let result = client.decrypt_values(&output, dtype);
//! assert_eq!(result, vec![0.0, 0.75]);
//! # Ok(())
//! # }
//! ```

mod session;

pub use session::{Client, NoiseGuard, Server};

pub use chiseltorch;
pub use pytfhe_asm;
pub use pytfhe_backend;
pub use pytfhe_hdl;
pub use pytfhe_netlist;
pub use pytfhe_tfhe;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::{Client, NoiseGuard, Server};
    pub use chiseltorch::{self, nn, DType, PlainTensor, Tensor};
    pub use pytfhe_asm;
    pub use pytfhe_backend::{execute, execute_parallel, DiskStore, PlainEngine, TfheEngine};
    pub use pytfhe_netlist::{GateKind, Netlist};
    pub use pytfhe_tfhe::{Params, SecureRng};
}
