//! Baseline-framework lowerings for the paper's comparison experiments
//! (Sections III-B, V-B and V-C; Figures 12-14 and Table IV).
//!
//! The paper compares PyTFHE against three TFHE frameworks — Google's
//! Transpiler, Cingulata, and E3 — by building the same `MNIST_S` model
//! in each and measuring the gates they emit (their runtimes are then
//! *estimated* as `gate count / single-core TFHE throughput`, footnote 1
//! of the paper). This crate reproduces that methodology: one
//! [`LoweringProfile`] per framework captures the characteristic
//! compilation decisions the paper attributes to it, and
//! [`lower_mnist`] emits a *real, runnable netlist* for the same model
//! under each profile:
//!
//! * **PyTFHE** — narrow fixed-point data types, constant folding of
//!   plaintext weights, reshape-as-wiring, sign-bit ReLU, and the full
//!   netlist optimization pipeline;
//! * **Cingulata** — an integer DSL: 16-bit arithmetic, DSL-level
//!   constant propagation, but "no gate-level or boolean optimizations"
//!   (Section III-B) and comparator-based non-linearities;
//! * **E3** — hardcoded byte-aligned gate templates: 16-bit integers,
//!   no constant folding at all, no optimizations;
//! * **Transpiler** — C semantics in total ordering: native 32-bit
//!   `int` arithmetic, no folding, and buffer gates for `Flatten`
//!   ("Transpiler still emitted gates for the Flatten layer",
//!   Section V-C).

mod estimate;
mod lowering;
mod profiles;

pub use estimate::{estimated_single_core_s, ComparisonRow};
pub use lowering::{lower_mnist, MnistScale};
pub use profiles::{all_profiles, LoweringProfile, OptLevel};
