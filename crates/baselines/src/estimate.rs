//! Runtime estimation and comparison rows — the paper's methodology for
//! Figure 13 and Table IV (footnote 1: baseline runtimes are "estimated
//! using the gate count divided by the average throughput of the TFHE
//! library running on a single CPU core").

use pytfhe_backend::cost::CpuCostModel;
use pytfhe_netlist::Netlist;

/// Estimated single-core runtime of a netlist: bootstrapped gates times
/// per-gate cost.
pub fn estimated_single_core_s(nl: &Netlist, cost: &CpuCostModel) -> f64 {
    nl.num_bootstrapped_gates() as f64 * cost.gate_s()
}

/// One row of a framework-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Framework name.
    pub name: String,
    /// Bootstrapped gate count of its `MNIST_S` netlist.
    pub gates: usize,
    /// Estimated single-core runtime in seconds.
    pub single_core_s: f64,
}

impl ComparisonRow {
    /// Builds a row from a lowered netlist.
    pub fn new(name: impl Into<String>, nl: &Netlist, cost: &CpuCostModel) -> Self {
        ComparisonRow {
            name: name.into(),
            gates: nl.num_bootstrapped_gates(),
            single_core_s: estimated_single_core_s(nl, cost),
        }
    }

    /// Speedup of `self` over `other` under the estimate (Table IV
    /// entries are `other / self`).
    pub fn speedup_over(&self, other: &ComparisonRow) -> f64 {
        other.single_core_s / self.single_core_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_profiles, lower_mnist, MnistScale};

    #[test]
    fn estimate_is_gate_count_times_gate_cost() {
        let cost = CpuCostModel::paper();
        let nl = lower_mnist(&crate::LoweringProfile::pytfhe(), MnistScale::Small);
        let est = estimated_single_core_s(&nl, &cost);
        let expect = nl.num_bootstrapped_gates() as f64 * cost.gate_s();
        assert!((est - expect).abs() < 1e-9);
        assert!(est > 0.0);
    }

    #[test]
    fn comparison_rows_rank_like_table_iv() {
        let cost = CpuCostModel::paper();
        let rows: Vec<ComparisonRow> = all_profiles()
            .iter()
            .map(|p| ComparisonRow::new(p.name, &lower_mnist(p, MnistScale::Small), &cost))
            .collect();
        let py = &rows[0];
        for other in &rows[1..] {
            assert!(py.speedup_over(other) > 1.0, "PyTFHE faster than {}", other.name);
        }
    }
}
