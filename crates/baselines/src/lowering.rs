//! The shared `MNIST_S` model, lowered under each framework's profile.
//!
//! All four frameworks compute *the same function* (the VIP-Bench MNIST
//! network: `Conv2d(1,1,3,1) → ReLU → MaxPool2d(3,1) → Flatten →
//! Linear(…, 10)`, Figure 4 of the paper) with the same deterministic
//! weights; only the lowering decisions differ. The emitted netlists are
//! real circuits — they can be executed and their outputs agree up to
//! each framework's fixed-point precision.

use crate::profiles::{LoweringProfile, OptLevel};
use pytfhe_hdl::{Bit, Circuit, Word};
use pytfhe_netlist::opt::{dce, optimize, OptConfig};
use pytfhe_netlist::Netlist;

/// Model instance size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnistScale {
    /// A miniature instance for functional tests.
    Small,
    /// The evaluation-sized instance (10×10 input, 10 classes).
    Paper,
}

impl MnistScale {
    fn dims(self) -> (usize, usize, usize) {
        // (image side, pool kernel, classes)
        match self {
            MnistScale::Small => (6, 2, 4),
            MnistScale::Paper => (10, 3, 10),
        }
    }
}

/// Deterministic weights shared by all frameworks.
fn weight_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.5
    }
}

/// Quantizes a weight to the profile's fixed-point grid and returns the
/// constant word (folded or materialized depending on the profile).
fn weight_word(c: &mut Circuit, p: &LoweringProfile, w: f64) -> Word {
    let raw = (w * (p.frac as f64).exp2()).round() as i64;
    let word = Word::constant(raw, p.width);
    if p.fold_constants {
        word
    } else {
        // Materialize every constant bit as a gate-backed signal, the way
        // a framework with hardcoded gate templates computes on them.
        let bits = word.bits().iter().map(|b| Bit::Node(c.materialize(*b))).collect();
        Word::from_bits(bits)
    }
}

/// Fixed-point multiply under the profile: full signed product, then
/// realign the binary point.
fn fx_mul(c: &mut Circuit, p: &LoweringProfile, a: &Word, b: &Word) -> Word {
    let wide = if p.naive_multiplier { c.mul_signed_ext(a, b) } else { c.mul_signed(a, b) };
    wide.asr_const(p.frac).slice(0, p.width)
}

/// ReLU under the profile.
fn relu(c: &mut Circuit, p: &LoweringProfile, x: &Word) -> Word {
    if p.relu_via_compare {
        // Generic DSL lowering: `x > 0 ? x : 0` through a comparator and
        // a full mux.
        let zero = Word::zeros(p.width);
        let pos = c.lt_signed(&zero, x).expect("same widths");
        c.mux_word(pos, x, &zero).expect("same widths")
    } else {
        // Bit-level lowering: mask by the negated sign bit.
        let keep = c.not(x.msb());
        x.bits().iter().map(|&b| c.and(b, keep)).collect()
    }
}

/// Max of two values under the profile (always comparator-based; all
/// four frameworks can do this).
fn max2(c: &mut Circuit, a: &Word, b: &Word) -> Word {
    let lt = c.lt_signed(a, b).expect("same widths");
    c.mux_word(lt, b, a).expect("same widths")
}

/// Balanced-tree sum.
fn sum_tree(c: &mut Circuit, words: &[Word]) -> Word {
    let mut layer = words.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 { c.add(&pair[0], &pair[1]) } else { pair[0].clone() });
        }
        layer = next;
    }
    layer.pop().expect("nonempty")
}

/// Lowers the shared MNIST model under `profile`.
pub fn lower_mnist(profile: &LoweringProfile, scale: MnistScale) -> Netlist {
    let p = profile;
    let (side, pool_k, classes) = scale.dims();
    let conv_out = side - 2; // 3x3 kernel, stride 1
    let pool_out = conv_out - pool_k + 1; // stride 1
    let features = pool_out * pool_out;

    let mut c = if p.fold_constants { Circuit::new() } else { Circuit::without_folding() };
    let input = c.input_word("input", side * side * p.width);
    let px =
        |i: usize, j: usize| input.slice((i * side + j) * p.width, (i * side + j + 1) * p.width);

    let mut weights = weight_stream(0x5eed);
    // Conv2d(1, 1, 3, 1) + bias.
    let kernel: Vec<f64> = (0..9).map(|_| weights()).collect();
    let conv_bias = weights();
    let mut conv = Vec::with_capacity(conv_out * conv_out);
    for i in 0..conv_out {
        for j in 0..conv_out {
            let mut terms = Vec::with_capacity(10);
            for ky in 0..3 {
                for kx in 0..3 {
                    let w = weight_word(&mut c, p, kernel[ky * 3 + kx]);
                    terms.push(fx_mul(&mut c, p, &px(i + ky, j + kx), &w));
                }
            }
            terms.push(weight_word(&mut c, p, conv_bias));
            conv.push(sum_tree(&mut c, &terms));
        }
    }
    // ReLU.
    let activated: Vec<Word> = conv.iter().map(|x| relu(&mut c, p, x)).collect();
    // MaxPool2d(pool_k, 1).
    let mut pooled = Vec::with_capacity(features);
    for i in 0..pool_out {
        for j in 0..pool_out {
            let mut m = activated[i * conv_out + j].clone();
            for ky in 0..pool_k {
                for kx in 0..pool_k {
                    if ky == 0 && kx == 0 {
                        continue;
                    }
                    let v = &activated[(i + ky) * conv_out + (j + kx)];
                    m = max2(&mut c, &m, v);
                }
            }
            pooled.push(m);
        }
    }
    // Flatten: wiring for most frameworks; one BUF per bit for the
    // Transpiler (Section V-C).
    let flat: Vec<Word> = if p.flatten_buffers {
        pooled
            .iter()
            .map(|w| w.bits().iter().map(|&b| c.emit_buffer(b)).collect::<Word>())
            .collect()
    } else {
        pooled
    };
    // Linear(features, classes).
    let mut logits = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut terms = Vec::with_capacity(features + 1);
        for f in flat.iter() {
            let w = weight_word(&mut c, p, weights());
            terms.push(fx_mul(&mut c, p, f, &w));
        }
        terms.push(weight_word(&mut c, p, weights()));
        logits.push(sum_tree(&mut c, &terms));
    }
    let mut bits = Vec::new();
    for l in &logits {
        bits.extend_from_slice(l.bits());
    }
    c.output_word("logits", &Word::from_bits(bits));
    let nl = c.finish().expect("netlist");
    match p.opt {
        OptLevel::None => nl,
        OptLevel::DceOnly => dce(&nl).0,
        OptLevel::Full => optimize(&nl, &OptConfig::default()).expect("optimization").0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::all_profiles;

    fn encode(vals: &[f64], width: usize, frac: usize) -> Vec<bool> {
        vals.iter()
            .flat_map(|&v| {
                let raw = (v * (frac as f64).exp2()).round() as i64;
                (0..width).map(move |i| (raw >> i.min(63)) & 1 == 1)
            })
            .collect()
    }

    fn decode(bits: &[bool], width: usize, frac: usize) -> Vec<f64> {
        bits.chunks(width)
            .map(|ch| {
                let raw: i64 =
                    ch.iter().enumerate().fold(0, |acc, (i, &b)| acc | (i64::from(b) << i));
                let signed = if raw >> (width - 1) & 1 == 1 { raw - (1 << width) } else { raw };
                signed as f64 / (frac as f64).exp2()
            })
            .collect()
    }

    #[test]
    fn all_frameworks_compute_the_same_function() {
        // Evaluate the small model under every profile on the same input
        // and require agreement within fixed-point precision.
        let input: Vec<f64> = (0..36).map(|i| ((i % 7) as f64 - 3.0) / 4.0).collect();
        let mut reference: Option<Vec<f64>> = None;
        for p in all_profiles() {
            let nl = lower_mnist(&p, MnistScale::Small);
            let bits = encode(&input, p.width, p.frac);
            let out = decode(&nl.eval_plain(&bits), p.width, p.frac);
            assert_eq!(out.len(), 4, "{}", p.name);
            match &reference {
                None => reference = Some(out),
                Some(want) => {
                    for (g, w) in out.iter().zip(want) {
                        assert!((g - w).abs() < 0.6, "{}: {g} vs reference {w}", p.name);
                    }
                }
            }
        }
    }

    #[test]
    fn gate_counts_reproduce_figure_14_ordering() {
        // Figure 14: PyTFHE < Cingulata < E3 << Transpiler.
        let counts: Vec<(String, usize)> = all_profiles()
            .iter()
            .map(|p| {
                (p.name.to_string(), lower_mnist(p, MnistScale::Small).num_bootstrapped_gates())
            })
            .collect();
        let get = |n: &str| counts.iter().find(|(name, _)| name == n).unwrap().1;
        let (py, cing, e3, gt) = (get("PyTFHE"), get("Cingulata"), get("E3"), get("Transpiler"));
        assert!(py < cing, "PyTFHE {py} < Cingulata {cing}");
        assert!(cing < e3, "Cingulata {cing} < E3 {e3}");
        assert!(e3 < gt, "E3 {e3} < Transpiler {gt}");
        // Rough magnitudes: Cingulata/E3 within a few x, Transpiler
        // an order of magnitude up (the paper's 28x band).
        // Figure 14 of the paper: PyTFHE is 65.3 % of Cingulata's gate
        // count (ratio ~1.53) and 53.6 % of E3's (~1.87); the Transpiler
        // is more than an order of magnitude larger (Table IV: ~28x).
        let r_cing = cing as f64 / py as f64;
        let r_e3 = e3 as f64 / py as f64;
        let r_gt = gt as f64 / py as f64;
        assert!(r_cing > 1.2 && r_cing < 2.0, "Cingulata ratio {r_cing}");
        assert!(r_e3 > 1.5 && r_e3 < 2.5, "E3 ratio {r_e3}");
        assert!(r_gt > 10.0 && r_gt < 40.0, "Transpiler ratio {r_gt}");
    }

    #[test]
    fn transpiler_emits_flatten_buffers() {
        use pytfhe_netlist::{GateHistogram, GateKind};
        let gt = lower_mnist(&crate::LoweringProfile::transpiler(), MnistScale::Small);
        let py = lower_mnist(&crate::LoweringProfile::pytfhe(), MnistScale::Small);
        assert!(GateHistogram::of(&gt).count(GateKind::Buf) > 0);
        assert_eq!(GateHistogram::of(&py).count(GateKind::Buf), 0);
    }
}
