/// How much netlist-level cleanup a framework performs after lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Emit gates verbatim (the Transpiler's statically-mapped output).
    None,
    /// Dead-gate sweeping only — what any reasonable DSL code generator
    /// does (unused product bits are not emitted), but no boolean
    /// optimization ("Both Cingulata and E3 do not provide any gate-level
    /// or boolean optimizations", Section III-B).
    DceOnly,
    /// The full PyTFHE pipeline: constant folding, inverter absorption,
    /// CSE and DCE.
    Full,
}

/// The compilation decisions that distinguish the four frameworks.
///
/// Every flag corresponds to a behaviour the paper calls out; see the
/// [crate documentation](crate) for the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweringProfile {
    /// Framework name as used in the paper's figures.
    pub name: &'static str,
    /// Total bit width of the fixed-point values the framework computes
    /// on (PyTFHE: parameterizable and narrow; Cingulata/E3: the DSL's
    /// integer width; Transpiler: C `int`).
    pub width: usize,
    /// Fractional bits of the fixed-point interpretation.
    pub frac: usize,
    /// Whether plaintext constants (model weights) fold into the circuit
    /// at build time.
    pub fold_constants: bool,
    /// Post-lowering netlist cleanup level.
    pub opt: OptLevel,
    /// Whether `Flatten`/reshape emits one buffer gate per bit instead of
    /// pure wiring.
    pub flatten_buffers: bool,
    /// Whether `ReLU` is lowered through a generic comparator-plus-mux
    /// (frameworks without bit-level control) instead of the sign-bit
    /// masking trick.
    pub relu_via_compare: bool,
    /// Whether signed multiplication uses the naive sign-extension array
    /// (HLS-style statically mapped code) instead of the Baugh-Wooley
    /// formulation that hand-tuned gate libraries use.
    pub naive_multiplier: bool,
}

impl LoweringProfile {
    /// PyTFHE's own lowering (the reference all speedups are relative
    /// to).
    pub fn pytfhe() -> Self {
        LoweringProfile {
            name: "PyTFHE",
            width: 12,
            frac: 6,
            fold_constants: true,
            opt: OptLevel::Full,
            flatten_buffers: false,
            relu_via_compare: false,
            naive_multiplier: false,
        }
    }

    /// Cingulata-style lowering.
    pub fn cingulata() -> Self {
        LoweringProfile {
            name: "Cingulata",
            width: 14,
            frac: 6,
            fold_constants: true, // DSL-level constant propagation
            opt: OptLevel::DceOnly,
            flatten_buffers: false,
            relu_via_compare: true,
            naive_multiplier: false,
        }
    }

    /// E3-style lowering.
    pub fn e3() -> Self {
        LoweringProfile {
            name: "E3",
            width: 16, // byte-aligned: two 8-bit limbs
            frac: 6,
            fold_constants: true,
            opt: OptLevel::DceOnly,
            flatten_buffers: false,
            relu_via_compare: true,
            naive_multiplier: false,
        }
    }

    /// Google-Transpiler-style lowering.
    pub fn transpiler() -> Self {
        LoweringProfile {
            name: "Transpiler",
            width: 32, // C native `int`
            frac: 6,
            fold_constants: true, // XLS constant propagation
            opt: OptLevel::None,
            flatten_buffers: true,
            relu_via_compare: true,
            naive_multiplier: true,
        }
    }
}

/// All four profiles, PyTFHE first.
pub fn all_profiles() -> [LoweringProfile; 4] {
    [
        LoweringProfile::pytfhe(),
        LoweringProfile::cingulata(),
        LoweringProfile::e3(),
        LoweringProfile::transpiler(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_named() {
        let ps = all_profiles();
        assert_eq!(ps[0].name, "PyTFHE");
        let mut names: Vec<_> = ps.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn pytfhe_is_the_only_fully_optimizing_profile() {
        for p in all_profiles() {
            assert_eq!(p.opt == OptLevel::Full, p.name == "PyTFHE", "{}", p.name);
        }
    }
}
