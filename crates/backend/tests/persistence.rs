//! Storage-fault integration tests: every persisted artifact format —
//! server keys, kernel plans, checkpoints — must survive a barrage of
//! injected storage faults (torn writes, bit flips, stale-version
//! substitution, duplicated renames) by returning a typed error or the
//! exact stale artifact. Never a panic; never silently-accepted
//! garbage. The barrage is seeded and deterministic: a failing case
//! replays bit-for-bit from `(seed, case)`.

use pytfhe_backend::{
    capture, execute, execute_resilient, CaptureConfig, Checkpoint, ExecError, FileCheckpointStore,
    KernelPlan, NoFaults, PlainEngine, ResilientConfig, RetryPolicy, SeededStorageFaults,
    StorageFault,
};
use pytfhe_hdl::Circuit;
use pytfhe_netlist::Netlist;
use pytfhe_tfhe::{io, ClientKey, Params, SecureRng};

/// A `w`-bit widening ripple-carry adder (multiple waves, so resilient
/// runs checkpoint more than once).
fn adder(w: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(w);
    let b = c.input_word_anon(w);
    let sum = c.add_wide_unsigned(&a, &b);
    c.output_word("sum", &sum);
    c.finish().expect("netlist")
}

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

/// One artifact format under test: its good bytes, a *stale but valid*
/// earlier generation, and a decoder returning `Ok(true)` when the
/// decode produced exactly the stale artifact.
type Decoder = Box<dyn Fn(&[u8]) -> Result<DecodedAs, ()>>;

struct Format {
    name: &'static str,
    good: Vec<u8>,
    stale: Vec<u8>,
    decode: Decoder,
}

/// What a successful decode turned out to be.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum DecodedAs {
    Good,
    Stale,
    /// Decoded cleanly but matches neither generation — the silent
    /// acceptance the harness exists to rule out.
    Garbage,
}

fn formats() -> Vec<Format> {
    let mut out = Vec::new();

    // Server key (wire-enveloped `pytfhe-tfhe` format). The stale
    // generation is the same client's key serialized in the legacy
    // parse path — here simply a key from different randomness.
    let mut rng = SecureRng::seed_from_u64(0xA11CE);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let good_key = client.server_key(&mut rng);
    let mut rng2 = SecureRng::seed_from_u64(0xB0B);
    let client2 = ClientKey::generate(Params::testing(), &mut rng2);
    let stale_key = client2.server_key(&mut rng2);
    let good = io::server_key_to_bytes(&good_key).to_vec();
    let stale = io::server_key_to_bytes(&stale_key).to_vec();
    {
        let (good, stale) = (good.clone(), stale.clone());
        out.push(Format {
            name: "server key",
            good: good.clone(),
            stale: stale.clone(),
            decode: Box::new(move |bytes| match io::server_key_from_bytes(bytes) {
                Err(_) => Err(()),
                Ok(k) => {
                    let re = io::server_key_to_bytes(&k).to_vec();
                    if re == good {
                        Ok(DecodedAs::Good)
                    } else if re == stale {
                        Ok(DecodedAs::Stale)
                    } else {
                        Ok(DecodedAs::Garbage)
                    }
                }
            }),
        });
    }

    // Kernel plan. Stale = the plan of a *smaller* program.
    let good_plan = capture(&adder(6), &CaptureConfig::default()).unwrap();
    let stale_plan = capture(&adder(3), &CaptureConfig::default()).unwrap();
    {
        let (g, s) = (good_plan.clone(), stale_plan.clone());
        out.push(Format {
            name: "kernel plan",
            good: good_plan.to_bytes(),
            stale: stale_plan.to_bytes(),
            decode: Box::new(move |bytes| match KernelPlan::from_bytes(bytes) {
                Err(_) => Err(()),
                Ok(p) if p == g => Ok(DecodedAs::Good),
                Ok(p) if p == s => Ok(DecodedAs::Stale),
                Ok(_) => Ok(DecodedAs::Garbage),
            }),
        });
    }

    // Checkpoint. Stale = an earlier wave of the same run.
    let good_ckpt = Checkpoint::capture(7, 0xFEED, [(1u32, &true), (4u32, &false), (9u32, &true)]);
    let stale_ckpt = Checkpoint::capture(3, 0xFEED, [(1u32, &false), (2u32, &true)]);
    {
        let (g, s) = (good_ckpt.clone(), stale_ckpt.clone());
        out.push(Format {
            name: "checkpoint",
            good: good_ckpt.to_bytes(),
            stale: stale_ckpt.to_bytes(),
            decode: Box::new(move |bytes| match Checkpoint::from_bytes(bytes) {
                Err(_) => Err(()),
                Ok(c) if c == g => Ok(DecodedAs::Good),
                Ok(c) if c == s => Ok(DecodedAs::Stale),
                Ok(_) => Ok(DecodedAs::Garbage),
            }),
        });
    }
    out
}

/// The headline robustness guarantee: ≥1000 deterministic storage-fault
/// cases across all three persisted formats, with zero panics and zero
/// silently-accepted garbage. A stale-version substitution is the one
/// fault a byte-level decoder *cannot* see — it must decode to exactly
/// the stale artifact (semantic rejection then happens at the
/// fingerprint/wave layer); every other fault must be a typed error.
#[test]
fn thousand_storage_faults_no_panic_no_silent_acceptance() {
    const CASES_PER_FORMAT: u64 = 400; // 3 formats × 400 = 1200 cases
    let inj = SeededStorageFaults::new(0xC0FFEE);
    let mut total = 0u64;
    let mut rejected = 0u64;
    let mut stale_ok = 0u64;
    for fmt in formats() {
        assert_eq!(
            (fmt.decode)(&fmt.good),
            Ok(DecodedAs::Good),
            "{}: clean bytes must decode",
            fmt.name
        );
        for case in 0..CASES_PER_FORMAT {
            let fault = inj.fault(case, fmt.good.len());
            let mutated = inj.corrupt(case, &fmt.good, &fmt.stale);
            total += 1;
            match (fmt.decode)(&mutated) {
                Err(()) => rejected += 1,
                Ok(DecodedAs::Stale) => {
                    assert_eq!(
                        fault,
                        StorageFault::StaleVersion,
                        "{}: case {case} decoded as stale under a non-stale fault",
                        fmt.name
                    );
                    stale_ok += 1;
                }
                Ok(kind) => {
                    panic!("{}: case {case} ({fault:?}) silently accepted as {kind:?}", fmt.name)
                }
            }
        }
    }
    assert!(total >= 1000, "harness must exercise at least 1000 cases, ran {total}");
    assert_eq!(rejected + stale_ok, total);
    assert!(rejected > 0 && stale_ok > 0, "both outcomes must occur ({rejected}/{stale_ok})");
}

/// End-to-end recovery: a resilient run whose *current* checkpoint file
/// was corrupted on disk must fall back to the previous intact
/// generation, quarantine the rotten file, and still produce bit-exact
/// results.
#[test]
fn resilient_run_recovers_through_a_corrupted_checkpoint() {
    let dir = std::env::temp_dir().join(format!("pytfhe-persist-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let nl = adder(6);
    let inputs: Vec<bool> = [to_bits(23, 6), to_bits(45, 6)].concat();
    let engine = PlainEngine::new();
    let (want, _) = execute(&engine, &nl, &inputs).unwrap();

    let cfg = ResilientConfig { workers: 2, retry: RetryPolicy::fast(), checkpoint_every: 1 };
    let mut store = FileCheckpointStore::new(&path);
    let (out, stats) =
        execute_resilient(&engine, &nl, &inputs, &cfg, &NoFaults, Some(&mut store)).unwrap();
    assert_eq!(out, want);
    assert!(stats.checkpoints >= 2, "need at least two generations on disk");
    assert!(store.prev_path().exists());

    // Rot the current generation: flip a byte in the middle.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    // The re-run must load the previous generation (skipping some
    // waves), finish, and agree bit-for-bit with the plain execution.
    let (out2, stats2) =
        execute_resilient(&engine, &nl, &inputs, &cfg, &NoFaults, Some(&mut store)).unwrap();
    assert_eq!(out2, want);
    assert!(
        stats2.resumed_from_wave.is_some(),
        "the fallback generation should have resumed the run: {stats2:?}"
    );
    assert!(store.quarantine_path().exists(), "the rotten file must be quarantined");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both generations rotten: the run restarts from scratch (wave zero)
/// rather than erroring out or resuming from garbage.
#[test]
fn resilient_run_restarts_when_every_generation_is_rotten() {
    let dir = std::env::temp_dir().join(format!("pytfhe-persist-rotten-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let nl = adder(4);
    let inputs: Vec<bool> = [to_bits(5, 4), to_bits(9, 4)].concat();
    let engine = PlainEngine::new();
    let (want, _) = execute(&engine, &nl, &inputs).unwrap();

    let cfg = ResilientConfig { workers: 2, retry: RetryPolicy::fast(), checkpoint_every: 1 };
    let mut store = FileCheckpointStore::new(&path);
    execute_resilient(&engine, &nl, &inputs, &cfg, &NoFaults, Some(&mut store)).unwrap();
    std::fs::write(&path, b"rot").unwrap();
    std::fs::write(store.prev_path(), b"more rot").unwrap();

    let (out, stats) =
        execute_resilient(&engine, &nl, &inputs, &cfg, &NoFaults, Some(&mut store)).unwrap();
    assert_eq!(out, want);
    assert_eq!(stats.resumed_from_wave, None, "nothing intact to resume from");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checkpoint from a different program must still be refused after
/// the envelope migration (the semantic guard sits above the codec).
#[test]
fn foreign_checkpoints_are_still_refused() {
    let nl = adder(4);
    let other = adder(5);
    let inputs: Vec<bool> = [to_bits(1, 4), to_bits(2, 4)].concat();
    let engine = PlainEngine::new();
    let cfg = ResilientConfig { workers: 1, retry: RetryPolicy::fast(), checkpoint_every: 1 };

    let mut store = pytfhe_backend::MemoryCheckpointStore::new();
    let other_inputs: Vec<bool> = [to_bits(1, 5), to_bits(2, 5)].concat();
    execute_resilient(&engine, &other, &other_inputs, &cfg, &NoFaults, Some(&mut store)).unwrap();
    let err = execute_resilient(&engine, &nl, &inputs, &cfg, &NoFaults, Some(&mut store))
        .expect_err("a foreign checkpoint must not resume this program");
    assert!(matches!(err, ExecError::BadCheckpoint { .. }), "{err:?}");
}
