//! Cross-validation: the runtime evaluator (`Evaluator`/`RtWord`, the
//! interpreter path) and the compiled path (`pytfhe-hdl` circuits through
//! the executor) must compute identical results — two independent
//! implementations of the same arithmetic, checked against each other.

use pytfhe_backend::runtime::{Evaluator, RtWord};
use pytfhe_backend::{execute, PlainEngine};
use pytfhe_hdl::Circuit;

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[test]
fn runtime_and_compiled_paths_agree_on_arithmetic() {
    let w = 6;
    // Compiled path: a circuit computing (a + b, a - b, a * b, a < b).
    let mut c = Circuit::new();
    let a = c.input_word("a", w);
    let b = c.input_word("b", w);
    let sum = c.add(&a, &b);
    let diff = c.sub(&a, &b);
    let prod = c.mul_unsigned(&a, &b);
    let lt = c.lt_unsigned(&a, &b).expect("widths");
    c.output_word("sum", &sum);
    c.output_word("diff", &diff);
    c.output_word("prod", &prod);
    c.output_word("lt", &pytfhe_hdl::Word::from_bits(vec![lt]));
    let nl = c.finish().expect("netlist");

    let engine = PlainEngine::new();
    let mut ev = Evaluator::new(&engine);
    let mut state = 0x5eed_1234u64;
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = (state >> 7) & 63;
        let y = (state >> 40) & 63;
        // Compiled.
        let mut input = to_bits(x, w);
        input.extend(to_bits(y, w));
        let (out, _) = execute(&engine, &nl, &input).expect("runs");
        // Runtime.
        let ra = RtWord::from_bits(to_bits(x, w));
        let rb = RtWord::from_bits(to_bits(y, w));
        let r_sum = ev.add(&ra, &rb);
        let r_diff = ev.sub(&ra, &rb);
        let r_prod = ev.mul_unsigned(&ra, &rb);
        let r_lt = ev.lt_unsigned(&ra, &rb);
        assert_eq!(from_bits(&out[..w]), from_bits(r_sum.bits()), "{x}+{y}");
        assert_eq!(from_bits(&out[w..2 * w]), from_bits(r_diff.bits()), "{x}-{y}");
        assert_eq!(from_bits(&out[2 * w..4 * w]), from_bits(r_prod.bits()), "{x}*{y}");
        assert_eq!(out[4 * w], r_lt, "{x}<{y}");
    }
}

#[test]
fn runtime_select_matches_compiled_mux() {
    let w = 5;
    let mut c = Circuit::new();
    let s = c.input_word("s", 1);
    let a = c.input_word("a", w);
    let b = c.input_word("b", w);
    let m = c.mux_word(s.bit(0), &a, &b).expect("widths");
    c.output_word("m", &m);
    let nl = c.finish().expect("netlist");
    let engine = PlainEngine::new();
    let mut ev = Evaluator::new(&engine);
    for sel in [false, true] {
        for (x, y) in [(1u64, 30u64), (17, 4), (0, 31)] {
            let mut input = vec![sel];
            input.extend(to_bits(x, w));
            input.extend(to_bits(y, w));
            let (out, _) = execute(&engine, &nl, &input).expect("runs");
            let r = ev.select(
                &sel,
                &RtWord::from_bits(to_bits(x, w)),
                &RtWord::from_bits(to_bits(y, w)),
            );
            assert_eq!(from_bits(&out), from_bits(r.bits()), "sel={sel} {x} {y}");
        }
    }
}
