//! End-to-end coverage of the [`ExecStats`] counters: the fault-path
//! counters under the resilient executor with seeded faults, the
//! batching counters under the kernel-graph executor, and the flow of
//! both into the telemetry metrics registry and the stable JSON shape.

use pytfhe_backend::{
    execute, execute_parallel, execute_resilient, ExecStats, KernelGraph, MemoryCheckpointStore,
    PlainEngine, ResilientConfig, RetryPolicy, SeededFaults,
};
use pytfhe_hdl::Circuit;
use pytfhe_netlist::topo::LevelSchedule;
use pytfhe_netlist::Netlist;
use pytfhe_telemetry as telemetry;

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

/// A `w`-bit widening ripple-carry adder.
fn adder(w: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(w);
    let b = c.input_word_anon(w);
    let sum = c.add_wide_unsigned(&a, &b);
    c.output_word("sum", &sum);
    c.finish().expect("netlist")
}

/// A maximally wide one-wave circuit: `n` independent gates.
fn wide(n: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(1);
    let b = c.input_word_anon(1);
    let bits: Vec<_> = (0..n).map(|_| c.nand(a.bit(0), b.bit(0))).collect();
    c.output_word("out", &bits.into_iter().collect());
    c.finish().expect("netlist")
}

fn cfg(workers: usize) -> ResilientConfig {
    ResilientConfig { workers, retry: RetryPolicy::fast(), checkpoint_every: 1 }
}

#[test]
fn resilient_stats_count_retries_and_checkpoints_under_seeded_faults() {
    let engine = PlainEngine::new();
    let nl = adder(8);
    let nonempty_waves = LevelSchedule::compute(&nl).waves.iter().filter(|w| !w.is_empty()).count();
    let mut input = to_bits(173, 8);
    input.extend(to_bits(91, 8));
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");
    let mut total_retries = 0u64;
    for seed in 1..=8u64 {
        let faults = SeededFaults::new(seed).with_fail_prob(0.25);
        let mut store = MemoryCheckpointStore::new();
        let (got, stats) =
            execute_resilient(&engine, &nl, &input, &cfg(4), &faults, Some(&mut store))
                .expect("retries absorb the injected failures");
        assert_eq!(got, want, "seed {seed}: faults must not change the result");
        assert_eq!(stats.gates, nl.num_gates());
        assert_eq!(stats.checkpoints, nonempty_waves, "checkpoint_every=1 writes every wave");
        assert_eq!(stats.resumed_from_wave, None, "fresh store never resumes");
        assert_eq!(stats.evicted_workers, 0, "fail_prob faults retry, they do not crash");
        total_retries += stats.retries;
    }
    assert!(total_retries > 0, "25% task failure over 8 seeds must retry at least once");
}

#[test]
fn resilient_stats_count_evicted_workers() {
    let engine = PlainEngine::new();
    let nl = wide(64);
    let wave =
        LevelSchedule::compute(&nl).waves.iter().position(|w| !w.is_empty()).expect("gate wave");
    let input = vec![true, true];
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");
    let faults = SeededFaults::new(3).with_worker_crash(1, wave).with_worker_crash(3, wave);
    let (got, stats) =
        execute_resilient(&engine, &nl, &input, &cfg(4), &faults, None).expect("survivors finish");
    assert_eq!(got, want);
    assert_eq!(stats.evicted_workers, 2);
    assert_eq!(stats.gates, nl.num_gates());
}

#[test]
fn graph_stats_count_batches_launches_and_plan_cache() {
    let engine = PlainEngine::new();
    let nl = adder(6);
    let graph = KernelGraph::new();
    let mut input = to_bits(21, 6);
    input.extend(to_bits(42, 6));
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");

    let (got, first) = graph.execute(&engine, &nl, &input, 2).expect("first run");
    assert_eq!(got, want);
    assert!(!first.plan_cached, "first run captures");
    assert!(first.batches > 0, "plan must contain at least one batch");
    assert!(first.kernel_launches > 0, "batched kernels must launch");
    assert_eq!(
        first.kernels_by_kind.iter().sum::<u64>(),
        first.kernel_launches,
        "per-kind launches must partition the total"
    );

    let (got, second) = graph.execute(&engine, &nl, &input, 2).expect("cached run");
    assert_eq!(got, want);
    assert!(second.plan_cached, "second run reuses the plan");
    assert_eq!(second.capture_s, 0.0, "cache hits never pay capture");
    assert_eq!(second.batches, first.batches, "same plan, same batch structure");
    assert_eq!(second.kernel_launches, first.kernel_launches);
}

#[test]
fn stats_flow_into_the_metrics_registry_when_enabled() {
    let engine = PlainEngine::new();
    let nl = adder(5);
    let mut input = to_bits(9, 5);
    input.extend(to_bits(22, 5));

    telemetry::set_enabled(true);
    telemetry::metrics().reset();
    let (_, wavefront) = execute_parallel(&engine, &nl, &input, 2).expect("wavefront");
    let graph = KernelGraph::new();
    let (_, graphed) = graph.execute(&engine, &nl, &input, 2).expect("graph");
    let snapshot = telemetry::metrics().snapshot();
    telemetry::set_enabled(false);

    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert!(
        counter("exec_gates_total") >= (wavefront.gates + graphed.gates) as u64,
        "both executors must report their gates"
    );
    assert!(counter("exec_waves_total") >= wavefront.waves as u64);
    assert!(counter("exec_batches_total") >= graphed.batches as u64);
    assert!(counter("exec_kernel_launches_total") >= graphed.kernel_launches);
    let per_kind_launches: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("graph_kernel_launches_total{"))
        .map(|(_, &v)| v)
        .sum();
    assert!(
        per_kind_launches >= graphed.kernel_launches,
        "replay must count every launch under its gate kind"
    );
}

#[test]
fn exec_stats_json_round_trips_every_counter() {
    let engine = PlainEngine::new();
    let nl = adder(4);
    let mut input = to_bits(3, 4);
    input.extend(to_bits(12, 4));
    let graph = KernelGraph::new();
    let (_, stats) = graph.execute(&engine, &nl, &input, 2).expect("graph run");
    let json = stats.to_json();
    telemetry::json::validate(&json).expect("ExecStats::to_json must emit valid JSON");
    for key in ["gates", "waves", "batches", "kernel_launches", "plan_cached", "simd_path"] {
        assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
    }
    let display = stats.to_string();
    assert!(display.contains("gates"));
    assert!(display.contains("kernel launches"));
    let _: ExecStats = stats; // the JSON and Display come from the same value
}
