//! Integration tests of the fault-tolerant wavefront executor: injected
//! failures must never change results (only the path taken to them), an
//! interrupted run must resume from its last wave-barrier checkpoint, and
//! every failure mode must surface as its typed error.

use proptest::prelude::*;
use pytfhe_backend::{
    execute, execute_resilient, CheckpointStore, ExecError, FileCheckpointStore,
    MemoryCheckpointStore, NoFaults, PlainEngine, ResilientConfig, RetryPolicy, SeededFaults,
    TfheEngine,
};
use pytfhe_hdl::Circuit;
use pytfhe_netlist::topo::LevelSchedule;
use pytfhe_netlist::Netlist;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};
use std::time::Duration;

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (x >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// A `w`-bit widening ripple-carry adder from the HDL generators.
fn adder(w: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(w);
    let b = c.input_word_anon(w);
    let sum = c.add_wide_unsigned(&a, &b);
    c.output_word("sum", &sum);
    c.finish().expect("netlist")
}

/// A `w`-bit schoolbook multiplier (deeper and wider than the adder).
fn multiplier(w: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(w);
    let b = c.input_word_anon(w);
    let prod = c.mul_unsigned(&a, &b);
    c.output_word("prod", &prod);
    c.finish().expect("netlist")
}

/// A maximally wide one-wave circuit: `n` independent gates.
fn wide(n: usize) -> Netlist {
    let mut c = Circuit::new();
    let a = c.input_word_anon(1);
    let b = c.input_word_anon(1);
    let bits: Vec<_> = (0..n).map(|_| c.nand(a.bit(0), b.bit(0))).collect();
    c.output_word("out", &bits.into_iter().collect());
    c.finish().expect("netlist")
}

fn resilient_cfg(workers: usize) -> ResilientConfig {
    ResilientConfig { workers, retry: RetryPolicy::fast(), checkpoint_every: 1 }
}

/// The schedule's non-empty wave indices, in order (the coordinates the
/// fault injector scripts crashes against).
fn nonempty_waves(nl: &Netlist) -> Vec<usize> {
    LevelSchedule::compute(nl)
        .waves
        .iter()
        .enumerate()
        .filter_map(|(i, w)| (!w.is_empty()).then_some(i))
        .collect()
}

#[test]
fn faulty_runs_are_bit_identical_to_sequential() {
    let engine = PlainEngine::new();
    let mut total_retries = 0u64;
    for (nl, width) in [(adder(8), 8), (multiplier(5), 5)] {
        for seed in [1u64, 7, 42] {
            for fail in [0.0, 0.05, 0.25] {
                for workers in [2usize, 4] {
                    let x = seed.wrapping_mul(0x9E37) % (1 << width);
                    let y = (seed.wrapping_mul(0x85EB) >> 3) % (1 << width);
                    let mut input = to_bits(x, width);
                    input.extend(to_bits(y, width));
                    let (want, _) = execute(&engine, &nl, &input).expect("sequential");
                    let faults = SeededFaults::new(seed).with_fail_prob(fail);
                    let (got, stats) = execute_resilient(
                        &engine,
                        &nl,
                        &input,
                        &resilient_cfg(workers),
                        &faults,
                        None,
                    )
                    .expect("resilient");
                    assert_eq!(got, want, "seed={seed} fail={fail} workers={workers} x={x} y={y}");
                    if fail == 0.0 {
                        assert_eq!(stats.retries, 0);
                    }
                    total_retries += stats.retries;
                }
            }
        }
    }
    // Across 25 % fail-rate runs the injector must actually have fired.
    assert!(total_retries > 0, "fault injection never triggered a retry");
}

proptest! {
    #[test]
    fn resilient_adder_property(
        x in 0u64..256,
        y in 0u64..256,
        seed in any::<u64>(),
    ) {
        let engine = PlainEngine::new();
        let nl = adder(8);
        let mut input = to_bits(x, 8);
        input.extend(to_bits(y, 8));
        let faults = SeededFaults::new(seed).with_fail_prob(0.2);
        let (out, _) = execute_resilient(
            &engine, &nl, &input, &resilient_cfg(3), &faults, None,
        ).expect("resilient");
        prop_assert_eq!(from_bits(&out), x + y);
    }
}

#[test]
fn crash_of_all_workers_resumes_from_checkpoint() {
    let engine = PlainEngine::new();
    let nl = multiplier(5);
    let waves = nonempty_waves(&nl);
    assert!(waves.len() >= 2, "need at least two non-empty waves");
    let crash_wave = *waves.last().unwrap();
    let (x, y) = (21u64, 19u64);
    let mut input = to_bits(x, 5);
    input.extend(to_bits(y, 5));
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");

    let workers = 3;
    let mut faults = SeededFaults::new(4).with_fail_prob(0.1);
    for w in 0..workers {
        faults = faults.with_worker_crash(w, crash_wave);
    }
    let mut store = MemoryCheckpointStore::new();
    let err =
        execute_resilient(&engine, &nl, &input, &resilient_cfg(workers), &faults, Some(&mut store))
            .expect_err("every worker crashed");
    assert_eq!(err, ExecError::NoWorkers { wave: crash_wave });

    // The store holds the barrier snapshot of the last *completed* wave.
    let prev_wave = waves[waves.len() - 2];
    let ckpt = store.latest().expect("checkpoint written before the crash");
    assert_eq!(ckpt.wave(), prev_wave);
    assert!(ckpt.num_values() > 0);

    // A healthy rerun against the same store resumes past the snapshot
    // and produces bit-identical outputs.
    let (got, stats) = execute_resilient(
        &engine,
        &nl,
        &input,
        &resilient_cfg(workers),
        &NoFaults,
        Some(&mut store),
    )
    .expect("resumed run");
    assert_eq!(got, want);
    assert_eq!(stats.resumed_from_wave, Some(prev_wave));
    assert_eq!(stats.waves, 1, "only the crashed wave should re-run");
}

#[test]
fn encrypted_crash_recovery_end_to_end() {
    // The full paper pipeline under failure: encrypt, crash mid-run,
    // resume from the ciphertext checkpoint, decrypt — bit-identical.
    let mut rng = SecureRng::seed_from_u64(31);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let nl = adder(4);
    let waves = nonempty_waves(&nl);
    let crash_wave = *waves.last().unwrap();
    let (x, y) = (11u64, 6u64);
    let mut bits = to_bits(x, 4);
    bits.extend(to_bits(y, 4));
    let cts = client.encrypt_bits(&bits, &mut rng);
    let (want, _) = execute(&engine, &nl, &cts).expect("sequential");

    let workers = 2;
    let mut faults = SeededFaults::new(2);
    for w in 0..workers {
        faults = faults.with_worker_crash(w, crash_wave);
    }
    let mut store = MemoryCheckpointStore::new();
    let err =
        execute_resilient(&engine, &nl, &cts, &resilient_cfg(workers), &faults, Some(&mut store))
            .expect_err("every worker crashed");
    assert_eq!(err, ExecError::NoWorkers { wave: crash_wave });

    let (got, stats) =
        execute_resilient(&engine, &nl, &cts, &resilient_cfg(workers), &NoFaults, Some(&mut store))
            .expect("resumed run");
    assert!(stats.resumed_from_wave.is_some());
    assert_eq!(got, want, "resumed ciphertexts must be bit-identical");
    assert_eq!(from_bits(&client.decrypt_bits(&got)), x + y);
}

#[test]
fn checkpoint_refuses_a_different_program() {
    let engine = PlainEngine::new();
    let mut store = MemoryCheckpointStore::new();
    let nl = adder(4);
    let input = vec![false; 8];
    execute_resilient(&engine, &nl, &input, &resilient_cfg(2), &NoFaults, Some(&mut store))
        .expect("first program");
    let other = multiplier(3);
    let err = execute_resilient(
        &engine,
        &other,
        &[false; 6],
        &resilient_cfg(2),
        &NoFaults,
        Some(&mut store),
    )
    .expect_err("fingerprint mismatch");
    assert!(matches!(err, ExecError::BadCheckpoint { .. }));
}

#[test]
fn file_store_survives_a_process_restart() {
    let engine = PlainEngine::new();
    let nl = multiplier(4);
    let waves = nonempty_waves(&nl);
    let crash_wave = *waves.last().unwrap();
    let mut input = to_bits(9, 4);
    input.extend(to_bits(13, 4));
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");

    let path =
        std::env::temp_dir().join(format!("pytfhe-fault-tolerance-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        // "Process one": crashes after checkpointing earlier waves.
        let workers = 2;
        let mut faults = SeededFaults::new(6);
        for w in 0..workers {
            faults = faults.with_worker_crash(w, crash_wave);
        }
        let mut store = FileCheckpointStore::new(&path);
        execute_resilient(&engine, &nl, &input, &resilient_cfg(workers), &faults, Some(&mut store))
            .expect_err("crash");
    }
    {
        // "Process two": a fresh store handle on the same path resumes.
        let mut store = FileCheckpointStore::new(&path);
        assert!(store.load().expect("readable").is_some());
        let (got, stats) =
            execute_resilient(&engine, &nl, &input, &resilient_cfg(2), &NoFaults, Some(&mut store))
                .expect("resumed");
        assert_eq!(got, want);
        assert!(stats.resumed_from_wave.is_some());
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn partial_crash_degrades_but_completes() {
    let engine = PlainEngine::new();
    let nl = wide(64);
    let wave = *nonempty_waves(&nl).first().unwrap();
    let input = vec![true, true];
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");
    let faults = SeededFaults::new(3).with_worker_crash(1, wave).with_worker_crash(3, wave);
    let (got, stats) = execute_resilient(&engine, &nl, &input, &resilient_cfg(4), &faults, None)
        .expect("survivors finish the wave");
    assert_eq!(got, want);
    assert_eq!(stats.evicted_workers, 2);
}

#[test]
fn stragglers_past_their_deadline_are_retried() {
    let engine = PlainEngine::new();
    let nl = adder(8);
    let mut input = to_bits(100, 8);
    input.extend(to_bits(55, 8));
    let (want, _) = execute(&engine, &nl, &input).expect("sequential");
    // Every injected straggler stalls far past the task deadline, so each
    // one is abandoned and retried rather than awaited.
    let faults = SeededFaults::new(5).with_straggler(0.3, Duration::from_secs(60));
    let cfg = ResilientConfig {
        workers: 2,
        retry: RetryPolicy { task_deadline: Some(Duration::from_millis(1)), ..RetryPolicy::fast() },
        checkpoint_every: 0,
    };
    let (got, stats) =
        execute_resilient(&engine, &nl, &input, &cfg, &faults, None).expect("finishes");
    assert_eq!(got, want);
    assert!(stats.retries > 0, "stragglers should have been abandoned and retried");
}

#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let engine = PlainEngine::new();
    let nl = adder(4);
    let input = vec![false; 8];
    let faults = SeededFaults::new(8).with_fail_prob(1.0);
    let err = execute_resilient(&engine, &nl, &input, &resilient_cfg(2), &faults, None)
        .expect_err("nothing can succeed");
    match err {
        ExecError::Exhausted { attempts, .. } => {
            assert_eq!(attempts, RetryPolicy::fast().max_attempts);
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}

#[test]
fn wave_deadline_is_enforced() {
    let engine = PlainEngine::new();
    let nl = adder(4);
    let input = vec![false; 8];
    let cfg = ResilientConfig {
        workers: 2,
        retry: RetryPolicy { wave_deadline: Some(Duration::ZERO), ..RetryPolicy::fast() },
        checkpoint_every: 0,
    };
    let err =
        execute_resilient(&engine, &nl, &input, &cfg, &NoFaults, None).expect_err("zero budget");
    assert!(matches!(err, ExecError::WaveDeadlineExceeded { .. }));
}
