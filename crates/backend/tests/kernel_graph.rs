//! Integration tests of the kernel-graph backend: captured plans must
//! replay bit-exactly against the reference executor (plain and
//! encrypted), cache across input sets, cut batches exactly where the
//! CUDA-Graphs simulator cuts them, and replay without per-gate buffer
//! allocations once warm.

use proptest::prelude::*;
use pytfhe_backend::sim::{graph_batch_waves, ProgramProfile};
use pytfhe_backend::{
    capture, execute, replay, CaptureConfig, ExecError, KernelGraph, KernelPlan, PlainEngine,
    ReplayLanes, TfheEngine,
};
use pytfhe_netlist::{Netlist, ALL_GATE_KINDS};
use pytfhe_tfhe::{thread_buffer_allocs, ClientKey, Params, SecureRng};
use pytfhe_vipbench::Scale;

/// A deterministic random DAG over every gate kind: each gate draws its
/// operands from the pool of inputs and earlier gates.
fn random_netlist(seed: u64, inputs: usize, gates: usize) -> Netlist {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        // xorshift64* — deterministic across platforms, no dependencies.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % bound
    };
    let mut nl = Netlist::new();
    let mut pool: Vec<_> = (0..inputs).map(|_| nl.add_input()).collect();
    for _ in 0..gates {
        let kind = ALL_GATE_KINDS[next(ALL_GATE_KINDS.len())];
        let a = pool[next(pool.len())];
        let b = pool[next(pool.len())];
        pool.push(nl.add_gate(kind, a, b).expect("valid refs"));
    }
    nl.mark_output(*pool.last().unwrap()).unwrap();
    nl.mark_output(pool[pool.len() / 2]).unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay is bit-exact with the reference executor on arbitrary
    /// programs, input sets, and batch-cut budgets.
    #[test]
    fn replay_matches_execute_on_random_netlists(
        seed in any::<u64>(),
        bits in prop::collection::vec(any::<bool>(), 6),
        cut in 1u64..64,
    ) {
        let nl = random_netlist(seed, 6, 60);
        let engine = PlainEngine::new();
        let (want, _) = execute(&engine, &nl, &bits).expect("execute");
        let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: cut }).expect("capture");
        let mut lanes = ReplayLanes::new(&engine, 2);
        let (got, report) = replay(&engine, &plan, &bits, &mut lanes).expect("replay");
        prop_assert_eq!(got, want);
        prop_assert_eq!(report.gates, nl.num_gates());
    }

    /// Replay is bit-exact and deterministic across every worker count
    /// on the plaintext engine: pooled per-chunk dispatch (forced by
    /// grain 1) must never change results, whatever the lane count.
    #[test]
    fn replay_is_deterministic_across_worker_counts(
        seed in any::<u64>(),
        bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        let nl = random_netlist(seed, 6, 48);
        let engine = PlainEngine::with_parallel_grain(1);
        let (want, _) = execute(&engine, &nl, &bits).expect("execute");
        let plan = capture(&nl, &CaptureConfig::default()).expect("capture");
        for workers in [1usize, 2, 4, 8] {
            let mut lanes = ReplayLanes::new(&engine, workers);
            let (got, _) = replay(&engine, &plan, &bits, &mut lanes).expect("replay");
            prop_assert_eq!(&got, &want, "workers={}", workers);
            // Replaying again on the same lanes stays deterministic.
            let (again, _) = replay(&engine, &plan, &bits, &mut lanes).expect("re-replay");
            prop_assert_eq!(&again, &want, "workers={} second replay", workers);
        }
    }

    /// The real capture cuts sub-graph batches exactly where the
    /// CUDA-Graphs simulator's cut rule predicts.
    #[test]
    fn batch_cuts_match_the_gpu_simulator(
        seed in any::<u64>(),
        cut in 1u64..40,
    ) {
        let nl = random_netlist(seed, 5, 80);
        let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: cut }).expect("capture");
        let plan_cuts: Vec<u64> = plan
            .batches
            .iter()
            .map(|b| b.bootstrapped())
            .filter(|&n| n > 0)
            .collect();
        let profile = ProgramProfile::of(&nl);
        let sim_cuts: Vec<u64> = graph_batch_waves(&profile, cut)
            .iter()
            .map(|waves| waves.iter().sum())
            .collect();
        prop_assert_eq!(plan_cuts, sim_cuts);
    }

    /// Serialization round-trips arbitrary captured plans.
    #[test]
    fn plans_round_trip_through_bytes(seed in any::<u64>()) {
        let nl = random_netlist(seed, 4, 40);
        let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: 7 }).expect("capture");
        let restored = KernelPlan::from_bytes(&plan.to_bytes()).expect("decode");
        prop_assert_eq!(restored, plan);
    }
}

#[test]
fn encrypted_replay_is_bit_exact_with_execute() {
    let mut rng = SecureRng::seed_from_u64(41);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let nl = random_netlist(0xFEED_5EED, 4, 24);
    let bits = [true, false, false, true];
    let cts: Vec<_> = bits.iter().map(|&b| client.encrypt_bit(b, &mut rng)).collect();

    let (want, _) = execute(&engine, &nl, &cts).expect("execute");
    let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: 8 }).expect("capture");
    let mut lanes = ReplayLanes::new(&engine, 1);
    let (got, _) = replay(&engine, &plan, &cts, &mut lanes).expect("replay");
    assert_eq!(got, want, "replay must equal execute ciphertext-for-ciphertext");

    let plain: Vec<bool> = nl.eval_plain(&bits);
    let decrypted: Vec<bool> = got.iter().map(|ct| client.decrypt_bit(ct)).collect();
    assert_eq!(decrypted, plain, "and decrypt to the functional result");
}

#[test]
fn encrypted_replay_is_bit_exact_at_every_worker_count() {
    let mut rng = SecureRng::seed_from_u64(53);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let nl = random_netlist(0xBEEF_CAFE, 4, 20);
    let bits = [true, true, false, true];
    let cts: Vec<_> = bits.iter().map(|&b| client.encrypt_bit(b, &mut rng)).collect();
    let (want, _) = execute(&engine, &nl, &cts).expect("execute");
    let plain = nl.eval_plain(&bits);
    let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: 8 }).expect("capture");
    for workers in [1usize, 2, 4, 8] {
        let mut lanes = ReplayLanes::new(&engine, workers);
        let (got, _) = replay(&engine, &plan, &cts, &mut lanes).expect("replay");
        assert_eq!(got, want, "workers={workers}: ciphertext-for-ciphertext");
        let decrypted: Vec<bool> = got.iter().map(|ct| client.decrypt_bit(ct)).collect();
        assert_eq!(decrypted, plain, "workers={workers}: functional result");
    }
}

#[test]
fn one_cached_plan_serves_many_encrypted_input_sets() {
    let mut rng = SecureRng::seed_from_u64(43);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let nl = random_netlist(0xABCD, 3, 16);
    let graph = KernelGraph::with_config(CaptureConfig { batch_cut_nodes: 6 });
    let mut lanes = ReplayLanes::new(&engine, 2);
    for (round, bits) in
        [[true, false, true], [false, false, true], [true, true, true]].iter().enumerate()
    {
        let cts: Vec<_> = bits.iter().map(|&b| client.encrypt_bit(b, &mut rng)).collect();
        let (want, _) = execute(&engine, &nl, &cts).expect("execute");
        let (got, stats) =
            graph.execute_with_lanes(&engine, &nl, &cts, &mut lanes).expect("graph execute");
        assert_eq!(got, want, "round {round}");
        assert_eq!(stats.plan_cached, round > 0, "capture only on round 0");
        assert!(stats.batches >= 1);
        assert!(stats.kernel_launches >= stats.batches as u64);
    }
    assert_eq!(graph.cached_plans(), 1);
}

#[test]
fn warm_replay_performs_zero_buffer_allocations() {
    let mut rng = SecureRng::seed_from_u64(47);
    let client = ClientKey::generate(Params::testing(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let nl = random_netlist(0xC0FFEE, 3, 20);
    let plan = capture(&nl, &CaptureConfig::default()).expect("capture");
    // One worker lane: the whole replay runs inline on this thread, so
    // the thread-local constructor counter sees every buffer it creates.
    let mut lanes = ReplayLanes::new(&engine, 1);
    let cts: Vec<_> =
        [true, false, true].iter().map(|&b| client.encrypt_bit(b, &mut rng)).collect();
    let (warm, _) = replay(&engine, &plan, &cts, &mut lanes).expect("warmup replay");

    let before = thread_buffer_allocs();
    let (hot, _) = replay(&engine, &plan, &cts, &mut lanes).expect("hot replay");
    let after = thread_buffer_allocs();
    assert_eq!(after - before, 0, "warm replay must not allocate ciphertext/FFT buffers");
    assert_eq!(hot, warm, "identical inputs must replay to identical ciphertexts");
}

#[test]
fn vipbench_workload_replays_bit_exactly_and_matches_its_oracle() {
    let bench = pytfhe_vipbench::find("Hamming", Scale::Test)
        .unwrap_or_else(|| pytfhe_vipbench::hamming_distance(Scale::Test));
    let nl = bench.netlist().clone();
    let engine = PlainEngine::new();
    let graph = KernelGraph::new();
    let mut lanes = ReplayLanes::new(&engine, 2);
    for seed in 0..3u64 {
        let input = bench.sample_input(seed);
        let bits = bench.encode_input(&input);
        let (want, _) = execute(&engine, &nl, &bits).expect("execute");
        let (got, stats) =
            graph.execute_with_lanes(&engine, &nl, &bits, &mut lanes).expect("graph");
        assert_eq!(got, want, "seed {seed}");
        assert_eq!(stats.plan_cached, seed > 0);
        let decoded = bench.decode_output(&got);
        assert_eq!(decoded, bench.oracle(&input), "seed {seed}: oracle mismatch");
    }
}

#[test]
fn replay_surfaces_input_mismatch() {
    let nl = random_netlist(7, 4, 10);
    let engine = PlainEngine::new();
    let plan = capture(&nl, &CaptureConfig::default()).expect("capture");
    let mut lanes = ReplayLanes::new(&engine, 1);
    assert!(matches!(
        replay(&engine, &plan, &[true, false], &mut lanes),
        Err(ExecError::InputCountMismatch { expected: 4, got: 2 })
    ));
}
