//! End-to-end tests of LUT-lowered execution: netlists rewritten by the
//! `lut_cover` pass must compute bit-identical results to their boolean
//! originals on every executor (serial, wavefront-parallel, and
//! kernel-graph), in plaintext and under encryption, while strictly
//! reducing the bootstrap count the executors report.

use pytfhe_backend::{
    execute, execute_parallel, netlist_bootstraps, KernelGraph, PlainEngine, TfheEngine,
};
use pytfhe_hdl::Circuit;
use pytfhe_netlist::opt::{lut_cover, LutCoverConfig};
use pytfhe_netlist::Netlist;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};
use pytfhe_vipbench::Scale;

/// Lowers with the default cone-cover configuration, asserting the pass
/// actually fused something.
fn lower(nl: &Netlist) -> Netlist {
    let (lowered, report) = lut_cover(nl, &LutCoverConfig::default()).expect("lut_cover");
    assert!(report.cones_fused > 0, "workload must have fusable cones");
    assert!(
        report.bootstraps_after < report.bootstraps_before,
        "lowering must strictly reduce bootstraps: {report}"
    );
    lowered
}

#[test]
fn lut_lowered_vipbench_matches_boolean_on_every_executor() {
    for name in ["Parrando", "Distinctness"] {
        let bench = pytfhe_vipbench::find(name, Scale::Test).expect("workload exists");
        let nl = bench.netlist();
        let lowered = lower(nl);
        assert!(
            netlist_bootstraps(&lowered) * 2 <= netlist_bootstraps(nl),
            "{name}: expected >=2x bootstrap reduction, got {} -> {}",
            netlist_bootstraps(nl),
            netlist_bootstraps(&lowered)
        );
        let engine = PlainEngine::with_parallel_grain(1);
        let graph = KernelGraph::new();
        for seed in 0..4u64 {
            let input = bench.sample_input(seed);
            let bits = bench.encode_input(&input);
            let want: Vec<bool> = nl.eval_plain(&bits);
            let (serial, stats) = execute(&engine, &lowered, &bits).expect("execute");
            assert_eq!(serial, want, "{name} seed {seed}: serial");
            assert_eq!(stats.luts, lowered.num_luts());
            assert_eq!(stats.bootstraps, netlist_bootstraps(&lowered));
            let (parallel, pstats) =
                execute_parallel(&engine, &lowered, &bits, 4).expect("execute_parallel");
            assert_eq!(parallel, want, "{name} seed {seed}: parallel");
            assert!(pstats.lut_launches > 0, "{name}: batched LUT kernels must launch");
            let (graphed, gstats) = graph.execute(&engine, &lowered, &bits, 4).expect("graph");
            assert_eq!(graphed, want, "{name} seed {seed}: kernel graph");
            assert_eq!(gstats.bootstraps, netlist_bootstraps(&lowered));
        }
    }
}

#[test]
fn lut_lowered_execution_is_bit_exact_under_encryption() {
    // A 3-bit adder: small enough for real bootstrapping in a test,
    // deep enough that cone fusion changes the schedule.
    let w = 3;
    let mut c = Circuit::new();
    let a = c.input_word("a", w);
    let b = c.input_word("b", w);
    let sum = c.add(&a, &b);
    c.output_word("sum", &sum);
    let nl = c.finish().expect("netlist");
    let (lowered, report) = lut_cover(&nl, &LutCoverConfig::default()).expect("lut_cover");
    assert!(report.cones_fused > 0);
    let precision = lowered.lut_precision().expect("lowered netlists carry a precision");

    let mut rng = SecureRng::seed_from_u64(0x5407_1347);
    let client = ClientKey::generate(Params::testing_shortint(), &mut rng);
    let server = client.server_key(&mut rng);
    let engine = TfheEngine::new(&server);
    let graph = KernelGraph::new();

    for (x, y) in [(3u64, 5u64), (7, 7), (0, 6)] {
        let bits: Vec<bool> =
            (0..w).map(|i| (x >> i) & 1 == 1).chain((0..w).map(|i| (y >> i) & 1 == 1)).collect();
        let want: Vec<bool> = nl.eval_plain(&bits);
        // Lowered netlists run in the message encoding end to end: the
        // caller encrypts bits as messages at the netlist's precision.
        let cts: Vec<_> = bits
            .iter()
            .map(|&bit| client.encrypt_message(u32::from(bit), u32::from(precision), &mut rng))
            .collect();
        let (out, stats) = execute(&engine, &lowered, &cts).expect("encrypted execute");
        let got: Vec<bool> =
            out.iter().map(|ct| client.decrypt_message(ct, u32::from(precision)) != 0).collect();
        assert_eq!(got, want, "{x}+{y}: serial encrypted");
        assert_eq!(stats.bootstraps, netlist_bootstraps(&lowered));

        let (gout, _) = graph.execute(&engine, &lowered, &cts, 1).expect("graph execute");
        let ggot: Vec<bool> =
            gout.iter().map(|ct| client.decrypt_message(ct, u32::from(precision)) != 0).collect();
        assert_eq!(ggot, want, "{x}+{y}: kernel-graph encrypted");
    }
}

#[test]
fn lowered_plans_survive_wire_round_trips() {
    let bench = pytfhe_vipbench::find("Hamming", Scale::Test).expect("workload exists");
    let lowered = lower(bench.netlist());
    let plan =
        pytfhe_backend::capture(&lowered, &pytfhe_backend::CaptureConfig::default()).unwrap();
    assert!(plan.has_luts());
    assert_eq!(plan.bootstraps(), netlist_bootstraps(&lowered));
    let restored = pytfhe_backend::KernelPlan::from_bytes(&plan.to_bytes()).expect("round trip");
    assert_eq!(restored, plan);

    let engine = PlainEngine::new();
    let graph = KernelGraph::new();
    graph.adopt(restored);
    let input = bench.sample_input(9);
    let bits = bench.encode_input(&input);
    let (out, stats) = graph.execute(&engine, &lowered, &bits, 1).expect("adopted plan");
    assert!(stats.plan_cached, "adopted plan must serve the execution");
    assert_eq!(out, bench.netlist().eval_plain(&bits));
}
