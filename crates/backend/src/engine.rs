//! Pluggable gate evaluators.
//!
//! Executors are generic over a [`GateEngine`], so the same scheduling
//! code runs real homomorphic evaluation ([`TfheEngine`]) and plaintext
//! functional evaluation ([`PlainEngine`]). This mirrors the paper's
//! architecture, where the backend wraps the TFHE library's
//! bootstrapped-gate primitives behind a uniform interface.

use pytfhe_netlist::GateKind;
use pytfhe_tfhe::tgsw::ExternalProductScratch;
use pytfhe_tfhe::{LweCiphertext, ServerKey};

/// Evaluates individual gates on some value domain.
///
/// `Scratch` carries per-worker reusable buffers (the FFT scratch of a
/// bootstrap); each worker thread owns one instance.
pub trait GateEngine: Sync {
    /// The ciphertext (or plaintext) type of a single signal.
    type Value: Clone + Send + Sync;
    /// Per-worker scratch buffers.
    type Scratch: Send;

    /// Allocates scratch for one worker.
    fn scratch(&self) -> Self::Scratch;

    /// Evaluates one gate. Unary gates read only `a`; constants read
    /// neither.
    fn eval(
        &self,
        kind: GateKind,
        a: &Self::Value,
        b: &Self::Value,
        scratch: &mut Self::Scratch,
    ) -> Self::Value;

    /// The engine's encoding of a constant bit.
    fn constant(&self, bit: bool) -> Self::Value;
}

/// Plaintext functional evaluation: gates on `bool`.
///
/// This is the engine behind program validation and behind the
/// performance simulators (running MNIST_L homomorphically on one core
/// would take days — exactly the paper's point about baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainEngine;

impl PlainEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        PlainEngine
    }
}

impl GateEngine for PlainEngine {
    type Value = bool;
    type Scratch = ();

    fn scratch(&self) -> Self::Scratch {}

    #[inline]
    fn eval(&self, kind: GateKind, a: &bool, b: &bool, _scratch: &mut ()) -> bool {
        kind.eval(*a, *b)
    }

    fn constant(&self, bit: bool) -> bool {
        bit
    }
}

/// Real homomorphic evaluation: gates on LWE ciphertexts via the cloud
/// key's bootstrapped-gate primitives.
#[derive(Debug, Clone)]
pub struct TfheEngine<'k> {
    key: &'k ServerKey,
}

impl<'k> TfheEngine<'k> {
    /// Creates the engine over a server (cloud) key.
    pub fn new(key: &'k ServerKey) -> Self {
        TfheEngine { key }
    }

    /// The underlying server key.
    pub fn server_key(&self) -> &'k ServerKey {
        self.key
    }
}

impl GateEngine for TfheEngine<'_> {
    type Value = LweCiphertext;
    type Scratch = ExternalProductScratch;

    fn scratch(&self) -> Self::Scratch {
        self.key.gate_scratch()
    }

    fn eval(
        &self,
        kind: GateKind,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut Self::Scratch,
    ) -> LweCiphertext {
        let k = self.key;
        match kind {
            GateKind::Nand => k.nand_with(a, b, scratch),
            GateKind::And => k.and_with(a, b, scratch),
            GateKind::Or => k.or_with(a, b, scratch),
            GateKind::Nor => k.nor_with(a, b, scratch),
            GateKind::Xnor => k.xnor_with(a, b, scratch),
            GateKind::Xor => k.xor_with(a, b, scratch),
            GateKind::Andny => k.andny_with(a, b, scratch),
            GateKind::Andyn => k.andyn_with(a, b, scratch),
            GateKind::Orny => k.orny_with(a, b, scratch),
            GateKind::Oryn => k.oryn_with(a, b, scratch),
            GateKind::Not => k.not(a),
            GateKind::Const0 => k.constant(false),
            GateKind::Const1 => k.constant(true),
            GateKind::Buf => a.clone(),
        }
    }

    fn constant(&self, bit: bool) -> LweCiphertext {
        self.key.constant(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::ALL_GATE_KINDS;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    #[test]
    fn plain_engine_matches_gate_truth_tables() {
        let engine = PlainEngine::new();
        // PlainEngine's scratch happens to be `()`; keep the generic
        // engine idiom rather than special-casing the unit type.
        #[allow(clippy::let_unit_value)]
        let mut s = engine.scratch();
        for &kind in &ALL_GATE_KINDS {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                assert_eq!(engine.eval(kind, &a, &b, &mut s), kind.eval(a, b));
            }
        }
        assert!(engine.constant(true));
    }

    #[test]
    fn tfhe_engine_matches_plain_engine() {
        let mut rng = SecureRng::seed_from_u64(7);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let plain = PlainEngine::new();
        let mut scratch = engine.scratch();
        for &kind in &ALL_GATE_KINDS {
            for (a, b) in [(false, true), (true, true), (false, false)] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let out = engine.eval(kind, &ca, &cb, &mut scratch);
                let want = plain.eval(kind, &a, &b, &mut ());
                assert_eq!(client.decrypt_bit(&out), want, "{kind}({a},{b})");
            }
        }
        assert!(client.decrypt_bit(&engine.constant(true)));
        assert!(!client.decrypt_bit(&engine.constant(false)));
    }
}
