//! Pluggable gate evaluators.
//!
//! Executors are generic over a [`GateEngine`], so the same scheduling
//! code runs real homomorphic evaluation ([`TfheEngine`]) and plaintext
//! functional evaluation ([`PlainEngine`]). This mirrors the paper's
//! architecture, where the backend wraps the TFHE library's
//! bootstrapped-gate primitives behind a uniform interface.

use pytfhe_netlist::{GateKind, LutSpec};
use pytfhe_tfhe::{BootGate, GateScratch, LweCiphertext, ServerKey};

/// Evaluates individual gates on some value domain.
///
/// `Scratch` carries per-worker reusable buffers (the FFT scratch of a
/// bootstrap); each worker thread owns one instance.
pub trait GateEngine: Sync {
    /// The ciphertext (or plaintext) type of a single signal.
    type Value: Clone + Send + Sync;
    /// Per-worker scratch buffers.
    type Scratch: Send;

    /// Allocates scratch for one worker.
    fn scratch(&self) -> Self::Scratch;

    /// Evaluates one gate. Unary gates read only `a`; constants read
    /// neither.
    fn eval(
        &self,
        kind: GateKind,
        a: &Self::Value,
        b: &Self::Value,
        scratch: &mut Self::Scratch,
    ) -> Self::Value;

    /// The engine's encoding of a constant bit.
    fn constant(&self, bit: bool) -> Self::Value;

    /// Evaluates one gate into an existing value slot, reusing its
    /// buffers where the engine supports it. The default falls back to
    /// [`GateEngine::eval`] plus a move.
    fn eval_into(
        &self,
        kind: GateKind,
        a: &Self::Value,
        b: &Self::Value,
        scratch: &mut Self::Scratch,
        out: &mut Self::Value,
    ) {
        *out = self.eval(kind, a, b, scratch);
    }

    /// Evaluates a batch of independent same-kind gates — one "kernel
    /// launch" of the kernel-graph backend. `pairs[i]` holds the operand
    /// views for `outs[i]`. The default loops [`GateEngine::eval_into`];
    /// engines with batched primitives (SoA staging, vectorized
    /// bootstraps) override it.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `pairs.len() != outs.len()`.
    fn eval_batch(
        &self,
        kind: GateKind,
        pairs: &[(&Self::Value, &Self::Value)],
        outs: &mut [Self::Value],
        scratch: &mut Self::Scratch,
    ) {
        debug_assert_eq!(pairs.len(), outs.len());
        for (&(a, b), out) in pairs.iter().zip(outs.iter_mut()) {
            self.eval_into(kind, a, b, scratch, out);
        }
    }

    /// Smallest wave (in gates) worth dispatching across the worker
    /// pool; narrower waves run inline on the calling thread. The
    /// default matches [`crate::exec::PARALLEL_WAVE_MIN`]; engines whose
    /// per-gate cost is tiny compared to a pool dispatch (plaintext
    /// evaluation) override it upward, engines whose gates dwarf the
    /// dispatch (bootstrapped TFHE) keep it minimal.
    fn parallel_grain(&self) -> usize {
        crate::exec::PARALLEL_WAVE_MIN
    }

    /// Evaluates one fused LUT node into an existing value slot.
    /// `ins[..spec.width]` are the cone's leaves; unused slots carry a
    /// valid (ignored) value, exactly as [`pytfhe_netlist::Node::Lut`]
    /// pads them. On ciphertext engines every wire of a LUT-lowered
    /// netlist rides the *message* encoding at `spec.precision` bits,
    /// not the boolean gate encoding.
    ///
    /// The default panics: engines that never see lowered netlists (ad
    /// hoc test engines) need not implement LUT evaluation.
    fn eval_lut_into(
        &self,
        spec: LutSpec,
        ins: &[&Self::Value; 4],
        scratch: &mut Self::Scratch,
        out: &mut Self::Value,
    ) {
        let _ = (ins, scratch, out);
        unimplemented!("engine does not evaluate fused LUT nodes (spec {spec})")
    }

    /// Allocating form of [`GateEngine::eval_lut_into`].
    fn eval_lut(
        &self,
        spec: LutSpec,
        ins: &[&Self::Value; 4],
        scratch: &mut Self::Scratch,
    ) -> Self::Value {
        let mut out = self.constant(false);
        self.eval_lut_into(spec, ins, scratch, &mut out);
        out
    }

    /// Evaluates a batch of independent same-width, same-precision LUTs
    /// — one fused kernel launch on engines with batched programmable
    /// bootstraps. `items[i]` is `(table, leaf slots)` for `outs[i]`.
    /// The default loops [`GateEngine::eval_lut_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic when `items.len() != outs.len()`.
    fn eval_lut_batch(
        &self,
        width: u8,
        precision: u8,
        items: &[(u16, [&Self::Value; 4])],
        outs: &mut [Self::Value],
        scratch: &mut Self::Scratch,
    ) {
        debug_assert_eq!(items.len(), outs.len());
        for (&(table, ins), out) in items.iter().zip(outs.iter_mut()) {
            self.eval_lut_into(LutSpec::new(width, precision, table), &ins, scratch, out);
        }
    }

    /// The engine's encoding of a constant bit on a LUT-lowered netlist,
    /// where every wire is a message at `precision` bits. Plaintext-like
    /// engines ignore the precision; ciphertext engines must emit the
    /// message encoding (the boolean gate encoding would desync the
    /// packed LUT windows).
    fn constant_message(&self, bit: bool, precision: u8) -> Self::Value {
        let _ = precision;
        self.constant(bit)
    }
}

/// Maps a netlist gate kind onto the TFHE crate's bootstrapped-gate
/// enum. `None` for the kinds evaluated without a bootstrap (`Not`,
/// `Buf`, constants).
fn boot_gate(kind: GateKind) -> Option<BootGate> {
    match kind {
        GateKind::Nand => Some(BootGate::Nand),
        GateKind::And => Some(BootGate::And),
        GateKind::Or => Some(BootGate::Or),
        GateKind::Nor => Some(BootGate::Nor),
        GateKind::Xor => Some(BootGate::Xor),
        GateKind::Xnor => Some(BootGate::Xnor),
        GateKind::Andny => Some(BootGate::Andny),
        GateKind::Andyn => Some(BootGate::Andyn),
        GateKind::Orny => Some(BootGate::Orny),
        GateKind::Oryn => Some(BootGate::Oryn),
        GateKind::Not | GateKind::Buf | GateKind::Const0 | GateKind::Const1 => None,
    }
}

/// Plaintext functional evaluation: gates on `bool`.
///
/// This is the engine behind program validation and behind the
/// performance simulators (running MNIST_L homomorphically on one core
/// would take days — exactly the paper's point about baselines).
#[derive(Debug, Clone, Copy)]
pub struct PlainEngine {
    /// Smallest wave worth a pool dispatch (see
    /// [`GateEngine::parallel_grain`]).
    grain: usize,
}

/// Default parallel grain for plaintext gates: a `bool` gate costs a few
/// nanoseconds while a pool dispatch costs on the order of a microsecond,
/// so only very wide waves repay fan-out.
const PLAIN_PARALLEL_GRAIN: usize = 4096;

impl PlainEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        PlainEngine { grain: PLAIN_PARALLEL_GRAIN }
    }

    /// An engine with an explicit parallel grain (clamped ≥ 1) — test
    /// and benchmark hook for forcing plaintext waves through the pooled
    /// dispatch path regardless of width.
    pub fn with_parallel_grain(grain: usize) -> Self {
        PlainEngine { grain: grain.max(1) }
    }
}

impl Default for PlainEngine {
    fn default() -> Self {
        PlainEngine::new()
    }
}

impl GateEngine for PlainEngine {
    type Value = bool;
    type Scratch = ();

    fn scratch(&self) -> Self::Scratch {}

    #[inline]
    fn eval(&self, kind: GateKind, a: &bool, b: &bool, _scratch: &mut ()) -> bool {
        kind.eval(*a, *b)
    }

    fn constant(&self, bit: bool) -> bool {
        bit
    }

    fn parallel_grain(&self) -> usize {
        self.grain
    }

    fn eval_lut_into(&self, spec: LutSpec, ins: &[&bool; 4], _scratch: &mut (), out: &mut bool) {
        let pattern = ins[..spec.width as usize]
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &&bit)| acc | (usize::from(bit) << i));
        *out = spec.eval(pattern);
    }
}

/// Real homomorphic evaluation: gates on LWE ciphertexts via the cloud
/// key's bootstrapped-gate primitives.
#[derive(Debug, Clone)]
pub struct TfheEngine<'k> {
    key: &'k ServerKey,
}

impl<'k> TfheEngine<'k> {
    /// Creates the engine over a server (cloud) key.
    pub fn new(key: &'k ServerKey) -> Self {
        TfheEngine { key }
    }

    /// The underlying server key.
    pub fn server_key(&self) -> &'k ServerKey {
        self.key
    }
}

impl GateEngine for TfheEngine<'_> {
    type Value = LweCiphertext;
    type Scratch = GateScratch;

    fn scratch(&self) -> Self::Scratch {
        self.key.gate_scratch()
    }

    fn eval(
        &self,
        kind: GateKind,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut Self::Scratch,
    ) -> LweCiphertext {
        let k = self.key;
        match kind {
            GateKind::Nand => k.nand_with(a, b, scratch),
            GateKind::And => k.and_with(a, b, scratch),
            GateKind::Or => k.or_with(a, b, scratch),
            GateKind::Nor => k.nor_with(a, b, scratch),
            GateKind::Xnor => k.xnor_with(a, b, scratch),
            GateKind::Xor => k.xor_with(a, b, scratch),
            GateKind::Andny => k.andny_with(a, b, scratch),
            GateKind::Andyn => k.andyn_with(a, b, scratch),
            GateKind::Orny => k.orny_with(a, b, scratch),
            GateKind::Oryn => k.oryn_with(a, b, scratch),
            GateKind::Not => k.not(a),
            GateKind::Const0 => k.constant(false),
            GateKind::Const1 => k.constant(true),
            GateKind::Buf => a.clone(),
        }
    }

    fn constant(&self, bit: bool) -> LweCiphertext {
        self.key.constant(bit)
    }

    /// A bootstrapped gate costs hundreds of microseconds — three orders
    /// of magnitude over a pool dispatch — so even two-gate waves repay
    /// fan-out.
    fn parallel_grain(&self) -> usize {
        2
    }

    fn eval_into(
        &self,
        kind: GateKind,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut Self::Scratch,
        out: &mut LweCiphertext,
    ) {
        let k = self.key;
        match boot_gate(kind) {
            Some(gate) => k.gate_into(gate, a, b, scratch, out),
            None => match kind {
                GateKind::Not => k.not_into(a, out),
                GateKind::Buf => out.copy_from(a),
                GateKind::Const0 => k.constant_into(false, out),
                GateKind::Const1 => k.constant_into(true, out),
                _ => unreachable!("boot_gate covers every binary kind"),
            },
        }
    }

    fn eval_batch(
        &self,
        kind: GateKind,
        pairs: &[(&LweCiphertext, &LweCiphertext)],
        outs: &mut [LweCiphertext],
        scratch: &mut Self::Scratch,
    ) {
        debug_assert_eq!(pairs.len(), outs.len());
        match boot_gate(kind) {
            // One fused batched kernel: linear combinations staged into
            // SoA slots and bootstrapped + key-switched chunk by chunk
            // while the staged masks are still cache-resident.
            Some(gate) => self.key.batch_bootstrap_fused(gate, pairs, outs, scratch),
            None => {
                for (&(a, b), out) in pairs.iter().zip(outs.iter_mut()) {
                    self.eval_into(kind, a, b, scratch, out);
                }
            }
        }
    }

    fn eval_lut_into(
        &self,
        spec: LutSpec,
        ins: &[&LweCiphertext; 4],
        scratch: &mut Self::Scratch,
        out: &mut LweCiphertext,
    ) {
        let k = self.key;
        let precision = u32::from(spec.precision);
        // Affine specs (constants, buffers, message NOT) never touch the
        // bootstrap; everything else is one programmable bootstrap.
        if let Some(bit) = spec.as_const() {
            k.message_constant_into(u32::from(bit), precision, out);
        } else if spec.is_passthrough() {
            out.copy_from(ins[0]);
        } else if spec.is_negation() {
            k.message_not_into(precision, ins[0], out);
        } else {
            k.boolean_lut_into(
                u32::from(spec.width),
                precision,
                spec.table,
                &ins[..spec.width as usize],
                scratch,
                out,
            );
        }
    }

    /// One fused batched kernel: tables pre-compiled, linear packings
    /// staged into SoA slots, programmable bootstraps launched chunk by
    /// chunk through the lockstep batched blind rotation.
    ///
    /// Callers route *affine* specs (width-1 constants, buffers,
    /// negations — [`LutSpec::bootstraps`] of 0) through
    /// [`GateEngine::eval_lut_into`] instead; feeding them here still
    /// yields correct bits but spends a needless bootstrap per task.
    fn eval_lut_batch(
        &self,
        width: u8,
        precision: u8,
        items: &[(u16, [&LweCiphertext; 4])],
        outs: &mut [LweCiphertext],
        scratch: &mut Self::Scratch,
    ) {
        self.key.boolean_lut_batch_into(
            u32::from(width),
            u32::from(precision),
            items,
            outs,
            scratch,
        );
    }

    fn constant_message(&self, bit: bool, precision: u8) -> LweCiphertext {
        let mut out = self.key.constant(false);
        self.key.message_constant_into(u32::from(bit), u32::from(precision), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::ALL_GATE_KINDS;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    #[test]
    fn plain_engine_matches_gate_truth_tables() {
        let engine = PlainEngine::new();
        // PlainEngine's scratch happens to be `()`; keep the generic
        // engine idiom rather than special-casing the unit type.
        #[allow(clippy::let_unit_value)]
        let mut s = engine.scratch();
        for &kind in &ALL_GATE_KINDS {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                assert_eq!(engine.eval(kind, &a, &b, &mut s), kind.eval(a, b));
            }
        }
        assert!(engine.constant(true));
    }

    #[test]
    fn tfhe_engine_matches_plain_engine() {
        let mut rng = SecureRng::seed_from_u64(7);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let plain = PlainEngine::new();
        let mut scratch = engine.scratch();
        for &kind in &ALL_GATE_KINDS {
            for (a, b) in [(false, true), (true, true), (false, false)] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let out = engine.eval(kind, &ca, &cb, &mut scratch);
                let want = plain.eval(kind, &a, &b, &mut ());
                assert_eq!(client.decrypt_bit(&out), want, "{kind}({a},{b})");
            }
        }
        assert!(client.decrypt_bit(&engine.constant(true)));
        assert!(!client.decrypt_bit(&engine.constant(false)));
    }

    #[test]
    fn tfhe_eval_into_is_bit_exact_with_eval() {
        let mut rng = SecureRng::seed_from_u64(19);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let mut scratch = engine.scratch();
        let ca = client.encrypt_bit(true, &mut rng);
        let cb = client.encrypt_bit(false, &mut rng);
        let mut out = engine.constant(false);
        for &kind in &ALL_GATE_KINDS {
            let want = engine.eval(kind, &ca, &cb, &mut scratch);
            engine.eval_into(kind, &ca, &cb, &mut scratch, &mut out);
            assert_eq!(out, want, "{kind}");
        }
    }

    #[test]
    fn tfhe_eval_batch_is_bit_exact_with_scalar_eval() {
        let mut rng = SecureRng::seed_from_u64(23);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let mut scratch = engine.scratch();
        let cts: Vec<_> = [true, false, true, true, false]
            .iter()
            .map(|&bit| client.encrypt_bit(bit, &mut rng))
            .collect();
        for kind in [GateKind::Nand, GateKind::Xor, GateKind::Oryn, GateKind::Not, GateKind::Buf] {
            let pairs: Vec<_> = (0..4).map(|i| (&cts[i], &cts[i + 1])).collect::<Vec<_>>();
            let want: Vec<_> =
                pairs.iter().map(|&(a, b)| engine.eval(kind, a, b, &mut scratch)).collect();
            let mut outs = vec![engine.constant(false); pairs.len()];
            engine.eval_batch(kind, &pairs, &mut outs, &mut scratch);
            assert_eq!(outs, want, "{kind}");
        }
    }
}
