//! Program executors: the reference sequential interpreter and the
//! multi-threaded wavefront executor implementing the paper's Algorithm 1
//! on a worker pool.
//!
//! Both are generic over a [`GateEngine`], so the identical scheduling
//! code serves plaintext validation and real homomorphic evaluation.

use crate::engine::GateEngine;
use crate::error::ExecError;
use pytfhe_netlist::topo::LevelSchedule;
use pytfhe_netlist::{Netlist, Node};
use std::time::Instant;

/// Execution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Gates evaluated.
    pub gates: usize,
    /// Scheduling waves executed (0 for the reference executor).
    pub waves: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// Runs `nl` on `inputs` with a single thread, in node order (valid
/// because netlists are topologically ordered by construction).
///
/// # Errors
///
/// Returns [`ExecError::InputCountMismatch`] or a validation error.
pub fn execute<E: GateEngine>(
    engine: &E,
    nl: &Netlist,
    inputs: &[E::Value],
) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
    if inputs.len() != nl.num_inputs() {
        return Err(ExecError::InputCountMismatch {
            expected: nl.num_inputs(),
            got: inputs.len(),
        });
    }
    nl.validate()?;
    let start = Instant::now();
    let filler = engine.constant(false);
    let mut values: Vec<E::Value> = vec![filler; nl.num_nodes()];
    let mut scratch = engine.scratch();
    let mut next_input = 0;
    for (i, node) in nl.nodes().iter().enumerate() {
        match *node {
            Node::Input => {
                values[i] = inputs[next_input].clone();
                next_input += 1;
            }
            Node::Gate { kind, a, b } => {
                let out = engine.eval(kind, &values[a.index()], &values[b.index()], &mut scratch);
                values[i] = out;
            }
        }
    }
    let outputs = nl.outputs().iter().map(|o| values[o.index()].clone()).collect();
    let stats = ExecStats { gates: nl.num_gates(), waves: 0, wall_s: start.elapsed().as_secs_f64() };
    Ok((outputs, stats))
}

/// Runs `nl` with the BFS wavefront of Algorithm 1 across `workers`
/// threads: each wave's ready gates are split across the pool, with a
/// barrier between waves (matching the algorithm's `Compute(C -
/// finished)` step).
///
/// # Errors
///
/// Returns [`ExecError`] on input mismatch, invalid programs, or worker
/// panics.
pub fn execute_parallel<E: GateEngine>(
    engine: &E,
    nl: &Netlist,
    inputs: &[E::Value],
    workers: usize,
) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
    let workers = workers.max(1);
    if inputs.len() != nl.num_inputs() {
        return Err(ExecError::InputCountMismatch {
            expected: nl.num_inputs(),
            got: inputs.len(),
        });
    }
    nl.validate()?;
    let start = Instant::now();
    let schedule = LevelSchedule::compute(nl);
    let filler = engine.constant(false);
    let mut values: Vec<E::Value> = vec![filler; nl.num_nodes()];
    for (slot, input) in nl.inputs().iter().zip(inputs) {
        values[slot.index()] = input.clone();
    }
    let nodes = nl.nodes();
    let mut waves_run = 0;
    for wave in &schedule.waves {
        if wave.is_empty() {
            continue;
        }
        waves_run += 1;
        if wave.len() == 1 || workers == 1 {
            // Serial fast path: no thread spawn for degenerate waves.
            let mut scratch = engine.scratch();
            for &g in wave {
                let Node::Gate { kind, a, b } = nodes[g as usize] else { unreachable!() };
                values[g as usize] =
                    engine.eval(kind, &values[a.index()], &values[b.index()], &mut scratch);
            }
            continue;
        }
        let chunk = wave.len().div_ceil(workers);
        let values_ref = &values;
        let results: Result<Vec<Vec<(u32, E::Value)>>, ExecError> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move |_| {
                            let mut scratch = engine.scratch();
                            part.iter()
                                .map(|&g| {
                                    let Node::Gate { kind, a, b } = nodes[g as usize] else {
                                        unreachable!("schedule contains only gates")
                                    };
                                    let out = engine.eval(
                                        kind,
                                        &values_ref[a.index()],
                                        &values_ref[b.index()],
                                        &mut scratch,
                                    );
                                    (g, out)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|_| ExecError::WorkerPanicked))
                    .collect()
            })
            .map_err(|_| ExecError::WorkerPanicked)?;
        for part in results? {
            for (g, v) in part {
                values[g as usize] = v;
            }
        }
    }
    let outputs = nl.outputs().iter().map(|o| values[o.index()].clone()).collect();
    let stats = ExecStats {
        gates: nl.num_gates(),
        waves: waves_run,
        wall_s: start.elapsed().as_secs_f64(),
    };
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PlainEngine, TfheEngine};
    use pytfhe_netlist::GateKind;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn adder4() -> Netlist {
        // A 4-bit ripple adder netlist, built by hand.
        let mut nl = Netlist::new();
        let a: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let b: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let mut carry: Option<pytfhe_netlist::NodeId> = None;
        for i in 0..4 {
            let axb = nl.add_gate(GateKind::Xor, a[i], b[i]).unwrap();
            let sum = match carry {
                None => axb,
                Some(c) => nl.add_gate(GateKind::Xor, axb, c).unwrap(),
            };
            let ab = nl.add_gate(GateKind::And, a[i], b[i]).unwrap();
            carry = Some(match carry {
                None => ab,
                Some(c) => {
                    let t = nl.add_gate(GateKind::And, axb, c).unwrap();
                    nl.add_gate(GateKind::Or, ab, t).unwrap()
                }
            });
            nl.mark_output(sum).unwrap();
        }
        nl.mark_output(carry.unwrap()).unwrap();
        nl
    }

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn reference_executor_matches_eval_plain() {
        let nl = adder4();
        let engine = PlainEngine::new();
        for x in 0u64..16 {
            for y in [0u64, 3, 9, 15] {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let (out, stats) = execute(&engine, &nl, &input).unwrap();
                assert_eq!(from_bits(&out), x + y);
                assert_eq!(out, nl.eval_plain(&input));
                assert_eq!(stats.gates, nl.num_gates());
            }
        }
    }

    #[test]
    fn parallel_executor_agrees_with_reference() {
        let nl = adder4();
        let engine = PlainEngine::new();
        for workers in [1, 2, 4, 16] {
            for x in [0u64, 7, 12] {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(13, 4));
                let (seq, _) = execute(&engine, &nl, &input).unwrap();
                let (par, stats) = execute_parallel(&engine, &nl, &input, workers).unwrap();
                assert_eq!(seq, par, "workers={workers}");
                assert!(stats.waves > 0);
            }
        }
    }

    #[test]
    fn input_count_is_checked() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let err = execute(&engine, &nl, &[true; 3]).unwrap_err();
        assert_eq!(err, ExecError::InputCountMismatch { expected: 8, got: 3 });
        let err = execute_parallel(&engine, &nl, &[true; 9], 2).unwrap_err();
        assert_eq!(err, ExecError::InputCountMismatch { expected: 8, got: 9 });
    }

    #[test]
    fn encrypted_end_to_end_both_executors() {
        let mut rng = SecureRng::seed_from_u64(11);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let nl = adder4();
        let (x, y) = (11u64, 6u64);
        let mut bits = to_bits(x, 4);
        bits.extend(to_bits(y, 4));
        let cts = client.encrypt_bits(&bits, &mut rng);
        let (out, _) = execute(&engine, &nl, &cts).unwrap();
        assert_eq!(from_bits(&client.decrypt_bits(&out)), x + y);
        let (out, stats) = execute_parallel(&engine, &nl, &cts, 4).unwrap();
        assert_eq!(from_bits(&client.decrypt_bits(&out)), x + y);
        assert!(stats.wall_s > 0.0);
    }

    #[test]
    fn parallel_speedup_on_wide_circuits() {
        // A wide, embarrassingly parallel wave of encrypted gates should
        // actually go faster with more workers (smoke-check, generous
        // threshold to stay robust on loaded CI machines).
        let mut rng = SecureRng::seed_from_u64(12);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let gates: Vec<_> =
            (0..64).map(|_| nl.add_gate(GateKind::Nand, a, b).unwrap()).collect();
        for g in gates {
            nl.mark_output(g).unwrap();
        }
        let cts = client.encrypt_bits(&[true, true], &mut rng);
        let (_, s1) = execute_parallel(&engine, &nl, &cts, 1).unwrap();
        let (out, s4) = execute_parallel(&engine, &nl, &cts, 4).unwrap();
        assert!(out.iter().all(|ct| !client.decrypt_bit(ct)));
        // Wall-clock improvement is only observable with real cores.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(
                s4.wall_s < s1.wall_s,
                "4 workers ({:.3}s) should beat 1 worker ({:.3}s)",
                s4.wall_s,
                s1.wall_s
            );
        }
    }
}
