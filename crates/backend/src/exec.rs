//! Program executors: the reference sequential interpreter and the
//! multi-threaded wavefront executor implementing the paper's Algorithm 1
//! on a worker pool.
//!
//! Both are generic over a [`GateEngine`], so the identical scheduling
//! code serves plaintext validation and real homomorphic evaluation.

use crate::checkpoint::{netlist_fingerprint, Checkpoint, CheckpointStore, Checkpointable};
use crate::engine::GateEngine;
use crate::error::ExecError;
use crate::fault::{FaultInjector, RetryPolicy, TaskFate};
use crate::pool::{Job, SlotCells, WorkerPool};
use pytfhe_netlist::topo::{LevelSchedule, Levels};
use pytfhe_netlist::{GateKind, Netlist, Node};
use pytfhe_telemetry as telemetry;
use std::time::Instant;

/// Execution statistics.
///
/// All executors report the same type; the fault-tolerance counters stay
/// zero for the reference and plain-parallel executors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Gates evaluated.
    pub gates: usize,
    /// Scheduling waves executed (0 for the reference executor).
    pub waves: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Failed task attempts that were retried.
    pub retries: u64,
    /// Workers permanently evicted after a crash.
    pub evicted_workers: usize,
    /// Wave-barrier checkpoints written.
    pub checkpoints: usize,
    /// The wave a resumed run restarted after, if it resumed at all.
    pub resumed_from_wave: Option<usize>,
    /// Seconds spent capturing the kernel plan (0 when the plan came from
    /// the cache, and for the non-graph executors).
    pub capture_s: f64,
    /// Seconds spent replaying the captured plan (kernel-graph executor
    /// only; `wall_s` additionally covers capture and cache lookup).
    pub replay_s: f64,
    /// Whether the kernel-graph executor reused a cached plan instead of
    /// capturing one.
    pub plan_cached: bool,
    /// Sub-graph batches replayed (the CUDA-graph cuts of Figure 9).
    pub batches: usize,
    /// Batched kernel launches issued (one per same-kind gate group per
    /// wave, per worker lane).
    pub kernel_launches: u64,
    /// Kernel launches per gate kind, indexed by
    /// [`pytfhe_netlist::GateKind::opcode`].
    pub kernels_by_kind: [u64; 16],
    /// Worker-pool tasks executed by a lane other than the one they
    /// were queued on (work-stealing activity; 0 on serial runs).
    pub steals: u64,
    /// Fused LUT nodes evaluated (0 on boolean-decomposed programs).
    pub luts: usize,
    /// Batched LUT kernel launches (one per same-width group per worker
    /// chunk; affine LUTs never launch a kernel).
    pub lut_launches: u64,
    /// Bootstraps the TFHE engine executes for this program: one per
    /// binary gate plus one per non-affine LUT cone. `Not`, `Buf`,
    /// constants, and affine LUTs are linear and cost none. This is the
    /// honest denominator for LUT-lowering speedups — identical for the
    /// plaintext engine, which runs the same schedule.
    pub bootstraps: u64,
    /// Name of the SIMD kernel path the TFHE layer dispatched to
    /// (`"scalar"`, `"avx2"`, or `"neon"`; see `pytfhe_tfhe::simd`).
    pub simd_path: &'static str,
}

impl ExecStats {
    /// Zeroed statistics for a program of `gates` gates.
    pub(crate) fn for_gates(gates: usize) -> Self {
        ExecStats {
            gates,
            waves: 0,
            wall_s: 0.0,
            retries: 0,
            evicted_workers: 0,
            checkpoints: 0,
            resumed_from_wave: None,
            capture_s: 0.0,
            replay_s: 0.0,
            plan_cached: false,
            batches: 0,
            kernel_launches: 0,
            kernels_by_kind: [0; 16],
            steals: 0,
            luts: 0,
            lut_launches: 0,
            bootstraps: 0,
            simd_path: pytfhe_tfhe::simd::active_path().name(),
        }
    }

    /// Serializes every counter as one JSON object — the single
    /// machine-readable form used by `repro`, examples, and tests
    /// (schema is stable: all fields always present, `null` for a run
    /// that did not resume).
    pub fn to_json(&self) -> String {
        let kinds =
            self.kernels_by_kind.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", ");
        format!(
            concat!(
                "{{\n",
                "  \"gates\": {gates},\n",
                "  \"waves\": {waves},\n",
                "  \"wall_s\": {wall_s},\n",
                "  \"retries\": {retries},\n",
                "  \"evicted_workers\": {evicted_workers},\n",
                "  \"checkpoints\": {checkpoints},\n",
                "  \"resumed_from_wave\": {resumed},\n",
                "  \"capture_s\": {capture_s},\n",
                "  \"replay_s\": {replay_s},\n",
                "  \"plan_cached\": {plan_cached},\n",
                "  \"batches\": {batches},\n",
                "  \"kernel_launches\": {kernel_launches},\n",
                "  \"kernels_by_kind\": [{kinds}],\n",
                "  \"steals\": {steals},\n",
                "  \"luts\": {luts},\n",
                "  \"lut_launches\": {lut_launches},\n",
                "  \"bootstraps\": {bootstraps},\n",
                "  \"simd_path\": \"{simd_path}\"\n",
                "}}"
            ),
            gates = self.gates,
            waves = self.waves,
            wall_s = self.wall_s,
            retries = self.retries,
            evicted_workers = self.evicted_workers,
            checkpoints = self.checkpoints,
            resumed = match self.resumed_from_wave {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            },
            capture_s = self.capture_s,
            replay_s = self.replay_s,
            plan_cached = self.plan_cached,
            batches = self.batches,
            kernel_launches = self.kernel_launches,
            kinds = kinds,
            steals = self.steals,
            luts = self.luts,
            lut_launches = self.lut_launches,
            bootstraps = self.bootstraps,
            simd_path = self.simd_path,
        )
    }

    /// Publishes the run's counters into the global telemetry metrics
    /// registry (the Prometheus and summary exporters read from there).
    /// No-op when telemetry is disabled.
    pub fn record_metrics(&self) {
        if !telemetry::enabled() {
            return;
        }
        let m = telemetry::metrics();
        m.counter_add("exec_gates_total", self.gates as u64);
        m.counter_add("exec_waves_total", self.waves as u64);
        m.counter_add("exec_retries_total", self.retries);
        m.counter_add("exec_evicted_workers_total", self.evicted_workers as u64);
        m.counter_add("exec_checkpoints_total", self.checkpoints as u64);
        m.counter_add("exec_batches_total", self.batches as u64);
        m.counter_add("exec_kernel_launches_total", self.kernel_launches);
        m.counter_add("exec_steals_total", self.steals);
        m.counter_add("exec_luts_total", self.luts as u64);
        m.counter_add("exec_lut_launches_total", self.lut_launches);
        m.counter_add("exec_bootstraps_total", self.bootstraps);
        m.observe_seconds("exec_wall_seconds", self.wall_s);
    }
}

impl std::fmt::Display for ExecStats {
    /// Human-readable counter block. Fault-tolerance and kernel-graph
    /// lines only appear on runs where those paths were exercised.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gates             {}\nwaves             {}\nwall time         {:.3} s\nsimd path         {}",
            self.gates, self.waves, self.wall_s, self.simd_path
        )?;
        if let Some(w) = self.resumed_from_wave {
            write!(f, "\nresumed from wave {w}")?;
        }
        if self.luts > 0 {
            write!(
                f,
                "\nfused LUTs        {}\nlut launches      {}\nbootstraps        {}",
                self.luts, self.lut_launches, self.bootstraps
            )?;
        }
        if self.retries > 0 || self.evicted_workers > 0 || self.checkpoints > 0 {
            write!(
                f,
                "\nretries           {}\nevicted workers   {}\ncheckpoints       {}",
                self.retries, self.evicted_workers, self.checkpoints
            )?;
        }
        if self.batches > 0 || self.plan_cached || self.capture_s > 0.0 || self.replay_s > 0.0 {
            write!(
                f,
                "\nplan              {}\ncapture           {:.3} s\nreplay            {:.3} s\nbatches           {}\nkernel launches   {}",
                if self.plan_cached { "cached" } else { "captured" },
                self.capture_s,
                self.replay_s,
                self.batches,
                self.kernel_launches
            )?;
        }
        Ok(())
    }
}

/// Smallest wave size worth a pool dispatch: below this, even the
/// cheap hand-off to the persistent [`WorkerPool`] outweighs the gate
/// work itself (most circuits have long tails of 1–2-gate waves), so
/// those waves run inline on the caller's thread. Engines override
/// this per-gate-cost-aware via [`GateEngine::parallel_grain`]: the
/// plaintext engine raises it to thousands of gates (a plain gate is a
/// couple of table lookups), while the TFHE engine keeps it at 2 (a
/// bootstrap costs milliseconds, so any splittable wave is worth
/// dispatching). Retuned down from 4 when the wavefront moved from
/// per-wave `thread::scope` spawns onto the shared pool.
pub const PARALLEL_WAVE_MIN: usize = 2;

/// Bootstraps the TFHE engine executes for `nl`: one per binary gate
/// plus one per non-affine LUT cone
/// ([`pytfhe_netlist::LutSpec::bootstraps`]). `Not`,
/// `Buf`, constants, and affine LUTs are linear. All executors report
/// this through [`ExecStats::bootstraps`], so boolean-decomposed and
/// LUT-lowered runs of the same workload compare on one denominator.
pub fn netlist_bootstraps(nl: &Netlist) -> u64 {
    nl.nodes()
        .iter()
        .map(|node| match *node {
            Node::Input => 0,
            Node::Gate { kind, .. } => u64::from(!kind.is_const() && !kind.is_unary()),
            Node::Lut { spec, .. } => spec.bootstraps(),
        })
        .sum()
}

/// Evaluates one scheduled node in place (shared by the serial paths of
/// every executor). `msg_precision` is `Some` on LUT-lowered netlists,
/// where constants must ride the message encoding.
fn eval_node<E: GateEngine>(
    engine: &E,
    nodes: &[Node],
    values: &mut [E::Value],
    g: u32,
    msg_precision: Option<u8>,
    scratch: &mut E::Scratch,
) {
    let out = eval_node_value(engine, nodes, values, g, msg_precision, scratch);
    values[g as usize] = out;
}

/// Allocating node evaluation against a read-only value table (the
/// fault-tolerant executor's workers collect results off to the side).
fn eval_node_value<E: GateEngine>(
    engine: &E,
    nodes: &[Node],
    values: &[E::Value],
    g: u32,
    msg_precision: Option<u8>,
    scratch: &mut E::Scratch,
) -> E::Value {
    match nodes[g as usize] {
        Node::Gate { kind, a, b } => match msg_precision {
            Some(p) if kind.is_const() => engine.constant_message(kind == GateKind::Const1, p),
            _ => engine.eval(kind, &values[a.index()], &values[b.index()], scratch),
        },
        Node::Lut { spec, ins } => {
            let refs = [
                &values[ins[0].index()],
                &values[ins[1].index()],
                &values[ins[2].index()],
                &values[ins[3].index()],
            ];
            engine.eval_lut(spec, &refs, scratch)
        }
        Node::Input => unreachable!("schedules contain only computed nodes"),
    }
}

/// The `(table, leaf refs)` batch item for LUT node `g`.
fn lut_item<'v, V>(nodes: &[Node], values: &'v [V], g: u32) -> (u16, [&'v V; 4]) {
    let Node::Lut { spec, ins } = nodes[g as usize] else {
        unreachable!("bucket contains only LUT nodes")
    };
    (
        spec.table,
        [
            &values[ins[0].index()],
            &values[ins[1].index()],
            &values[ins[2].index()],
            &values[ins[3].index()],
        ],
    )
}

/// Runs `nl` on `inputs` with a single thread, in node order (valid
/// because netlists are topologically ordered by construction).
///
/// # Errors
///
/// Returns [`ExecError::InputCountMismatch`] or a validation error.
pub fn execute<E: GateEngine>(
    engine: &E,
    nl: &Netlist,
    inputs: &[E::Value],
) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
    if inputs.len() != nl.num_inputs() {
        return Err(ExecError::InputCountMismatch { expected: nl.num_inputs(), got: inputs.len() });
    }
    nl.validate()?;
    let _span =
        telemetry::span_with("exec", || format!("reference execute: {} gates", nl.num_gates()));
    let start = Instant::now();
    let filler = engine.constant(false);
    let mut values: Vec<E::Value> = vec![filler; nl.num_nodes()];
    let mut scratch = engine.scratch();
    let mut next_input = 0;
    let msg_precision = nl.lut_precision();
    let nodes = nl.nodes();
    for (i, node) in nodes.iter().enumerate() {
        match *node {
            Node::Input => {
                values[i] = inputs[next_input].clone();
                next_input += 1;
            }
            Node::Gate { .. } | Node::Lut { .. } => {
                eval_node(engine, nodes, &mut values, i as u32, msg_precision, &mut scratch);
            }
        }
    }
    let outputs = nl.outputs().iter().map(|o| values[o.index()].clone()).collect();
    let mut stats = ExecStats::for_gates(nl.num_gates());
    stats.luts = nl.num_luts();
    stats.bootstraps = netlist_bootstraps(nl);
    stats.wall_s = start.elapsed().as_secs_f64();
    stats.record_metrics();
    Ok((outputs, stats))
}

/// Runs `nl` with the BFS wavefront of Algorithm 1 across `workers`
/// lanes of the shared [`WorkerPool`]: each wave's ready gates are
/// split into per-lane chunks dispatched onto the pool (idle lanes
/// steal from loaded ones), with a barrier between waves (matching the
/// algorithm's `Compute(C - finished)` step). Waves narrower than the
/// engine's [`GateEngine::parallel_grain`] run inline on the caller's
/// thread. Wave results are staged into a side buffer and swapped into
/// the value table only after the whole wave completes, so workers
/// never write slots another chunk might read.
///
/// # Errors
///
/// Returns [`ExecError`] on input mismatch, invalid programs, or worker
/// panics.
pub fn execute_parallel<E: GateEngine>(
    engine: &E,
    nl: &Netlist,
    inputs: &[E::Value],
    workers: usize,
) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
    let workers = workers.max(1);
    if inputs.len() != nl.num_inputs() {
        return Err(ExecError::InputCountMismatch { expected: nl.num_inputs(), got: inputs.len() });
    }
    nl.validate()?;
    let _span = telemetry::span_with("exec", || {
        format!("wavefront execute: {} gates, {workers} workers", nl.num_gates())
    });
    let start = Instant::now();
    let schedule = LevelSchedule::compute(nl);
    let filler = engine.constant(false);
    let mut values: Vec<E::Value> = vec![filler; nl.num_nodes()];
    for (slot, input) in nl.inputs().iter().zip(inputs) {
        values[slot.index()] = input.clone();
    }
    let nodes = nl.nodes();
    let msg_precision = nl.lut_precision();
    let grain = engine.parallel_grain().max(PARALLEL_WAVE_MIN);
    let mut waves_run = 0;
    let mut steals = 0u64;
    let mut lut_launches = 0u64;
    // Serial scratch is created lazily once and reused across every
    // narrow wave; pool scratches are grown to the widest fan-out seen
    // so far and reused across waves (keyed by chunk index so the
    // per-chunk scratch assignment is deterministic even when lanes
    // steal).
    let mut serial_scratch: Option<E::Scratch> = None;
    let mut pool_scratches: Vec<E::Scratch> = Vec::new();
    // Stage buffer for pooled waves: workers write results here and
    // the main thread swaps them into `values` after the barrier.
    let mut stage: Vec<E::Value> = Vec::new();
    // Per-wave partition, reused across waves: gates and affine LUTs in
    // wave order, bootstrapping LUTs bucketed by (width, precision) so
    // each bucket dispatches as batched same-width kernels.
    let mut inline: Vec<u32> = Vec::new();
    let mut buckets: std::collections::BTreeMap<(u8, u8), Vec<u32>> = Default::default();
    for (wave_idx, wave) in schedule.waves.iter().enumerate() {
        if wave.is_empty() {
            continue;
        }
        waves_run += 1;
        let _wave_span =
            telemetry::span_with("exec", || format!("wave {wave_idx}: {} gates", wave.len()));
        telemetry::counter_sample("exec", "wave_width", wave.len() as f64);
        inline.clear();
        buckets.values_mut().for_each(Vec::clear);
        for &g in wave {
            match nodes[g as usize] {
                Node::Lut { spec, .. } if spec.bootstraps() > 0 => {
                    buckets.entry((spec.width, spec.precision)).or_default().push(g);
                }
                _ => inline.push(g),
            }
        }
        if wave.len() < grain || workers == 1 {
            // Serial fast path: no pool dispatch for narrow waves, but
            // LUT buckets still go through the batched kernels.
            let scratch = serial_scratch.get_or_insert_with(|| engine.scratch());
            for &g in &inline {
                eval_node(engine, nodes, &mut values, g, msg_precision, scratch);
            }
            for (&(w, p), ids) in buckets.iter().filter(|(_, ids)| !ids.is_empty()) {
                if stage.len() < ids.len() {
                    stage.resize_with(ids.len(), || engine.constant(false));
                }
                let items: Vec<_> = ids.iter().map(|&g| lut_item(nodes, &values, g)).collect();
                engine.eval_lut_batch(w, p, &items, &mut stage[..ids.len()], scratch);
                drop(items);
                lut_launches += 1;
                for (i, &g) in ids.iter().enumerate() {
                    std::mem::swap(&mut values[g as usize], &mut stage[i]);
                }
            }
            continue;
        }
        let chunk = wave.len().div_ceil(workers);
        if stage.len() < wave.len() {
            stage.resize_with(wave.len(), || engine.constant(false));
        }
        // Count the chunks first so every job gets a dedicated scratch
        // slot.
        let n_chunks = inline.len().div_ceil(chunk)
            + buckets.values().map(|ids| ids.len().div_ceil(chunk)).sum::<usize>();
        while pool_scratches.len() < n_chunks {
            pool_scratches.push(engine.scratch());
        }
        let cells = SlotCells::new(std::mem::take(&mut pool_scratches));
        let cells_ref = &cells;
        let values_ref = &values;
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut stage_rest: &mut [E::Value] = &mut stage[..wave.len()];
        let mut slot = 0usize;
        if !inline.is_empty() {
            let (inline_stage, rest) = stage_rest.split_at_mut(inline.len());
            stage_rest = rest;
            for (part, stage_part) in inline.chunks(chunk).zip(inline_stage.chunks_mut(chunk)) {
                let job_slot = slot;
                slot += 1;
                jobs.push(Box::new(move |lane| {
                    let _chunk_span = telemetry::worker_span_with(
                        "exec",
                        || format!("wave {wave_idx} chunk: {} gates", part.len()),
                        lane as u32,
                    );
                    // SAFETY: `job_slot` is unique per job (one chunk,
                    // one slot), so no two jobs touch the same scratch.
                    let scratch = unsafe { cells_ref.slot(job_slot) };
                    for (&g, out) in part.iter().zip(stage_part.iter_mut()) {
                        match nodes[g as usize] {
                            Node::Gate { kind, a, b } => match msg_precision {
                                Some(p) if kind.is_const() => {
                                    *out = engine.constant_message(kind == GateKind::Const1, p);
                                }
                                _ => engine.eval_into(
                                    kind,
                                    &values_ref[a.index()],
                                    &values_ref[b.index()],
                                    scratch,
                                    out,
                                ),
                            },
                            Node::Lut { spec, ins } => {
                                let refs = [
                                    &values_ref[ins[0].index()],
                                    &values_ref[ins[1].index()],
                                    &values_ref[ins[2].index()],
                                    &values_ref[ins[3].index()],
                                ];
                                engine.eval_lut_into(spec, &refs, scratch, out);
                            }
                            Node::Input => unreachable!("schedules contain only computed nodes"),
                        }
                    }
                }));
            }
        }
        for (&(w, p), ids) in buckets.iter().filter(|(_, ids)| !ids.is_empty()) {
            let (bucket_stage, rest) = stage_rest.split_at_mut(ids.len());
            stage_rest = rest;
            for (part, stage_part) in ids.chunks(chunk).zip(bucket_stage.chunks_mut(chunk)) {
                let job_slot = slot;
                slot += 1;
                lut_launches += 1;
                jobs.push(Box::new(move |lane| {
                    let _chunk_span = telemetry::worker_span_with(
                        "exec",
                        || format!("wave {wave_idx} lut{w} chunk: {} cones", part.len()),
                        lane as u32,
                    );
                    // SAFETY: unique slot per job, as above.
                    let scratch = unsafe { cells_ref.slot(job_slot) };
                    let items: Vec<_> =
                        part.iter().map(|&g| lut_item(nodes, values_ref, g)).collect();
                    engine.eval_lut_batch(w, p, &items, stage_part, scratch);
                }));
            }
        }
        let run = WorkerPool::global().run(workers, jobs);
        pool_scratches = cells.into_inner();
        steals += run?.steals;
        // Barrier passed: publish the staged wave results in partition
        // order (inline nodes first, then the LUT buckets). Swap (not
        // clone) so ciphertext buffers move without reallocation.
        let order = inline.iter().chain(buckets.values().flatten());
        for (i, &g) in order.enumerate() {
            std::mem::swap(&mut values[g as usize], &mut stage[i]);
        }
    }
    let outputs = nl.outputs().iter().map(|o| values[o.index()].clone()).collect();
    let mut stats = ExecStats::for_gates(nl.num_gates());
    stats.waves = waves_run;
    stats.steals = steals;
    stats.luts = nl.num_luts();
    stats.lut_launches = lut_launches;
    stats.bootstraps = netlist_bootstraps(nl);
    stats.wall_s = start.elapsed().as_secs_f64();
    stats.record_metrics();
    Ok((outputs, stats))
}

/// Configuration of [`execute_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Initial worker count (crashed workers are evicted, so the
    /// effective pool can shrink down to 1 before the run fails).
    pub workers: usize,
    /// Retry/backoff/deadline policy for failed gate tasks.
    pub retry: RetryPolicy,
    /// Completed waves between checkpoints (1 = snapshot at every
    /// barrier, 0 = never snapshot even when a store is supplied).
    pub checkpoint_every: usize,
}

impl ResilientConfig {
    /// `workers` workers, default retry policy, checkpoint every wave.
    pub fn new(workers: usize) -> Self {
        ResilientConfig { workers, retry: RetryPolicy::default(), checkpoint_every: 1 }
    }
}

/// Per-gate results of one worker's chunk in a wave.
type ChunkResults<V> = Vec<(u32, V)>;

/// What one worker brought back from its chunk of a partition round.
enum WorkerOutcome<V> {
    /// The worker crashed: its chunk is lost, the worker is evicted.
    Crashed,
    /// All assigned gates completed (some possibly after retries).
    Done { results: ChunkResults<V>, retries: u64 },
    /// A gate ran out of retry attempts.
    Exhausted { gate: u32, attempts: u32 },
}

/// Runs `nl` with the wavefront of Algorithm 1 under a fault model:
/// failed gate tasks are retried with capped exponential backoff and
/// jitter, stragglers past their deadline are abandoned and retried,
/// crashed workers are permanently evicted (their in-flight chunk is
/// re-partitioned across the survivors at the wave barrier), and — when a
/// [`CheckpointStore`] is supplied — the live frontier is snapshotted
/// after each completed wave so an interrupted run resumes from the last
/// barrier instead of gate zero.
///
/// With [`crate::fault::NoFaults`] this behaves exactly like
/// [`execute_parallel`] and produces bit-identical outputs; faults never
/// change results, only the path taken to them.
///
/// # Errors
///
/// Returns the usual validation errors, plus [`ExecError::Exhausted`]
/// when a task's retry budget runs out, [`ExecError::NoWorkers`] when
/// every worker has been evicted, [`ExecError::WaveDeadlineExceeded`]
/// when a wave blows its deadline, and checkpoint errors when a supplied
/// store cannot round-trip a snapshot (including
/// [`ExecError::BadCheckpoint`] if the store holds a snapshot of a
/// *different* program).
pub fn execute_resilient<E, F>(
    engine: &E,
    nl: &Netlist,
    inputs: &[E::Value],
    cfg: &ResilientConfig,
    faults: &F,
    mut store: Option<&mut dyn CheckpointStore>,
) -> Result<(Vec<E::Value>, ExecStats), ExecError>
where
    E: GateEngine,
    E::Value: Checkpointable,
    F: FaultInjector + ?Sized,
{
    if inputs.len() != nl.num_inputs() {
        return Err(ExecError::InputCountMismatch { expected: nl.num_inputs(), got: inputs.len() });
    }
    nl.validate()?;
    let _span = telemetry::span_with("exec", || {
        format!("resilient execute: {} gates, {} workers", nl.num_gates(), cfg.workers)
    });
    let start = Instant::now();
    let levels = Levels::compute(nl);
    let schedule = LevelSchedule::from_levels(nl, &levels);
    let mut stats = ExecStats::for_gates(nl.num_gates());
    stats.luts = nl.num_luts();
    stats.bootstraps = netlist_bootstraps(nl);
    let msg_precision = nl.lut_precision();
    let filler = engine.constant(false);
    let mut values: Vec<E::Value> = vec![filler; nl.num_nodes()];
    for (slot, input) in nl.inputs().iter().zip(inputs) {
        values[slot.index()] = input.clone();
    }

    // Liveness for frontier snapshots: a node is live past wave `k` if
    // some gate of a later wave reads it, or it is a program output.
    let nodes = nl.nodes();
    let mut last_read = vec![0u32; nl.num_nodes()];
    for (i, node) in nodes.iter().enumerate() {
        let l = levels.level[i];
        match *node {
            Node::Gate { kind, a, b } => {
                if kind.is_const() {
                    continue;
                }
                last_read[a.index()] = last_read[a.index()].max(l);
                if !kind.is_unary() {
                    last_read[b.index()] = last_read[b.index()].max(l);
                }
            }
            Node::Lut { spec, ins } => {
                for id in &ins[..spec.width as usize] {
                    last_read[id.index()] = last_read[id.index()].max(l);
                }
            }
            Node::Input => {}
        }
    }
    let mut is_output = vec![false; nl.num_nodes()];
    for o in nl.outputs() {
        is_output[o.index()] = true;
    }

    let fingerprint = netlist_fingerprint(nl);
    let mut start_wave = 0usize;
    if let Some(store) = store.as_deref_mut() {
        if let Some(ckpt) = store.load()? {
            if ckpt.fingerprint() != fingerprint {
                return Err(ExecError::BadCheckpoint {
                    reason: "checkpoint belongs to a different program",
                });
            }
            ckpt.restore_into(&mut values)?;
            start_wave = ckpt.wave() + 1;
            stats.resumed_from_wave = Some(ckpt.wave());
        }
    }

    let mut alive: Vec<usize> = (0..cfg.workers.max(1)).collect();
    for (wave_idx, wave) in schedule.waves.iter().enumerate() {
        if wave_idx < start_wave || wave.is_empty() {
            continue;
        }
        stats.waves += 1;
        let _wave_span =
            telemetry::span_with("exec", || format!("wave {wave_idx}: {} gates", wave.len()));
        telemetry::counter_sample("exec", "wave_width", wave.len() as f64);
        let wave_start = Instant::now();
        let mut pending: Vec<u32> = wave.clone();
        while !pending.is_empty() {
            telemetry::counter_sample("exec", "queue_depth", pending.len() as f64);
            if let Some(deadline) = cfg.retry.wave_deadline {
                if wave_start.elapsed() > deadline {
                    return Err(ExecError::WaveDeadlineExceeded { wave: wave_idx });
                }
            }
            if alive.is_empty() {
                return Err(ExecError::NoWorkers { wave: wave_idx });
            }
            let chunk = pending.len().div_ceil(alive.len());
            let values_ref = &values;
            let policy = &cfg.retry;
            type Outcomes<V> = Result<Vec<(usize, WorkerOutcome<V>)>, ExecError>;
            let outcomes: Outcomes<E::Value> = std::thread::scope(|scope| {
                let handles: Vec<_> = pending
                    .chunks(chunk)
                    .zip(&alive)
                    .map(|(part, &worker)| {
                        let handle = scope.spawn(move || {
                            run_chunk(
                                engine,
                                nodes,
                                values_ref,
                                part,
                                wave_idx,
                                worker,
                                faults,
                                policy,
                                msg_precision,
                            )
                        });
                        (worker, handle)
                    })
                    .collect();
                // Join every handle (no short-circuit) so a panicked
                // worker surfaces as an error, not a scope panic.
                let joined: Vec<_> = handles.into_iter().map(|(w, h)| (w, h.join())).collect();
                joined
                    .into_iter()
                    .map(|(w, r)| r.map(|o| (w, o)).map_err(|_| ExecError::WorkerPanicked))
                    .collect()
            });
            let mut completed = std::collections::HashSet::new();
            for (worker, outcome) in outcomes? {
                match outcome {
                    WorkerOutcome::Crashed => {
                        alive.retain(|&w| w != worker);
                        stats.evicted_workers += 1;
                        if telemetry::enabled() {
                            telemetry::instant_on_worker(
                                "exec",
                                format!("worker {worker} evicted (wave {wave_idx})"),
                                worker as u32,
                            );
                        }
                    }
                    WorkerOutcome::Done { results, retries } => {
                        stats.retries += retries;
                        for (g, v) in results {
                            values[g as usize] = v;
                            completed.insert(g);
                        }
                    }
                    WorkerOutcome::Exhausted { gate, attempts } => {
                        return Err(ExecError::Exhausted { wave: wave_idx, gate, attempts });
                    }
                }
            }
            pending.retain(|g| !completed.contains(g));
        }
        if cfg.checkpoint_every > 0 && stats.waves.is_multiple_of(cfg.checkpoint_every) {
            if let Some(store) = store.as_deref_mut() {
                let frontier = (0..nl.num_nodes()).filter_map(|i| {
                    let computed_gate =
                        !matches!(nodes[i], Node::Input) && levels.level[i] <= wave_idx as u32;
                    let live = last_read[i] > wave_idx as u32 || is_output[i];
                    (computed_gate && live).then(|| (i as u32, &values[i]))
                });
                let ckpt_span =
                    telemetry::span_with("exec", || format!("checkpoint after wave {wave_idx}"));
                store.save(&Checkpoint::capture(wave_idx, fingerprint, frontier))?;
                ckpt_span.end();
                stats.checkpoints += 1;
            }
        }
    }
    let outputs = nl.outputs().iter().map(|o| values[o.index()].clone()).collect();
    stats.wall_s = start.elapsed().as_secs_f64();
    stats.record_metrics();
    Ok((outputs, stats))
}

/// One worker's pass over its chunk: evaluate each gate, retrying
/// injected failures with the policy's backoff, or crash wholesale if the
/// injector says this worker dies in this wave.
#[allow(clippy::too_many_arguments)]
fn run_chunk<E, F>(
    engine: &E,
    nodes: &[Node],
    values: &[E::Value],
    part: &[u32],
    wave: usize,
    worker: usize,
    faults: &F,
    policy: &RetryPolicy,
    msg_precision: Option<u8>,
) -> WorkerOutcome<E::Value>
where
    E: GateEngine,
    F: FaultInjector + ?Sized,
{
    if faults.worker_crashes(wave, worker) {
        return WorkerOutcome::Crashed;
    }
    let _chunk_span = telemetry::worker_span_with(
        "exec",
        || format!("wave {wave} chunk: {} gates", part.len()),
        worker as u32,
    );
    let mut scratch = engine.scratch();
    let mut results = Vec::with_capacity(part.len());
    let mut retries = 0u64;
    for &g in part {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let failed = match faults.task_fate(wave, g, attempt) {
                TaskFate::Success => false,
                TaskFate::Fail => true,
                TaskFate::Slow(latency) => {
                    // Past the task deadline the attempt is abandoned
                    // immediately (in a real cluster the driver stops
                    // waiting); within it, the straggler really stalls.
                    if policy.task_deadline.is_some_and(|d| latency > d) {
                        true
                    } else {
                        std::thread::sleep(latency);
                        false
                    }
                }
            };
            if failed {
                retries += 1;
                if telemetry::enabled() {
                    telemetry::instant_on_worker(
                        "exec",
                        format!("retry gate {g} (attempt {attempt})"),
                        worker as u32,
                    );
                }
                if attempt >= policy.max_attempts.max(1) {
                    return WorkerOutcome::Exhausted { gate: g, attempts: attempt };
                }
                std::thread::sleep(policy.backoff(g, attempt));
                continue;
            }
            let out = eval_node_value(engine, nodes, values, g, msg_precision, &mut scratch);
            results.push((g, out));
            break;
        }
    }
    WorkerOutcome::Done { results, retries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PlainEngine, TfheEngine};
    use pytfhe_netlist::GateKind;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn adder4() -> Netlist {
        // A 4-bit ripple adder netlist, built by hand.
        let mut nl = Netlist::new();
        let a: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let b: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let mut carry: Option<pytfhe_netlist::NodeId> = None;
        for i in 0..4 {
            let axb = nl.add_gate(GateKind::Xor, a[i], b[i]).unwrap();
            let sum = match carry {
                None => axb,
                Some(c) => nl.add_gate(GateKind::Xor, axb, c).unwrap(),
            };
            let ab = nl.add_gate(GateKind::And, a[i], b[i]).unwrap();
            carry = Some(match carry {
                None => ab,
                Some(c) => {
                    let t = nl.add_gate(GateKind::And, axb, c).unwrap();
                    nl.add_gate(GateKind::Or, ab, t).unwrap()
                }
            });
            nl.mark_output(sum).unwrap();
        }
        nl.mark_output(carry.unwrap()).unwrap();
        nl
    }

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (x >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn reference_executor_matches_eval_plain() {
        let nl = adder4();
        let engine = PlainEngine::new();
        for x in 0u64..16 {
            for y in [0u64, 3, 9, 15] {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let (out, stats) = execute(&engine, &nl, &input).unwrap();
                assert_eq!(from_bits(&out), x + y);
                assert_eq!(out, nl.eval_plain(&input));
                assert_eq!(stats.gates, nl.num_gates());
            }
        }
    }

    #[test]
    fn parallel_executor_agrees_with_reference() {
        let nl = adder4();
        let engine = PlainEngine::new();
        for workers in [1, 2, 4, 16] {
            for x in [0u64, 7, 12] {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(13, 4));
                let (seq, _) = execute(&engine, &nl, &input).unwrap();
                let (par, stats) = execute_parallel(&engine, &nl, &input, workers).unwrap();
                assert_eq!(seq, par, "workers={workers}");
                assert!(stats.waves > 0);
            }
        }
    }

    #[test]
    fn narrow_waves_skip_the_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Counts scratch() allocations: the serial fast path takes exactly
        // one scratch for the whole run, while the pooled path takes one
        // per worker chunk — so the count exposes which path ran.
        struct CountingEngine {
            scratches: AtomicUsize,
        }
        impl GateEngine for CountingEngine {
            type Value = bool;
            type Scratch = ();
            fn scratch(&self) {
                self.scratches.fetch_add(1, Ordering::Relaxed);
            }
            fn eval(&self, kind: GateKind, a: &bool, b: &bool, _s: &mut ()) -> bool {
                kind.eval(*a, *b)
            }
            fn constant(&self, bit: bool) -> bool {
                bit
            }
        }

        // One wave of `width` independent gates.
        let wave_of = |width: usize| {
            let mut nl = Netlist::new();
            let a = nl.add_input();
            let b = nl.add_input();
            for _ in 0..width {
                let g = nl.add_gate(GateKind::Nand, a, b).unwrap();
                nl.mark_output(g).unwrap();
            }
            nl
        };
        let workers = 2;

        // Just below the threshold: serial (one scratch for the wave).
        let engine = CountingEngine { scratches: AtomicUsize::new(0) };
        let nl = wave_of(PARALLEL_WAVE_MIN - 1);
        let (out, _) = execute_parallel(&engine, &nl, &[true, true], workers).unwrap();
        assert!(out.iter().all(|&v| !v));
        assert_eq!(engine.scratches.load(Ordering::Relaxed), 1, "narrow wave must stay serial");

        // At the threshold: the pool runs one chunk per worker.
        let engine = CountingEngine { scratches: AtomicUsize::new(0) };
        let nl = wave_of(PARALLEL_WAVE_MIN);
        let (out, _) = execute_parallel(&engine, &nl, &[true, true], workers).unwrap();
        assert!(out.iter().all(|&v| !v));
        assert_eq!(
            engine.scratches.load(Ordering::Relaxed),
            workers,
            "wide wave must fan out across workers"
        );
    }

    #[test]
    fn stats_report_the_dispatched_simd_path() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let mut input = to_bits(3, 4);
        input.extend(to_bits(5, 4));
        let (_, stats) = execute(&engine, &nl, &input).unwrap();
        assert_eq!(stats.simd_path, pytfhe_tfhe::simd::active_path().name());
        assert!(["scalar", "avx2", "avx512", "neon"].contains(&stats.simd_path));
    }

    #[test]
    fn exec_stats_json_is_well_formed_and_complete() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let mut input = to_bits(3, 4);
        input.extend(to_bits(5, 4));
        let (_, stats) = execute_parallel(&engine, &nl, &input, 2).unwrap();
        let json = stats.to_json();
        pytfhe_telemetry::json::validate(&json).unwrap_or_else(|e| panic!("{e}: {json}"));
        for key in [
            "\"gates\"",
            "\"waves\"",
            "\"wall_s\"",
            "\"retries\"",
            "\"evicted_workers\"",
            "\"checkpoints\"",
            "\"resumed_from_wave\": null",
            "\"capture_s\"",
            "\"replay_s\"",
            "\"plan_cached\"",
            "\"batches\"",
            "\"kernel_launches\"",
            "\"kernels_by_kind\"",
            "\"steals\"",
            "\"simd_path\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn exec_stats_display_sections_are_conditional() {
        let mut stats = ExecStats::for_gates(7);
        stats.waves = 3;
        stats.wall_s = 0.25;
        let plain = stats.to_string();
        assert!(plain.contains("gates"));
        assert!(plain.contains("simd path"));
        assert!(!plain.contains("retries"), "fault lines hidden on clean runs:\n{plain}");
        assert!(!plain.contains("batches"), "graph lines hidden off the graph path:\n{plain}");

        stats.retries = 2;
        stats.plan_cached = true;
        stats.resumed_from_wave = Some(4);
        let full = stats.to_string();
        assert!(full.contains("retries           2"));
        assert!(full.contains("resumed from wave 4"));
        assert!(full.contains("plan              cached"));
    }

    #[test]
    fn input_count_is_checked() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let err = execute(&engine, &nl, &[true; 3]).unwrap_err();
        assert_eq!(err, ExecError::InputCountMismatch { expected: 8, got: 3 });
        let err = execute_parallel(&engine, &nl, &[true; 9], 2).unwrap_err();
        assert_eq!(err, ExecError::InputCountMismatch { expected: 8, got: 9 });
    }

    #[test]
    fn encrypted_end_to_end_both_executors() {
        let mut rng = SecureRng::seed_from_u64(11);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let nl = adder4();
        let (x, y) = (11u64, 6u64);
        let mut bits = to_bits(x, 4);
        bits.extend(to_bits(y, 4));
        let cts = client.encrypt_bits(&bits, &mut rng);
        let (out, _) = execute(&engine, &nl, &cts).unwrap();
        assert_eq!(from_bits(&client.decrypt_bits(&out)), x + y);
        let (out, stats) = execute_parallel(&engine, &nl, &cts, 4).unwrap();
        assert_eq!(from_bits(&client.decrypt_bits(&out)), x + y);
        assert!(stats.wall_s > 0.0);
    }

    #[test]
    fn parallel_speedup_on_wide_circuits() {
        // A wide, embarrassingly parallel wave of encrypted gates should
        // actually go faster with more workers (smoke-check, generous
        // threshold to stay robust on loaded CI machines).
        let mut rng = SecureRng::seed_from_u64(12);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let gates: Vec<_> = (0..64).map(|_| nl.add_gate(GateKind::Nand, a, b).unwrap()).collect();
        for g in gates {
            nl.mark_output(g).unwrap();
        }
        let cts = client.encrypt_bits(&[true, true], &mut rng);
        let (_, s1) = execute_parallel(&engine, &nl, &cts, 1).unwrap();
        let (out, s4) = execute_parallel(&engine, &nl, &cts, 4).unwrap();
        assert!(out.iter().all(|ct| !client.decrypt_bit(ct)));
        // Wall-clock improvement is only observable with real cores.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(
                s4.wall_s < s1.wall_s,
                "4 workers ({:.3}s) should beat 1 worker ({:.3}s)",
                s4.wall_s,
                s1.wall_s
            );
        }
    }
}
