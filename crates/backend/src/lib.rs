//! Execution backends for PyTFHE programs (Sections IV-D and IV-E of the
//! paper).
//!
//! A compiled TFHE program is a DAG of bootstrapped gates; executing it
//! means traversing the DAG in dependency order (the BFS wavefront of the
//! paper's Algorithm 1) and evaluating each gate. This crate provides:
//!
//! * [`engine`] — the pluggable gate evaluator: [`engine::TfheEngine`]
//!   computes on real LWE ciphertexts via `pytfhe-tfhe`;
//!   [`engine::PlainEngine`] computes on plaintext bits (the functional
//!   mode used to validate programs and drive the performance
//!   simulators);
//! * [`exec`] — a single-threaded reference executor, the multi-threaded
//!   wavefront executor (Algorithm 1 on a worker pool, the single-node
//!   form of the paper's distributed CPU backend), and the resilient
//!   wavefront executor ([`exec::execute_resilient`]) that retries failed
//!   gate tasks, evicts crashed workers, and checkpoints at wave
//!   barriers;
//! * [`fault`] — deterministic seeded fault injection ([`SeededFaults`])
//!   and the [`RetryPolicy`] (capped exponential backoff + jitter,
//!   per-task and per-wave deadlines) driving the resilient executor;
//! * [`checkpoint`] — wave-granular snapshot/resume: the frontier values
//!   at a wave barrier serialize to a [`CheckpointStore`] (in-memory or
//!   file-backed) so interrupted runs restart from the last barrier;
//! * [`graph`] — the kernel-graph backend: a netlist is *captured* once
//!   into a serializable [`KernelPlan`] (same-kind gates grouped into
//!   batched kernels, waves cut into sub-graph batches exactly where the
//!   CUDA-Graphs simulator cuts them), cached by fingerprint, and
//!   *replayed* against fresh inputs with zero per-gate allocation;
//! * [`pool`] — the shared work-stealing worker pool (per-lane deques,
//!   LIFO-local/FIFO-steal, caller participation) that the wavefront
//!   executor, the kernel-graph replay, and the serving scheduler all
//!   dispatch their batched chunks onto, replacing per-dispatch thread
//!   spawning;
//! * [`cost`] — the calibrated cost model (Figure 7: one bootstrapped
//!   gate ≈ 13 ms on one CPU core; ciphertext = 2.46 KB; per-task
//!   communication ≈ 0.094 % of runtime);
//! * [`sim`] — discrete-event simulators of the paper's distributed CPU
//!   cluster (Ray, Section IV-D) and GPU backends (cuFHE vs CUDA-Graphs
//!   batching, Section IV-E), which regenerate Figures 7-13 and Table IV.
//!
//! See DESIGN.md for why the cluster and GPU are simulated rather than
//! driven natively, and how the simulators were calibrated.

pub mod checkpoint;
pub mod cost;
pub mod engine;
mod error;
pub mod exec;
pub mod fault;
pub mod graph;
pub mod pool;
pub mod runtime;
pub mod sim;
pub mod store;

pub use checkpoint::{
    Checkpoint, CheckpointStore, Checkpointable, FileCheckpointStore, MemoryCheckpointStore,
};
pub use cost::{CpuCostModel, GpuCostModel};
pub use engine::{GateEngine, PlainEngine, TfheEngine};
pub use error::ExecError;
pub use exec::{
    execute, execute_parallel, execute_resilient, netlist_bootstraps, ExecStats, ResilientConfig,
};
pub use fault::{
    FaultInjector, NoFaults, RetryPolicy, SeededFaults, SeededStorageFaults, StorageFault, TaskFate,
};
pub use graph::{
    capture, replay, CaptureConfig, KernelGraph, KernelPlan, ReplayLanes, ReplayReport,
};
pub use pool::{RunStats, WorkerPool};
pub use runtime::{Evaluator, RtWord};
pub use store::DiskStore;
