//! Fault injection and retry policy for the resilient wavefront executor.
//!
//! The paper's distributed CPU backend submits every bootstrapped gate as
//! a separate Ray task (Section IV-D); on a real cluster those tasks fail
//! — workers die, tasks get lost, stragglers stall a wave. This module
//! models those failures *deterministically* so the recovery logic of
//! [`crate::exec::execute_resilient`] can be tested bit-for-bit: a
//! [`FaultInjector`] decides the fate of every task attempt and whether a
//! worker crashes at a wave barrier, and [`RetryPolicy`] governs how the
//! executor reacts (capped exponential backoff with deterministic jitter,
//! per-task and per-wave deadlines).
//!
//! Determinism matters more than realism here: [`SeededFaults`] derives
//! every decision from a hash of `(seed, wave, gate, attempt)`, so a
//! failing run is exactly reproducible from its seed.

use std::time::Duration;

/// Splitmix64 finalizer: the deterministic mixer behind seeded fault
/// decisions and backoff jitter.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a seed and three decision coordinates.
#[inline]
pub(crate) fn unit(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix(seed ^ mix(a ^ mix(b ^ mix(c))));
    // 53 mantissa bits: exactly representable, uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The injected outcome of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFate {
    /// The attempt completes normally.
    Success,
    /// The attempt is lost (worker preempted, task dropped, network
    /// blip): the executor retries it with backoff.
    Fail,
    /// The attempt is a straggler: it completes, but only after the extra
    /// latency. If the latency exceeds [`RetryPolicy::task_deadline`],
    /// the executor abandons the attempt and retries instead of waiting.
    Slow(Duration),
}

/// Decides the fate of task attempts and worker crashes.
///
/// Implementations must be deterministic functions of their arguments so
/// that failure scenarios replay exactly; `Sync` because workers consult
/// the injector concurrently.
pub trait FaultInjector: Sync {
    /// The fate of attempt `attempt` (1-based) of gate `gate` in wave
    /// `wave`. The default injects nothing.
    fn task_fate(&self, wave: usize, gate: u32, attempt: u32) -> TaskFate {
        let _ = (wave, gate, attempt);
        TaskFate::Success
    }

    /// Whether `worker` crashes while running wave `wave`. A crashed
    /// worker loses its in-flight chunk and is permanently evicted; the
    /// wave re-partitions its remaining gates across the survivors.
    fn worker_crashes(&self, wave: usize, worker: usize) -> bool {
        let _ = (wave, worker);
        false
    }
}

/// The no-op injector: production behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Deterministic seeded fault injection: per-attempt failure probability,
/// straggler latency injection, and scripted worker-crash-at-wave events.
#[derive(Debug, Clone)]
pub struct SeededFaults {
    seed: u64,
    fail_prob: f64,
    slow_prob: f64,
    slow_by: Duration,
    crashes: Vec<(usize, usize)>,
}

impl SeededFaults {
    /// A seeded injector that (initially) injects nothing.
    pub fn new(seed: u64) -> Self {
        SeededFaults {
            seed,
            fail_prob: 0.0,
            slow_prob: 0.0,
            slow_by: Duration::ZERO,
            crashes: Vec::new(),
        }
    }

    /// Each task attempt independently fails with probability `p`.
    #[must_use]
    pub fn with_fail_prob(mut self, p: f64) -> Self {
        self.fail_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Each (non-failed) attempt independently straggles by `by` with
    /// probability `p`.
    #[must_use]
    pub fn with_straggler(mut self, p: f64, by: Duration) -> Self {
        self.slow_prob = p.clamp(0.0, 1.0);
        self.slow_by = by;
        self
    }

    /// Worker `worker` crashes while running wave `wave` (it loses its
    /// chunk and is evicted for the rest of the run).
    #[must_use]
    pub fn with_worker_crash(mut self, worker: usize, wave: usize) -> Self {
        self.crashes.push((worker, wave));
        self
    }
}

impl FaultInjector for SeededFaults {
    fn task_fate(&self, wave: usize, gate: u32, attempt: u32) -> TaskFate {
        let fail = unit(self.seed, wave as u64, u64::from(gate), u64::from(attempt));
        if fail < self.fail_prob {
            return TaskFate::Fail;
        }
        let slow = unit(self.seed ^ 0x510_CA57, wave as u64, u64::from(gate), u64::from(attempt));
        if slow < self.slow_prob {
            return TaskFate::Slow(self.slow_by);
        }
        TaskFate::Success
    }

    fn worker_crashes(&self, wave: usize, worker: usize) -> bool {
        self.crashes.contains(&(worker, wave))
    }
}

/// How the resilient executor reacts to injected (or real) failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per task before surfacing
    /// [`crate::ExecError::Exhausted`] (at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on every further retry.
    pub base_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Straggler budget: an attempt whose injected latency exceeds this
    /// is abandoned and retried instead of awaited. `None` waits forever.
    pub task_deadline: Option<Duration>,
    /// Wall-clock budget for one wave (including all retry rounds);
    /// exceeding it surfaces [`crate::ExecError::WaveDeadlineExceeded`].
    /// `None` disables the check.
    pub wave_deadline: Option<Duration>,
    /// Seed of the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            task_deadline: None,
            wave_deadline: None,
            jitter_seed: 0x7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A near-zero-backoff policy for tests: failures retry immediately
    /// so heavily-faulted runs still finish quickly.
    pub fn fast() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(16),
            ..Self::default()
        }
    }

    /// The backoff before retry number `attempt` (1-based) of `gate`:
    /// `base * 2^(attempt-1)`, capped at [`RetryPolicy::max_backoff`],
    /// plus up to +50 % deterministic jitter so synchronized retries
    /// spread out.
    pub fn backoff(&self, gate: u32, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self.base_backoff.saturating_mul(1u32 << doublings);
        let capped = exp.min(self.max_backoff);
        let jitter = unit(self.jitter_seed, u64::from(gate), u64::from(attempt), 0);
        capped + capped.mul_f64(jitter * 0.5)
    }
}

/// A storage-level fault applied to the bytes of a persisted artifact
/// (server key, kernel plan, or checkpoint) before they are decoded.
///
/// These model what real filesystems and disks do to data at rest and
/// across crashes; the persistence layer must turn every one of them
/// into a typed error — never a panic, never silently-accepted garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The write was torn mid-flight: only the first `keep` bytes
    /// landed (crash between `write` and `fsync`).
    TornWrite {
        /// Bytes that made it to disk.
        keep: usize,
    },
    /// Media rot flipped bit `bit` of byte `byte`.
    BitFlip {
        /// Offset of the corrupted byte.
        byte: usize,
        /// Which bit flipped (0–7).
        bit: u8,
    },
    /// A stale artifact was substituted for the current one — a
    /// reordered rename, a restored-from-backup directory, or an
    /// operator copying the wrong generation into place.
    StaleVersion,
    /// A rename landed twice (or a journal replayed), leaving the
    /// artifact duplicated back-to-back in one file.
    DuplicateRename,
}

/// Deterministic generator of [`StorageFault`]s, analogous to
/// [`SeededFaults`] for task-level failures: case `i` of a given seed
/// always produces the same fault at the same location, so a corpus of
/// thousands of corruption cases replays bit-for-bit from `(seed, i)`.
#[derive(Debug, Clone, Copy)]
pub struct SeededStorageFaults {
    seed: u64,
}

impl SeededStorageFaults {
    /// An injector deriving every fault from `seed`.
    pub fn new(seed: u64) -> Self {
        SeededStorageFaults { seed }
    }

    /// The fault chosen for case `case` against an artifact of `len`
    /// bytes. Deterministic in `(seed, case, len)`.
    pub fn fault(&self, case: u64, len: usize) -> StorageFault {
        let pick = unit(self.seed, case, 0, 0);
        match (pick * 4.0) as u32 {
            0 => {
                // Keep strictly fewer bytes than were written so the
                // tear is always observable.
                let keep = (unit(self.seed, case, 1, 0) * len as f64) as usize;
                StorageFault::TornWrite { keep: keep.min(len.saturating_sub(1)) }
            }
            1 => {
                let byte = (unit(self.seed, case, 2, 0) * len as f64) as usize;
                let bit = (unit(self.seed, case, 3, 0) * 8.0) as u8;
                StorageFault::BitFlip { byte: byte.min(len.saturating_sub(1)), bit: bit.min(7) }
            }
            2 => StorageFault::StaleVersion,
            _ => StorageFault::DuplicateRename,
        }
    }

    /// Applies case `case` to `bytes`, returning the post-fault file
    /// contents. `stale` stands in for an earlier generation of the
    /// artifact when the fault is [`StorageFault::StaleVersion`].
    pub fn corrupt(&self, case: u64, bytes: &[u8], stale: &[u8]) -> Vec<u8> {
        match self.fault(case, bytes.len()) {
            StorageFault::TornWrite { keep } => bytes[..keep.min(bytes.len())].to_vec(),
            StorageFault::BitFlip { byte, bit } => {
                let mut out = bytes.to_vec();
                if let Some(b) = out.get_mut(byte) {
                    *b ^= 1 << bit;
                }
                out
            }
            StorageFault::StaleVersion => stale.to_vec(),
            StorageFault::DuplicateRename => {
                let mut out = bytes.to_vec();
                out.extend_from_slice(bytes);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fates_are_deterministic() {
        let f = SeededFaults::new(42).with_fail_prob(0.3);
        for wave in 0..4 {
            for gate in 0..64 {
                for attempt in 1..4 {
                    assert_eq!(f.task_fate(wave, gate, attempt), f.task_fate(wave, gate, attempt));
                }
            }
        }
    }

    #[test]
    fn fail_rate_tracks_probability() {
        let f = SeededFaults::new(7).with_fail_prob(0.25);
        let fails = (0..4000).filter(|&g| f.task_fate(1, g, 1) == TaskFate::Fail).count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed fail rate {rate}");
    }

    #[test]
    fn zero_probability_never_fails() {
        let f = SeededFaults::new(9);
        assert!((0..1000).all(|g| f.task_fate(0, g, 1) == TaskFate::Success));
    }

    #[test]
    fn stragglers_carry_their_latency() {
        let f = SeededFaults::new(3).with_straggler(1.0, Duration::from_millis(20));
        assert_eq!(f.task_fate(2, 5, 1), TaskFate::Slow(Duration::from_millis(20)));
    }

    #[test]
    fn scripted_crashes_only_hit_their_wave() {
        let f = SeededFaults::new(0).with_worker_crash(2, 3);
        assert!(f.worker_crashes(3, 2));
        assert!(!f.worker_crashes(3, 1));
        assert!(!f.worker_crashes(2, 2));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        let b1 = p.backoff(0, 1);
        let b3 = p.backoff(0, 3);
        assert!(b1 >= p.base_backoff);
        assert!(b3 > b1, "{b3:?} vs {b1:?}");
        // Far past the cap: bounded by max + 50 % jitter.
        let b20 = p.backoff(0, 20);
        assert!(b20 <= p.max_backoff + p.max_backoff.mul_f64(0.5));
    }

    #[test]
    fn jitter_differs_across_gates() {
        let p = RetryPolicy::default();
        assert_ne!(p.backoff(1, 4), p.backoff(2, 4));
    }

    #[test]
    fn storage_faults_are_deterministic_and_cover_every_variant() {
        let inj = SeededStorageFaults::new(0xD15C);
        let mut torn = 0;
        let mut flip = 0;
        let mut stale = 0;
        let mut dup = 0;
        for case in 0..256u64 {
            assert_eq!(inj.fault(case, 100), inj.fault(case, 100));
            match inj.fault(case, 100) {
                StorageFault::TornWrite { keep } => {
                    assert!(keep < 100);
                    torn += 1;
                }
                StorageFault::BitFlip { byte, bit } => {
                    assert!(byte < 100 && bit < 8);
                    flip += 1;
                }
                StorageFault::StaleVersion => stale += 1,
                StorageFault::DuplicateRename => dup += 1,
            }
        }
        assert!(torn > 0 && flip > 0 && stale > 0 && dup > 0, "{torn}/{flip}/{stale}/{dup}");
    }

    #[test]
    fn corrupt_always_changes_the_bytes() {
        let inj = SeededStorageFaults::new(1);
        let good = vec![0xAAu8; 64];
        let stale = vec![0x55u8; 32];
        for case in 0..256u64 {
            assert_ne!(inj.corrupt(case, &good, &stale), good, "case {case} was a no-op");
        }
    }
}
