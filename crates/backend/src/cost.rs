//! The calibrated cost model behind the performance simulators.
//!
//! All constants trace to measurements reported in the paper (see each
//! field's documentation); DESIGN.md records the calibration reasoning.
//! The simulators use these to predict wall-clock time from program
//! *structure* (wave sizes, gate mixes) — absolute times are only as good
//! as the calibration, but the paper's comparisons are ratios of exactly
//! these structural quantities.

/// Cost model of the CPU backends (single-core and the Ray-style
/// distributed cluster of Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Seconds of blind rotation per bootstrapped gate (the dominant
    /// segment of Figure 7).
    pub blind_rotation_s: f64,
    /// Seconds of key switching per gate (second segment of Figure 7).
    pub key_switching_s: f64,
    /// Seconds of linear/other work per gate.
    pub other_s: f64,
    /// Serialized ciphertext size (the paper: "only 2.46 KB").
    pub ciphertext_bytes: usize,
    /// Driver-side cost of submitting one task to the cluster scheduler
    /// (Ray task submission; bounds scaling at high worker counts).
    pub task_submit_s: f64,
    /// Worker-side per-task overhead: deserialization, scheduling, and
    /// the ciphertext communication the paper measures at 0.094 % of
    /// runtime.
    pub task_overhead_s: f64,
    /// Per-wave synchronization cost (the barrier between Algorithm 1
    /// waves).
    pub wave_barrier_s: f64,
}

impl CpuCostModel {
    /// Constants calibrated to the paper's testbed (2× Xeon Gold 5215,
    /// Table II; Figure 7 gate profile; Figure 10 scaling).
    pub fn paper() -> Self {
        CpuCostModel {
            blind_rotation_s: 10.5e-3,
            key_switching_s: 2.4e-3,
            other_s: 0.1e-3,
            ciphertext_bytes: 2460,
            task_submit_s: 0.21e-3,
            task_overhead_s: 0.40e-3,
            wave_barrier_s: 1.0e-3,
        }
    }

    /// Total single-core seconds per bootstrapped gate (~13 ms).
    pub fn gate_s(&self) -> f64 {
        self.blind_rotation_s + self.key_switching_s + self.other_s
    }

    /// The communication seconds per gate task (3 ciphertexts: two
    /// inputs in, one output back). Calibrated so that communication is
    /// ~0.094 % of a gate evaluation, as profiled in Figure 7.
    pub fn comm_s_per_gate(&self) -> f64 {
        self.gate_s() * 0.00094
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Cost model of a GPU backend (Section IV-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostModel {
    /// Human-readable device name.
    pub name: &'static str,
    /// Streaming multiprocessors: independent gates evaluable
    /// concurrently.
    pub sm_count: usize,
    /// Seconds of one bootstrapped-gate kernel (cuFHE-generation kernels;
    /// gates on distinct SMs overlap fully).
    pub kernel_s: f64,
    /// Seconds per kernel launch from the CPU (paid per cuFHE call; CUDA
    /// Graphs amortize it across a whole batch).
    pub launch_s: f64,
    /// Seconds for the CPU-blocking synchronization ending a cuFHE call.
    pub sync_s: f64,
    /// Host-device bandwidth in bytes/second (PCIe).
    pub pcie_bytes_per_s: f64,
    /// CPU-side cost of adding one node while *building* a CUDA graph.
    pub graph_build_node_s: f64,
    /// GPU-side per-node overhead when *executing* a CUDA graph.
    pub graph_exec_node_s: f64,
    /// Maximum nodes per CUDA-graph batch ("up to around hundreds of
    /// thousands of nodes", Section IV-E).
    pub graph_batch_nodes: usize,
}

impl GpuCostModel {
    /// NVIDIA RTX A5000 (Table III), calibrated so PyTFHE's batched
    /// backend lands at the paper's ~60× advantage over per-gate cuFHE
    /// dispatch and ~72× over one CPU core on wide programs.
    pub fn a5000() -> Self {
        GpuCostModel {
            name: "A5000",
            sm_count: 64,
            kernel_s: 10.0e-3,
            launch_s: 0.20e-3,
            sync_s: 0.10e-3,
            pcie_bytes_per_s: 12.0e9,
            graph_build_node_s: 2.0e-6,
            graph_exec_node_s: 1.0e-6,
            graph_batch_nodes: 100_000,
        }
    }

    /// NVIDIA RTX 4090 (Table III): twice the SMs of the A5000 in this
    /// model, reproducing the paper's ~2× gap between the two GPUs
    /// (Table IV: 218.9 / 108.7).
    pub fn rtx4090() -> Self {
        GpuCostModel {
            name: "4090",
            sm_count: 128,
            kernel_s: 10.0e-3,
            launch_s: 0.15e-3,
            sync_s: 0.08e-3,
            pcie_bytes_per_s: 25.0e9,
            graph_build_node_s: 2.0e-6,
            graph_exec_node_s: 0.5e-6,
            graph_batch_nodes: 100_000,
        }
    }

    /// Seconds to move `n` ciphertexts of `ct_bytes` across PCIe.
    pub fn transfer_s(&self, n: usize, ct_bytes: usize) -> f64 {
        (n * ct_bytes) as f64 / self.pcie_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cpu_gate_cost_is_about_13ms() {
        let m = CpuCostModel::paper();
        assert!((m.gate_s() - 13.0e-3).abs() < 0.5e-3, "{}", m.gate_s());
        assert!(m.blind_rotation_s > m.key_switching_s);
        assert_eq!(m.ciphertext_bytes, 2460);
    }

    #[test]
    fn communication_fraction_matches_figure_7() {
        let m = CpuCostModel::paper();
        let frac = m.comm_s_per_gate() / m.gate_s();
        assert!((frac - 0.00094).abs() < 1e-6, "comm fraction {frac}");
    }

    #[test]
    fn gpu_models_are_ordered() {
        let a = GpuCostModel::a5000();
        let b = GpuCostModel::rtx4090();
        assert_eq!(b.sm_count, 2 * a.sm_count);
        assert!(b.pcie_bytes_per_s > a.pcie_bytes_per_s);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let g = GpuCostModel::a5000();
        let one = g.transfer_s(1, 2460);
        let ten = g.transfer_s(10, 2460);
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }
}
