//! A shared work-stealing worker pool for batched gate execution.
//!
//! Every layer that fans batched kernels across threads — kernel-graph
//! [`crate::replay`], the wavefront [`crate::execute_parallel`], and the
//! serving scheduler — used to spawn a fresh [`std::thread::scope`] per
//! dispatch. At bootstrapped-gate granularity that was tolerable; at
//! plaintext-gate granularity the spawn/join cost dominated the work by
//! orders of magnitude (a kernel-graph replay paid one scope per gate
//! group — thousands per run). This module replaces all of that with one
//! process-wide pool of persistent workers:
//!
//! * **Per-lane deques, rayon-style stealing.** A run distributes its
//!   tasks round-robin across `lanes` double-ended queues. Each lane
//!   pops its own deque LIFO (back) for cache locality and steals from
//!   other lanes FIFO (front), so one fat chunk cannot idle the rest of
//!   the pool.
//! * **The caller is lane 0.** Submitting a run never blocks a thread
//!   doing nothing: the submitting thread works its own lane, then
//!   steals, then waits on the completion latch.
//! * **Grow on demand.** The pool starts at its configured width
//!   ([`WorkerPool::global`] reads `PYTFHE_WORKERS`, else the machine's
//!   available parallelism) but honors wider explicit requests by
//!   spawning the missing workers — an executor asked for 8 lanes gets
//!   8 lanes even on a 2-core box (the caller opted into
//!   oversubscription).
//! * **Panics become errors.** A panicking task is caught on its worker;
//!   the run completes and reports [`ExecError::WorkerPanicked`] instead
//!   of poisoning the pool.
//! * **Reentrancy is inline.** A task that itself submits a run (nested
//!   executors) runs the nested tasks inline on its own thread rather
//!   than deadlocking on the run lock.
//!
//! Runs are serialized: the pool executes one run at a time, which keeps
//! every worker's stealing scan bounded to the live run and makes lane
//! indices meaningful to callers (scratch buffers are typically keyed by
//! chunk, with at most one task touching each key).

use crate::error::ExecError;
use pytfhe_telemetry as telemetry;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One unit of work: receives the index of the lane executing it.
///
/// The `'env` lifetime lets tasks borrow from the submitting stack frame
/// ([`WorkerPool::run`] does not return until every task has finished,
/// exactly like [`std::thread::scope`]).
pub type Job<'env> = Box<dyn FnOnce(usize) + Send + 'env>;

/// Erased job stored in the deques. Safe because [`WorkerPool::run`]
/// blocks until `remaining` hits zero, so no task outlives the borrows
/// it captured.
type StaticJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// Accounting for one completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks executed by a lane other than the one they were queued on.
    pub steals: u64,
    /// Lanes the run was distributed across.
    pub lanes: usize,
}

/// State of the single in-flight run, shared with every worker.
struct RunState {
    /// One deque per lane; lane 0 belongs to the submitting thread.
    deques: Vec<Mutex<VecDeque<StaticJob>>>,
    /// Tasks not yet finished executing.
    remaining: AtomicUsize,
    /// Tasks popped from a foreign lane's deque.
    steals: AtomicU64,
    /// Whether any task panicked.
    panicked: AtomicBool,
    /// Completion latch: flipped by the worker that retires the last
    /// task.
    done: Mutex<bool>,
    done_cv: Condvar,
    lanes: usize,
}

impl RunState {
    /// Works the run from `lane`: drain the own deque LIFO, then steal
    /// FIFO from the other lanes, returning once every deque is empty
    /// (queued work can only shrink — tasks never enqueue more tasks).
    fn work(&self, lane: usize) {
        loop {
            let mut task = self.deques[lane].lock().expect("pool deque poisoned").pop_back();
            let mut stolen = false;
            if task.is_none() {
                for offset in 1..self.lanes {
                    let victim = (lane + offset) % self.lanes;
                    task = self.deques[victim].lock().expect("pool deque poisoned").pop_front();
                    if task.is_some() {
                        stolen = true;
                        break;
                    }
                }
            }
            let Some(task) = task else { return };
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            if catch_unwind(AssertUnwindSafe(|| task(lane))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().expect("pool latch poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until the last task retires.
    fn wait(&self) {
        let mut done = self.done.lock().expect("pool latch poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("pool latch poisoned");
        }
    }
}

/// Wake-up channel between the pool and its parked workers.
struct Ctrl {
    /// Bumped on every new run (and on shutdown) so sleeping workers
    /// can tell a fresh wake-up from a spurious one.
    epoch: u64,
    /// The in-flight run, if any.
    run: Option<Arc<RunState>>,
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    work_cv: Condvar,
}

thread_local! {
    /// Set while this thread is executing pool tasks, so a nested
    /// [`WorkerPool::run`] from inside a task runs inline instead of
    /// deadlocking on the run lock.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The work-stealing pool. See the module docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes runs; held for the whole duration of [`WorkerPool::run`].
    run_lock: Mutex<()>,
    /// Worker threads spawned so far (worker `i` services lane `i + 1`).
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Default lane count for callers that don't request an explicit
    /// width.
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("spawned", &self.workers.lock().map(|w| w.len()).unwrap_or(0))
            .finish()
    }
}

/// Hard ceiling on lanes per run: a backstop against pathological
/// requests, far above any real worker count.
const MAX_LANES: usize = 256;

impl WorkerPool {
    /// A pool whose default width is `width` lanes (clamped to at least
    /// 1). Workers are spawned lazily on first use.
    pub fn new(width: usize) -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                ctrl: Mutex::new(Ctrl { epoch: 0, run: None, shutdown: false }),
                work_cv: Condvar::new(),
            }),
            run_lock: Mutex::new(()),
            workers: Mutex::new(Vec::new()),
            width: width.clamp(1, MAX_LANES),
        }
    }

    /// The process-wide pool. Width comes from `PYTFHE_WORKERS` when set
    /// (and parseable), else from the machine's available parallelism.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_width()))
    }

    /// The pool's default lane count (the width explicit-`workers`
    /// callers should clamp their scratch sizing to).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs `jobs` to completion across up to `lanes` lanes (clamped to
    /// `[1, jobs.len()]`), distributing them round-robin and stealing
    /// across lanes. The calling thread participates as lane 0. Blocks
    /// until every job has finished, so jobs may borrow from the caller's
    /// stack.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WorkerPanicked`] if any job panicked (all
    /// jobs still run to completion first).
    pub fn run<'env>(&self, lanes: usize, jobs: Vec<Job<'env>>) -> Result<RunStats, ExecError> {
        let tasks = jobs.len();
        if tasks == 0 {
            return Ok(RunStats::default());
        }
        let lanes = lanes.clamp(1, MAX_LANES).min(tasks);
        // Nested submission from inside a pool task, or a trivial
        // single-lane run: execute inline on this thread.
        if lanes == 1 || IN_POOL.with(Cell::get) {
            let mut panicked = false;
            for job in jobs {
                panicked |= catch_unwind(AssertUnwindSafe(|| job(0))).is_err();
            }
            if panicked {
                return Err(ExecError::WorkerPanicked);
            }
            return Ok(RunStats { tasks, steals: 0, lanes: 1 });
        }

        let _serial = self.run_lock.lock().expect("pool run lock poisoned");
        self.ensure_workers(lanes);

        // Erase the `'env` lifetime. Sound for the same reason
        // `std::thread::scope` is: this function does not return until
        // `remaining` reaches zero, so no job outlives its borrows.
        let jobs: Vec<StaticJob> =
            unsafe { std::mem::transmute::<Vec<Job<'env>>, Vec<StaticJob>>(jobs) };

        let run = Arc::new(RunState {
            deques: (0..lanes).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(tasks),
            steals: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            lanes,
        });
        for (i, job) in jobs.into_iter().enumerate() {
            run.deques[i % lanes].lock().expect("pool deque poisoned").push_back(job);
        }
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool ctrl poisoned");
            ctrl.epoch += 1;
            ctrl.run = Some(Arc::clone(&run));
        }
        self.shared.work_cv.notify_all();

        IN_POOL.with(|f| f.set(true));
        run.work(0);
        IN_POOL.with(|f| f.set(false));
        run.wait();

        // Detach the run before releasing the run lock so late-waking
        // workers find nothing to join.
        self.shared.ctrl.lock().expect("pool ctrl poisoned").run = None;

        let stats = RunStats { tasks, steals: run.steals.load(Ordering::Relaxed), lanes };
        if telemetry::enabled() {
            let m = telemetry::metrics();
            m.counter_add("pool_runs_total", 1);
            m.counter_add("pool_tasks_total", tasks as u64);
            m.counter_add("pool_steals_total", stats.steals);
            m.observe("pool_run_tasks", tasks as f64, &[1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]);
        }
        if run.panicked.load(Ordering::Relaxed) {
            return Err(ExecError::WorkerPanicked);
        }
        Ok(stats)
    }

    /// Spawns parked workers until lanes `1..lanes` all have a thread.
    fn ensure_workers(&self, lanes: usize) {
        let mut workers = self.workers.lock().expect("pool workers poisoned");
        while workers.len() + 1 < lanes {
            let lane = workers.len() + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("pytfhe-pool-{lane}"))
                .spawn(move || worker_loop(&shared, lane))
                .expect("spawn pool worker");
            workers.push(handle);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool ctrl poisoned");
            ctrl.shutdown = true;
            ctrl.epoch += 1;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.lock().expect("pool workers poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A parked worker: sleeps until a run with a wider lane set than its
/// index appears, works it, then parks again.
fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let run = {
            let mut ctrl = shared.ctrl.lock().expect("pool ctrl poisoned");
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.epoch != seen_epoch {
                    seen_epoch = ctrl.epoch;
                    if let Some(run) = ctrl.run.as_ref().filter(|r| lane < r.lanes) {
                        break Arc::clone(run);
                    }
                }
                ctrl = shared.work_cv.wait(ctrl).expect("pool ctrl poisoned");
            }
        };
        IN_POOL.with(|f| f.set(true));
        run.work(lane);
        IN_POOL.with(|f| f.set(false));
    }
}

/// Default width of the global pool: `PYTFHE_WORKERS` when set, else the
/// machine's available parallelism.
fn default_width() -> usize {
    if let Ok(v) = std::env::var("PYTFHE_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_LANES);
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Fixed-size slots handed out by index to concurrently running pool
/// tasks — the scratch-buffer pattern: slot `i` is used only by the one
/// task that was given index `i`, so disjoint-index access is exclusive
/// even though the container itself is shared.
pub struct SlotCells<T> {
    slots: Vec<UnsafeCell<T>>,
}

// SAFETY: access is only through `SlotCells::slot`, whose contract
// requires exclusive use of each index; the container adds no other
// shared mutation.
unsafe impl<T: Send> Sync for SlotCells<T> {}

impl<T> SlotCells<T> {
    /// Wraps `slots` for indexed hand-out.
    pub fn new(slots: Vec<T>) -> Self {
        SlotCells { slots: slots.into_iter().map(UnsafeCell::new).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Exclusive access to slot `i`.
    ///
    /// # Safety
    ///
    /// At most one live reference per index: the caller must guarantee
    /// that no two concurrent tasks use the same `i`, and that the
    /// returned borrow ends before `i` is handed out again.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, i: usize) -> &mut T {
        &mut *self.slots[i].get()
    }

    /// Unwraps back into the slot values.
    pub fn into_inner(self) -> Vec<T> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SlotCells<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotCells").field("len", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU32::new(0);
        let jobs: Vec<Job> = (0..57)
            .map(|_| {
                Box::new(|_lane: usize| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        let stats = pool.run(4, jobs).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 57);
        assert_eq!(stats.tasks, 57);
        assert_eq!(stats.lanes, 4);
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(2);
        let mut outs = vec![0u64; 8];
        let jobs: Vec<Job> = outs
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move |_lane: usize| {
                    *slot = (i as u64 + 1) * 10;
                }) as Job
            })
            .collect();
        pool.run(2, jobs).unwrap();
        assert_eq!(outs, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn a_stalled_lane_gets_its_queue_stolen() {
        // Lane 0 (the caller) starts with a slow task; the other lanes
        // must drain the rest of lane 0's queue while it sleeps.
        let pool = WorkerPool::new(4);
        let done = AtomicU32::new(0);
        let jobs: Vec<Job> = (0..16)
            .map(|i| {
                let done = &done;
                Box::new(move |_lane: usize| {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(40));
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        let start = std::time::Instant::now();
        let stats = pool.run(4, jobs).unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        assert_eq!(stats.tasks, 16);
        // The 15 cheap tasks must not have queued behind the sleeper
        // for another 40ms each; generous bound for loaded machines.
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn panicking_task_reports_worker_panicked_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                Box::new(move |_lane: usize| {
                    if i == 2 {
                        panic!("injected");
                    }
                }) as Job
            })
            .collect();
        assert!(matches!(pool.run(2, jobs), Err(ExecError::WorkerPanicked)));
        // The pool keeps working after a panic.
        let ok: Vec<Job> = vec![Box::new(|_| {})];
        assert!(pool.run(2, ok).is_ok());
    }

    #[test]
    fn nested_run_from_inside_a_task_executes_inline() {
        let pool = WorkerPool::new(2);
        let inner_hits = AtomicU32::new(0);
        let jobs: Vec<Job> = (0..2)
            .map(|_| {
                let inner_hits = &inner_hits;
                Box::new(move |_lane: usize| {
                    let inner: Vec<Job> = (0..3)
                        .map(|_| {
                            Box::new(move |_l: usize| {
                                inner_hits.fetch_add(1, Ordering::Relaxed);
                            }) as Job
                        })
                        .collect();
                    WorkerPool::global().run(2, inner).unwrap();
                }) as Job
            })
            .collect();
        pool.run(2, jobs).unwrap();
        assert_eq!(inner_hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn single_lane_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        let main_thread = std::thread::current().id();
        let jobs: Vec<Job> = (0..5)
            .map(|_| {
                Box::new(move |lane: usize| {
                    assert_eq!(lane, 0);
                    assert_eq!(std::thread::current().id(), main_thread);
                }) as Job
            })
            .collect();
        let stats = pool.run(1, jobs).unwrap();
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn explicit_requests_grow_past_the_default_width() {
        let pool = WorkerPool::new(1);
        let lanes_seen = Mutex::new(std::collections::HashSet::new());
        let jobs: Vec<Job> = (0..32)
            .map(|_| {
                let lanes_seen = &lanes_seen;
                Box::new(move |lane: usize| {
                    lanes_seen.lock().unwrap().insert(lane);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }) as Job
            })
            .collect();
        let stats = pool.run(4, jobs).unwrap();
        assert_eq!(stats.lanes, 4, "explicit width must be honored");
        assert!(!lanes_seen.lock().unwrap().is_empty());
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let pool = WorkerPool::new(4);
        let stats = pool.run(4, Vec::new()).unwrap();
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn slot_cells_round_trip() {
        let cells = SlotCells::new(vec![1u32, 2, 3]);
        assert_eq!(cells.len(), 3);
        // SAFETY: indices used one at a time on one thread.
        unsafe {
            *cells.slot(1) += 40;
        }
        assert_eq!(cells.into_inner(), vec![1, 42, 3]);
    }
}
