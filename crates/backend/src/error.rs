use std::fmt;

/// Errors produced while executing a PyTFHE program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The number of provided input values does not match the program.
    InputCountMismatch {
        /// Inputs the program declares.
        expected: usize,
        /// Inputs provided.
        got: usize,
    },
    /// The program failed validation before execution.
    InvalidProgram(pytfhe_netlist::NetlistError),
    /// A worker thread panicked (encrypted evaluation bugs surface here
    /// rather than poisoning results).
    WorkerPanicked,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputCountMismatch { expected, got } => {
                write!(f, "program expects {expected} inputs, got {got}")
            }
            ExecError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            ExecError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pytfhe_netlist::NetlistError> for ExecError {
    fn from(e: pytfhe_netlist::NetlistError) -> Self {
        ExecError::InvalidProgram(e)
    }
}
