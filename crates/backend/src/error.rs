use std::fmt;

/// Errors produced while executing a PyTFHE program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The number of provided input values does not match the program.
    InputCountMismatch {
        /// Inputs the program declares.
        expected: usize,
        /// Inputs provided.
        got: usize,
    },
    /// The program failed validation before execution.
    InvalidProgram(pytfhe_netlist::NetlistError),
    /// A worker thread panicked (encrypted evaluation bugs surface here
    /// rather than poisoning results).
    WorkerPanicked,
    /// A gate task kept failing until its retry budget ran out.
    Exhausted {
        /// Wave the task belongs to.
        wave: usize,
        /// Netlist node id of the gate.
        gate: u32,
        /// Attempts made (including the first).
        attempts: u32,
    },
    /// Every worker has been evicted; no one is left to run the wave.
    NoWorkers {
        /// Wave that could not be staffed.
        wave: usize,
    },
    /// A wave exceeded its wall-clock deadline across all retry rounds.
    WaveDeadlineExceeded {
        /// The offending wave.
        wave: usize,
    },
    /// A checkpoint could not be decoded or does not match the program.
    BadCheckpoint {
        /// What was wrong.
        reason: &'static str,
    },
    /// Persisting or reading a checkpoint failed at the I/O layer.
    CheckpointIo(String),
    /// A serialized kernel-graph plan could not be decoded, or a plan was
    /// replayed against a program it was not captured from.
    BadPlan {
        /// What was wrong.
        reason: &'static str,
    },
    /// The wire envelope around a persisted artifact failed validation
    /// (bad magic, checksum mismatch, version skew, torn framing).
    Wire(pytfhe_wire::WireError),
    /// A durable-store operation failed at the filesystem layer.
    StoreIo(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputCountMismatch { expected, got } => {
                write!(f, "program expects {expected} inputs, got {got}")
            }
            ExecError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            ExecError::WorkerPanicked => write!(f, "a worker thread panicked"),
            ExecError::Exhausted { wave, gate, attempts } => {
                write!(f, "gate {gate} in wave {wave} failed all {attempts} attempts")
            }
            ExecError::NoWorkers { wave } => {
                write!(f, "all workers evicted before wave {wave} completed")
            }
            ExecError::WaveDeadlineExceeded { wave } => {
                write!(f, "wave {wave} exceeded its deadline")
            }
            ExecError::BadCheckpoint { reason } => write!(f, "bad checkpoint: {reason}"),
            ExecError::CheckpointIo(e) => write!(f, "checkpoint i/o failed: {e}"),
            ExecError::BadPlan { reason } => write!(f, "bad kernel plan: {reason}"),
            ExecError::Wire(e) => write!(f, "wire envelope rejected: {e}"),
            ExecError::StoreIo(e) => write!(f, "durable store i/o failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::InvalidProgram(e) => Some(e),
            ExecError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pytfhe_netlist::NetlistError> for ExecError {
    fn from(e: pytfhe_netlist::NetlistError) -> Self {
        ExecError::InvalidProgram(e)
    }
}

impl From<pytfhe_wire::WireError> for ExecError {
    fn from(e: pytfhe_wire::WireError) -> Self {
        ExecError::Wire(e)
    }
}
