//! Wave-granular checkpoint/resume for the resilient executor.
//!
//! After each completed wave barrier, [`crate::exec::execute_resilient`]
//! can snapshot the *frontier* — the values still needed by later waves
//! or by program outputs — into a [`Checkpoint`]. An interrupted run
//! (worker crash, process kill) then resumes from the last barrier
//! instead of gate zero, which is the difference between losing minutes
//! and losing hours on the paper's MNIST_L-scale programs (Table IV).
//!
//! Snapshots are tied to their program by a fingerprint of the canonical
//! PyTFHE binary encoding, so a checkpoint can never silently resume a
//! different circuit. Current snapshots ride inside the [`pytfhe_wire`]
//! envelope (CRC32C over header and payload), so on-disk bit rot is
//! caught at load time rather than decrypting to garbage; the older
//! bare `PTCK` layout with its trailing FNV-1a checksum still loads
//! through a compat shim. Values serialize via [`Checkpointable`]: one
//! byte per plaintext bit, raw torus words for LWE ciphertexts.

use crate::error::ExecError;
use pytfhe_netlist::Netlist;
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::{LweCiphertext, Torus32};
use pytfhe_wire as wire;
use pytfhe_wire::Vintage;
use std::fs;
use std::path::PathBuf;

/// Magic of the legacy bare `PTCK` layout (pre-envelope).
const CKPT_MAGIC: u32 = 0x5054_434B; // "PTCK"
/// The only bare-layout version ever shipped.
const CKPT_VERSION: u32 = 1;
/// Wire-envelope payload version. v1 was the bare `PTCK` layout;
/// v2 moved the artifact into the envelope and dropped the in-band
/// magic/version/FNV fields (the envelope carries all three).
const CKPT_WIRE_VERSION: u16 = 2;
/// Speculative allocation clamp for attacker-controlled counts.
const MAX_PREALLOC: usize = 1 << 16;

/// Values the executor can snapshot at a wave barrier.
///
/// Implemented for `bool` (the plaintext engine) and
/// [`LweCiphertext`] (the TFHE engine), covering both
/// [`crate::GateEngine`] implementations.
pub trait Checkpointable: Sized {
    /// Appends this value's serialized form to `out`.
    fn write_ckpt(&self, out: &mut Vec<u8>);

    /// Parses a value back from exactly the bytes written by
    /// [`Checkpointable::write_ckpt`]; `None` on any mismatch.
    fn read_ckpt(data: &[u8]) -> Option<Self>;
}

impl Checkpointable for bool {
    fn write_ckpt(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn read_ckpt(data: &[u8]) -> Option<Self> {
        match data {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl Checkpointable for LweCiphertext {
    fn write_ckpt(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        for t in self.mask() {
            out.extend_from_slice(&t.0.to_le_bytes());
        }
        out.extend_from_slice(&self.body().0.to_le_bytes());
    }

    fn read_ckpt(data: &[u8]) -> Option<Self> {
        let dim = u32::from_le_bytes(data.get(..4)?.try_into().ok()?) as usize;
        let rest = &data[4..];
        if rest.len() != (dim + 1) * 4 {
            return None;
        }
        let word =
            |i: usize| Torus32(u32::from_le_bytes(rest[i * 4..(i + 1) * 4].try_into().unwrap()));
        let a = (0..dim).map(word).collect();
        Some(LweCiphertext::from_parts(a, word(dim)))
    }
}

/// FNV-1a over a byte slice; used for the program fingerprint, the
/// legacy snapshot checksum, and durable-store content addressing.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprints a netlist via FNV-1a over its canonical binary encoding,
/// so checkpoints refuse to resume a different program. LUT-lowered
/// netlists fall outside the binary format; they hash a structural
/// encoding under a distinct tag (no collision with any binary, whose
/// leading instruction is a zero-tagged header).
pub fn netlist_fingerprint(nl: &Netlist) -> u64 {
    match pytfhe_asm::try_assemble(nl) {
        Ok(bytes) => fnv1a(&bytes),
        Err(_) => fnv1a(&lut_netlist_bytes(nl)),
    }
}

/// Structural byte encoding of a LUT-bearing netlist, for fingerprinting
/// only (tag byte per node kind, little-endian fields, outputs trailed).
fn lut_netlist_bytes(nl: &Netlist) -> Vec<u8> {
    let mut out = Vec::with_capacity(nl.num_nodes() * 8 + 16);
    out.extend_from_slice(b"PTLUT\x01");
    for node in nl.nodes() {
        match *node {
            pytfhe_netlist::Node::Input => out.push(0x01),
            pytfhe_netlist::Node::Gate { kind, a, b } => {
                out.push(0x02);
                out.push(kind.opcode());
                out.extend_from_slice(&a.0.to_le_bytes());
                out.extend_from_slice(&b.0.to_le_bytes());
            }
            pytfhe_netlist::Node::Lut { spec, ins } => {
                out.push(0x03);
                out.push(spec.width);
                out.push(spec.precision);
                out.extend_from_slice(&spec.table.to_le_bytes());
                for id in &ins[..spec.width as usize] {
                    out.extend_from_slice(&id.0.to_le_bytes());
                }
            }
        }
    }
    out.push(0x04);
    for o in nl.outputs() {
        out.extend_from_slice(&o.0.to_le_bytes());
    }
    out
}

/// One wave-barrier snapshot: the program fingerprint, the index of the
/// last completed wave, and the serialized frontier values keyed by
/// netlist node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    wave: usize,
    fingerprint: u64,
    entries: Vec<(u32, Vec<u8>)>,
}

impl Checkpoint {
    /// Captures `nodes` (id, value) pairs as the frontier of `wave`.
    pub fn capture<'a, V, I>(wave: usize, fingerprint: u64, nodes: I) -> Self
    where
        V: Checkpointable + 'a,
        I: IntoIterator<Item = (u32, &'a V)>,
    {
        let entries = nodes
            .into_iter()
            .map(|(id, v)| {
                let mut bytes = Vec::new();
                v.write_ckpt(&mut bytes);
                (id, bytes)
            })
            .collect();
        Checkpoint { wave, fingerprint, entries }
    }

    /// The last completed wave this snapshot represents.
    pub fn wave(&self) -> usize {
        self.wave
    }

    /// The fingerprint of the program this snapshot belongs to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of frontier values captured.
    pub fn num_values(&self) -> usize {
        self.entries.len()
    }

    /// Restores the frontier into `values` (indexed by node id).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadCheckpoint`] on out-of-range node ids or
    /// undecodable values.
    pub fn restore_into<V: Checkpointable>(&self, values: &mut [V]) -> Result<(), ExecError> {
        for (id, bytes) in &self.entries {
            let slot = values
                .get_mut(*id as usize)
                .ok_or(ExecError::BadCheckpoint { reason: "node id out of range" })?;
            *slot = V::read_ckpt(bytes)
                .ok_or(ExecError::BadCheckpoint { reason: "undecodable value" })?;
        }
        Ok(())
    }

    /// Serializes the snapshot into the versioned wire envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        wire::encode(wire::Format::Checkpoint, CKPT_WIRE_VERSION, &self.body_bytes())
    }

    /// The envelope payload: fingerprint, wave, then length-prefixed
    /// frontier entries. Also the tail of the legacy bare layout.
    fn body_bytes(&self) -> Vec<u8> {
        let payload: usize = self.entries.iter().map(|(_, b)| 8 + b.len()).sum();
        let mut out = Vec::with_capacity(20 + payload);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.wave as u64).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (id, bytes) in &self.entries {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses a snapshot back from [`Checkpoint::to_bytes`] output, or
    /// from the legacy bare `PTCK` layout written by older builds.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Wire`] when the envelope fails validation
    /// and [`ExecError::BadCheckpoint`] on payload-level corruption.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ExecError> {
        Self::from_bytes_tagged(data).map(|(ckpt, _)| ckpt)
    }

    /// Like [`Checkpoint::from_bytes`], but also reports whether the
    /// bytes used the current envelope or the legacy bare layout, so
    /// durable stores can count pending migrations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Checkpoint::from_bytes`].
    pub fn from_bytes_tagged(data: &[u8]) -> Result<(Self, Vintage), ExecError> {
        if wire::is_enveloped(data) {
            let env = wire::decode_expecting(
                data,
                wire::Format::Checkpoint,
                CKPT_WIRE_VERSION..=CKPT_WIRE_VERSION,
            )?;
            return Ok((Self::parse_body(env.payload)?, Vintage::Current));
        }
        // Legacy bare layout: magic | version | body | trailing FNV-1a.
        let bad = |reason| ExecError::BadCheckpoint { reason };
        let (data, sum) =
            data.split_at_checked(data.len().wrapping_sub(8)).ok_or(bad("truncated header"))?;
        if fnv1a(data) != u64::from_le_bytes(sum.try_into().unwrap()) {
            return Err(bad("checksum mismatch"));
        }
        let u32_at = |i: usize| -> Result<u32, ExecError> {
            Ok(u32::from_le_bytes(
                data.get(i..i + 4).ok_or(bad("truncated header"))?.try_into().unwrap(),
            ))
        };
        if u32_at(0)? != CKPT_MAGIC {
            return Err(bad("bad magic"));
        }
        if u32_at(4)? != CKPT_VERSION {
            return Err(bad("unsupported version"));
        }
        Ok((Self::parse_body(&data[8..])?, Vintage::Legacy))
    }

    /// Parses the post-header body shared by both layouts.
    fn parse_body(data: &[u8]) -> Result<Self, ExecError> {
        let bad = |reason| ExecError::BadCheckpoint { reason };
        let u32_at = |i: usize| -> Result<u32, ExecError> {
            Ok(u32::from_le_bytes(
                data.get(i..i + 4).ok_or(bad("truncated header"))?.try_into().unwrap(),
            ))
        };
        let fingerprint =
            u64::from_le_bytes(data.get(..8).ok_or(bad("truncated header"))?.try_into().unwrap());
        let wave =
            u64::from_le_bytes(data.get(8..16).ok_or(bad("truncated header"))?.try_into().unwrap())
                as usize;
        let count = u32_at(16)? as usize;
        let mut entries = Vec::with_capacity(count.min(MAX_PREALLOC));
        let mut pos = 20;
        for _ in 0..count {
            let id = u32_at(pos)?;
            let len = u32_at(pos + 4)? as usize;
            let end = pos.checked_add(8).and_then(|p| p.checked_add(len));
            let bytes =
                end.and_then(|end| data.get(pos + 8..end)).ok_or(bad("truncated entry"))?.to_vec();
            entries.push((id, bytes));
            pos += 8 + len;
        }
        if pos != data.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(Checkpoint { wave, fingerprint, entries })
    }
}

/// Where checkpoints are persisted between (possibly interrupted) runs.
pub trait CheckpointStore {
    /// Persists `ckpt`, replacing any previous snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::CheckpointIo`] when persistence fails.
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), ExecError>;

    /// Loads the latest snapshot, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadCheckpoint`] / [`ExecError::CheckpointIo`]
    /// when a snapshot exists but cannot be read back.
    fn load(&self) -> Result<Option<Checkpoint>, ExecError>;
}

/// In-memory store: survives within one process (e.g. across a failed
/// and a resumed `execute_resilient` call).
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    latest: Option<Checkpoint>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest snapshot, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), ExecError> {
        self.latest = Some(ckpt.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, ExecError> {
        Ok(self.latest.clone())
    }
}

/// File-backed store: survives process restarts.
///
/// Saves are crash-safe: bytes go to a temporary sibling, are fsynced,
/// and are atomically renamed into place, so a torn write can never
/// replace the previous good snapshot. The displaced snapshot is kept
/// as a `.prev` generation; if the current file fails validation at
/// load time (bit rot, a corrupted rename target), it is quarantined
/// aside as `.quarantined` and the store falls back to the previous
/// generation instead of aborting the run.
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    path: PathBuf,
}

impl FileCheckpointStore {
    /// A store persisting to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The snapshot path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Path of the previous-generation snapshot kept for fallback.
    pub fn prev_path(&self) -> PathBuf {
        self.path.with_extension("prev")
    }

    /// Path a corrupt snapshot is moved to when quarantined.
    pub fn quarantine_path(&self) -> PathBuf {
        self.path.with_extension("quarantined")
    }

    /// Decodes one generation file; `Ok(None)` when it does not exist.
    fn read_generation(path: &std::path::Path) -> Result<Option<Checkpoint>, ExecError> {
        match fs::read(path) {
            Ok(bytes) => Checkpoint::from_bytes(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ExecError::CheckpointIo(e.to_string())),
        }
    }

    /// Moves a failed-validation snapshot aside (best effort) and bumps
    /// the quarantine counter so operators can see rot happening.
    fn quarantine(&self, path: &std::path::Path, err: &ExecError) {
        let _ = fs::rename(path, self.quarantine_path());
        telemetry::metrics().counter_add("checkpoint_quarantined_total", 1);
        telemetry::metrics().counter_add(
            &format!("checkpoint_quarantined_total{{error=\"{}\"}}", variant_label(err)),
            1,
        );
    }
}

/// Coarse label for quarantine counters, stable across error payloads.
fn variant_label(err: &ExecError) -> &'static str {
    match err {
        ExecError::Wire(_) => "wire",
        ExecError::BadCheckpoint { .. } => "bad_checkpoint",
        ExecError::CheckpointIo(_) => "io",
        _ => "other",
    }
}

/// Writes `bytes` to `path` crash-safely: temp sibling, fsync, atomic
/// rename, then (on Unix) an fsync of the containing directory so the
/// rename itself survives power loss.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), ExecError> {
        let io = |e: std::io::Error| ExecError::CheckpointIo(e.to_string());
        // Keep the displaced snapshot as a fallback generation before
        // the new one lands.
        if self.path.exists() {
            fs::rename(&self.path, self.prev_path()).map_err(io)?;
        }
        write_atomic(&self.path, &ckpt.to_bytes()).map_err(io)
    }

    fn load(&self) -> Result<Option<Checkpoint>, ExecError> {
        match Self::read_generation(&self.path) {
            Ok(found) => Ok(found),
            Err(err @ (ExecError::Wire(_) | ExecError::BadCheckpoint { .. })) => {
                // The current generation is rotten: quarantine it and
                // continue from the previous one (or from scratch) —
                // losing one wave beats aborting the whole run.
                self.quarantine(&self.path, &err);
                match Self::read_generation(&self.prev_path()) {
                    Ok(found) => {
                        telemetry::metrics().counter_add("checkpoint_fallback_loads_total", 1);
                        Ok(found)
                    }
                    Err(prev_err @ (ExecError::Wire(_) | ExecError::BadCheckpoint { .. })) => {
                        self.quarantine(&self.prev_path(), &prev_err);
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn tiny_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g = nl.add_gate(GateKind::Xor, a, b).unwrap();
        nl.mark_output(g).unwrap();
        nl
    }

    #[test]
    fn bool_round_trip() {
        for v in [true, false] {
            let mut bytes = Vec::new();
            v.write_ckpt(&mut bytes);
            assert_eq!(bool::read_ckpt(&bytes), Some(v));
        }
        assert_eq!(bool::read_ckpt(&[2]), None);
        assert_eq!(bool::read_ckpt(&[]), None);
    }

    #[test]
    fn ciphertext_round_trip() {
        let mut rng = SecureRng::seed_from_u64(21);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let ct = client.encrypt_bit(true, &mut rng);
        let mut bytes = Vec::new();
        ct.write_ckpt(&mut bytes);
        let back = LweCiphertext::read_ckpt(&bytes).unwrap();
        assert_eq!(back, ct);
        assert!(LweCiphertext::read_ckpt(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let ckpt = Checkpoint::capture(3, 0xFEED, [(2u32, &true), (7u32, &false)]);
        let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.wave(), 3);
        assert_eq!(back.fingerprint(), 0xFEED);
        assert_eq!(back.num_values(), 2);
        let mut values = vec![false; 8];
        back.restore_into(&mut values).unwrap();
        assert!(values[2]);
        assert!(!values[7]);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let ckpt = Checkpoint::capture(1, 9, [(0u32, &true)]);
        let bytes = ckpt.to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF; // magic
        assert!(Checkpoint::from_bytes(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] ^= 0x02; // version
        assert!(Checkpoint::from_bytes(&bad).is_err());
        let mut bad = bytes;
        bad.push(0); // trailing garbage
        assert!(Checkpoint::from_bytes(&bad).is_err());
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let ckpt = Checkpoint::capture(1, 9, [(0u32, &true), (1u32, &false)]);
        let bytes = ckpt.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Checkpoint::from_bytes(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn restore_rejects_out_of_range_ids() {
        let ckpt = Checkpoint::capture(0, 0, [(100u32, &true)]);
        let mut values = vec![false; 4];
        assert_eq!(
            ckpt.restore_into(&mut values),
            Err(ExecError::BadCheckpoint { reason: "node id out of range" })
        );
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let a = tiny_netlist();
        let mut b = Netlist::new();
        let x = b.add_input();
        let y = b.add_input();
        let g = b.add_gate(GateKind::And, x, y).unwrap();
        b.mark_output(g).unwrap();
        assert_ne!(netlist_fingerprint(&a), netlist_fingerprint(&b));
        assert_eq!(netlist_fingerprint(&a), netlist_fingerprint(&tiny_netlist()));
    }

    #[test]
    fn file_store_round_trip_and_missing_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pytfhe-ckpt-test-{}.bin", std::process::id()));
        let mut store = FileCheckpointStore::new(&path);
        assert_eq!(store.load().unwrap(), None);
        let ckpt = Checkpoint::capture(5, 0xABCD, [(1u32, &true)]);
        store.save(&ckpt).unwrap();
        assert_eq!(store.load().unwrap(), Some(ckpt));
        std::fs::remove_file(&path).unwrap();
    }

    /// Re-encodes a snapshot in the legacy bare `PTCK` v1 layout, as
    /// old deployments wrote it: magic, version, body, trailing FNV-1a.
    fn legacy_checkpoint_bytes(ckpt: &Checkpoint) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&ckpt.body_bytes());
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn legacy_layout_loads_through_the_compat_shim() {
        let ckpt = Checkpoint::capture(3, 0xFEED, [(2u32, &true), (7u32, &false)]);
        let legacy = legacy_checkpoint_bytes(&ckpt);
        let (back, vintage) = Checkpoint::from_bytes_tagged(&legacy).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(vintage, Vintage::Legacy);
        let (_, vintage) = Checkpoint::from_bytes_tagged(&ckpt.to_bytes()).unwrap();
        assert_eq!(vintage, Vintage::Current);

        // Legacy-path failures keep their precise reasons.
        let mut flipped = legacy.clone();
        flipped[10] ^= 0x01;
        assert_eq!(
            Checkpoint::from_bytes(&flipped),
            Err(ExecError::BadCheckpoint { reason: "checksum mismatch" })
        );
        assert!(Checkpoint::from_bytes(&legacy[..7]).is_err());
    }

    #[test]
    fn file_store_quarantines_rot_and_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join(format!("pytfhe-ckpt-fallback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut store = FileCheckpointStore::new(&path);

        let first = Checkpoint::capture(1, 0xABCD, [(1u32, &true)]);
        let second = Checkpoint::capture(2, 0xABCD, [(1u32, &false)]);
        store.save(&first).unwrap();
        store.save(&second).unwrap();
        assert!(store.prev_path().exists(), "rotation should keep the displaced snapshot");

        // Rot the current generation in place: the store must not
        // surface garbage or abort — it quarantines and falls back.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load().unwrap(), Some(first));
        assert!(store.quarantine_path().exists());
        assert!(!path.exists(), "rotten snapshot should have been moved aside");

        let counters = telemetry::metrics().snapshot().counters;
        assert!(*counters.get("checkpoint_quarantined_total").unwrap_or(&0) >= 1);
        assert!(*counters.get("checkpoint_fallback_loads_total").unwrap_or(&0) >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_never_corrupts_the_previous_snapshot() {
        let dir = std::env::temp_dir().join(format!("pytfhe-ckpt-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut store = FileCheckpointStore::new(&path);

        let first = Checkpoint::capture(1, 7, [(0u32, &true)]);
        let second = Checkpoint::capture(2, 7, [(0u32, &false)]);
        store.save(&first).unwrap();

        // Crash before the rename: a torn temp sibling is simply
        // ignored; the committed snapshot stays intact.
        let torn = &second.to_bytes()[..second.to_bytes().len() / 2];
        std::fs::write(path.with_extension("tmp"), torn).unwrap();
        assert_eq!(store.load().unwrap(), Some(first.clone()));

        // Torn bytes that somehow land on the committed path (a torn
        // medium rather than a torn rename) are caught by the envelope
        // checksum and the store recovers via the `.prev` generation.
        store.save(&second).unwrap();
        std::fs::write(&path, torn).unwrap();
        assert_eq!(store.load().unwrap(), Some(first));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_generations_rotten_quarantines_and_starts_fresh() {
        let dir = std::env::temp_dir().join(format!("pytfhe-ckpt-rotten-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut store = FileCheckpointStore::new(&path);
        let ckpt = Checkpoint::capture(1, 7, [(0u32, &true)]);
        store.save(&ckpt).unwrap();
        store.save(&ckpt).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        std::fs::write(store.prev_path(), b"more garbage").unwrap();
        // Never an error, never garbage: the run restarts from scratch.
        assert_eq!(store.load().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
