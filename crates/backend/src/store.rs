//! Durable artifact store: warm-starting a server from disk.
//!
//! The paper's deployment model ships the evaluation key once and then
//! runs many programs against it; in practice the server process gets
//! restarted (redeploys, crashes, autoscaling) and would otherwise pay
//! the key transfer and every plan capture again. [`DiskStore`] persists
//! the two expensive session artifacts — installed server keys and
//! captured [`KernelPlan`]s — under one root directory so a restarted
//! server picks up exactly where the previous process left off.
//!
//! Layout under the root:
//!
//! ```text
//! root/
//!   keys/<fnv1a-of-bytes>.key     # wire-enveloped server keys
//!   plans/<plan-fingerprint>.plan # wire-enveloped kernel plans
//! ```
//!
//! Every write is crash-safe (temp sibling, fsync, atomic rename) and
//! every read validates the wire envelope. A corrupt artifact is
//! *quarantined* — renamed aside with a `.quarantined` suffix and
//! counted in telemetry — and the load continues with the remaining
//! artifacts; rot costs one re-capture or one key re-install, never the
//! whole warm start. Legacy (pre-envelope) plan files still load and
//! are transparently rewritten in the current envelope.

use crate::checkpoint::{fnv1a, write_atomic};
use crate::error::ExecError;
use crate::graph::KernelPlan;
use pytfhe_telemetry as telemetry;
use pytfhe_wire::Vintage;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A file-backed store for server keys and captured kernel plans.
///
/// Keys are content-addressed (FNV-1a over the serialized bytes); plans
/// are addressed by their netlist fingerprint. The store never decodes
/// key bytes itself — key validation belongs to the TFHE layer — but it
/// does validate plan envelopes and quarantines what fails.
///
/// A store opened with [`DiskStore::with_capacity`] additionally caps
/// the number of key blobs on disk: once an insertion would exceed the
/// cap, the least-recently-used keys are evicted (deleted and counted on
/// `store_keys_evicted_total`). Recency is tracked per process across
/// every clone of the store handle; keys never touched by this process
/// are considered coldest and evict first, in ascending id order.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
    key_capacity: Option<usize>,
    /// Per-process key access order, least-recent first. Shared across
    /// clones so every handle sees one recency history.
    access: Arc<Mutex<Vec<u64>>>,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`, with no cap
    /// on stored keys.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] when the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ExecError> {
        let root = root.into();
        let io = |e: std::io::Error| ExecError::StoreIo(e.to_string());
        fs::create_dir_all(root.join("keys")).map_err(io)?;
        fs::create_dir_all(root.join("plans")).map_err(io)?;
        Ok(DiskStore { root, key_capacity: None, access: Arc::new(Mutex::new(Vec::new())) })
    }

    /// Opens a store that keeps at most `max_keys` key blobs on disk,
    /// evicting least-recently-used keys past the cap. A cap of 0 is
    /// treated as 1 — a store that can hold no key at all would make
    /// every install fail its own read-back.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] like [`DiskStore::open`].
    pub fn with_capacity(root: impl Into<PathBuf>, max_keys: usize) -> Result<Self, ExecError> {
        let mut store = Self::open(root)?;
        store.key_capacity = Some(max_keys.max(1));
        Ok(store)
    }

    /// The key-blob cap, if one was set.
    pub fn key_capacity(&self) -> Option<usize> {
        self.key_capacity
    }

    /// Marks `id` as the most recently used key.
    fn touch_key(&self, id: u64) {
        let mut access = self.access.lock().expect("key access list poisoned");
        access.retain(|&k| k != id);
        access.push(id);
    }

    /// Deletes least-recently-used key blobs until at most
    /// `key_capacity` remain. Untracked ids (present on disk but never
    /// touched by this process) evict first.
    fn enforce_key_capacity(&self) -> Result<(), ExecError> {
        let Some(cap) = self.key_capacity else { return Ok(()) };
        let io = |e: std::io::Error| ExecError::StoreIo(e.to_string());
        let mut on_disk = Vec::new();
        for entry in fs::read_dir(self.root.join("keys")).map_err(io)? {
            let path = entry.map_err(io)?.path();
            if let Some(id) = artifact_id(&path, "key") {
                on_disk.push(id);
            }
        }
        if on_disk.len() <= cap {
            return Ok(());
        }
        on_disk.sort_unstable();
        let mut access = self.access.lock().expect("key access list poisoned");
        // Eviction order: untracked ids ascending, then the access list
        // least-recent first.
        let mut victims: Vec<u64> =
            on_disk.iter().copied().filter(|id| !access.contains(id)).collect();
        victims.extend(access.iter().copied().filter(|id| on_disk.contains(id)));
        let excess = on_disk.len() - cap;
        for id in victims.into_iter().take(excess) {
            fs::remove_file(self.key_path(id)).map_err(io)?;
            access.retain(|&k| k != id);
            telemetry::metrics().counter_add("store_keys_evicted_total", 1);
        }
        Ok(())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn key_path(&self, id: u64) -> PathBuf {
        self.root.join("keys").join(format!("{id:016x}.key"))
    }

    fn plan_path(&self, fingerprint: u64) -> PathBuf {
        self.root.join("plans").join(format!("{fingerprint:016x}.plan"))
    }

    /// Persists serialized server-key bytes, content-addressed by their
    /// FNV-1a hash. Returns `(id, newly_written)`; an already-present
    /// key is not rewritten.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] on filesystem failure.
    pub fn put_key_blob(&self, bytes: &[u8]) -> Result<(u64, bool), ExecError> {
        let id = fnv1a(bytes);
        let path = self.key_path(id);
        if path.exists() {
            self.touch_key(id);
            return Ok((id, false));
        }
        write_atomic(&path, bytes).map_err(|e| ExecError::StoreIo(e.to_string()))?;
        telemetry::metrics().counter_add("disk_store_keys_persisted_total", 1);
        self.touch_key(id);
        self.enforce_key_capacity()?;
        Ok((id, true))
    }

    /// Reads one key blob by id, returning `Ok(None)` when it is absent
    /// (never stored, evicted, or quarantined). A hit refreshes the
    /// key's LRU recency.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] on filesystem failure other than
    /// absence.
    pub fn get_key_blob(&self, id: u64) -> Result<Option<Vec<u8>>, ExecError> {
        match fs::read(self.key_path(id)) {
            Ok(bytes) => {
                self.touch_key(id);
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ExecError::StoreIo(e.to_string())),
        }
    }

    /// All persisted key blobs as `(id, bytes)` pairs, sorted by id for
    /// deterministic iteration. The bytes are returned as stored; the
    /// caller decodes them (and should call [`DiskStore::quarantine_key`]
    /// on anything that fails).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] when the directory cannot be read.
    pub fn key_blobs(&self) -> Result<Vec<(u64, Vec<u8>)>, ExecError> {
        let io = |e: std::io::Error| ExecError::StoreIo(e.to_string());
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("keys")).map_err(io)? {
            let path = entry.map_err(io)?.path();
            let Some(id) = artifact_id(&path, "key") else { continue };
            out.push((id, fs::read(&path).map_err(io)?));
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Moves a key blob that failed decoding aside so later warm starts
    /// stop tripping over it. Best effort; bumps the quarantine counter.
    pub fn quarantine_key(&self, id: u64) {
        let path = self.key_path(id);
        let _ = fs::rename(&path, path.with_extension("quarantined"));
        telemetry::metrics().counter_add("disk_store_quarantined_total", 1);
        telemetry::metrics().counter_add("disk_store_quarantined_total{kind=\"key\"}", 1);
    }

    /// Persists a captured plan, addressed by its fingerprint. Returns
    /// whether the file was newly written.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] on filesystem failure.
    pub fn put_plan(&self, plan: &KernelPlan) -> Result<bool, ExecError> {
        let path = self.plan_path(plan.fingerprint);
        if path.exists() {
            return Ok(false);
        }
        write_atomic(&path, &plan.to_bytes()).map_err(|e| ExecError::StoreIo(e.to_string()))?;
        telemetry::metrics().counter_add("disk_store_plans_persisted_total", 1);
        Ok(true)
    }

    /// Loads every persisted plan, validating each envelope.
    ///
    /// Corrupt files are quarantined (renamed aside, counted) and
    /// skipped; legacy pre-envelope files are decoded through the compat
    /// shim and rewritten in the current envelope so the store converges
    /// to one format. Results are sorted by fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StoreIo`] when the directory itself cannot
    /// be read — individual bad files never fail the load.
    pub fn load_plans(&self) -> Result<Vec<KernelPlan>, ExecError> {
        let io = |e: std::io::Error| ExecError::StoreIo(e.to_string());
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("plans")).map_err(io)? {
            let path = entry.map_err(io)?.path();
            if artifact_id(&path, "plan").is_none() {
                continue;
            }
            let bytes = fs::read(&path).map_err(io)?;
            match KernelPlan::from_bytes_tagged(&bytes) {
                Ok((plan, Vintage::Current)) => out.push(plan),
                Ok((plan, Vintage::Legacy)) => {
                    // Converge the store: rewrite in the enveloped format.
                    let _ = write_atomic(&path, &plan.to_bytes());
                    telemetry::metrics().counter_add("disk_store_migrated_total", 1);
                    out.push(plan);
                }
                Err(_) => {
                    let _ = fs::rename(&path, path.with_extension("quarantined"));
                    telemetry::metrics().counter_add("disk_store_quarantined_total", 1);
                    telemetry::metrics()
                        .counter_add("disk_store_quarantined_total{kind=\"plan\"}", 1);
                }
            }
        }
        out.sort_by_key(|p| p.fingerprint);
        Ok(out)
    }
}

/// Parses `<16-hex-digits>.<ext>` artifact names; anything else (temp
/// siblings, quarantined files, stray droppings) is skipped.
fn artifact_id(path: &Path, ext: &str) -> Option<u64> {
    if path.extension()? != ext {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::capture;
    use crate::CaptureConfig;
    use pytfhe_netlist::{GateKind, Netlist};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pytfhe-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_plan() -> KernelPlan {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::And, a, b).unwrap();
        nl.mark_output(x).unwrap();
        nl.mark_output(y).unwrap();
        capture(&nl, &CaptureConfig::default()).unwrap()
    }

    #[test]
    fn keys_are_content_addressed_and_deduplicated() {
        let dir = tempdir("keys");
        let store = DiskStore::open(&dir).unwrap();
        let (id1, fresh1) = store.put_key_blob(b"key material").unwrap();
        let (id2, fresh2) = store.put_key_blob(b"key material").unwrap();
        assert_eq!(id1, id2);
        assert!(fresh1);
        assert!(!fresh2, "identical bytes must not be rewritten");
        let blobs = store.key_blobs().unwrap();
        assert_eq!(blobs, vec![(id1, b"key material".to_vec())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_keys_disappear_from_listing() {
        let dir = tempdir("keyquar");
        let store = DiskStore::open(&dir).unwrap();
        let (id, _) = store.put_key_blob(b"rotten").unwrap();
        store.quarantine_key(id);
        assert!(store.key_blobs().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plans_round_trip_and_survive_corrupt_siblings() {
        let dir = tempdir("plans");
        let store = DiskStore::open(&dir).unwrap();
        let plan = sample_plan();
        assert!(store.put_plan(&plan).unwrap());
        assert!(!store.put_plan(&plan).unwrap());

        // A corrupt sibling must be quarantined, not sink the load.
        fs::write(dir.join("plans").join("00000000deadbeef.plan"), b"garbage").unwrap();
        let loaded = store.load_plans().unwrap();
        assert_eq!(loaded, vec![plan]);
        assert!(dir.join("plans").join("00000000deadbeef.quarantined").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_plan_files_are_migrated_on_load() {
        let dir = tempdir("migrate");
        let store = DiskStore::open(&dir).unwrap();
        let plan = sample_plan();
        // Write the plan in the legacy bare layout, as an old build would.
        let legacy = {
            let enveloped = plan.to_bytes();
            let payload = pytfhe_wire::decode(&enveloped).unwrap().payload.to_vec();
            let mut out = Vec::new();
            out.extend_from_slice(b"PTKG");
            out.push(1);
            out.extend_from_slice(&payload);
            out
        };
        let path = dir.join("plans").join(format!("{:016x}.plan", plan.fingerprint));
        fs::write(&path, &legacy).unwrap();

        assert_eq!(store.load_plans().unwrap(), vec![plan.clone()]);
        // The on-disk file has converged to the enveloped format.
        assert!(pytfhe_wire::is_enveloped(&fs::read(&path).unwrap()));
        assert_eq!(store.load_plans().unwrap(), vec![plan]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_evicts_least_recently_used_keys() {
        let dir = tempdir("lru");
        let store = DiskStore::with_capacity(&dir, 2).unwrap();
        assert_eq!(store.key_capacity(), Some(2));
        let before = telemetry::metrics()
            .snapshot()
            .counters
            .get("store_keys_evicted_total")
            .copied()
            .unwrap_or(0);
        let (id_a, _) = store.put_key_blob(b"key a").unwrap();
        let (id_b, _) = store.put_key_blob(b"key b").unwrap();
        // Touch A so B becomes the least recently used.
        assert!(store.get_key_blob(id_a).unwrap().is_some());
        let (id_c, _) = store.put_key_blob(b"key c").unwrap();
        // B evicted; A and C survive.
        assert_eq!(store.get_key_blob(id_b).unwrap(), None);
        assert_eq!(store.get_key_blob(id_a).unwrap(), Some(b"key a".to_vec()));
        assert_eq!(store.get_key_blob(id_c).unwrap(), Some(b"key c".to_vec()));
        let after = telemetry::metrics()
            .snapshot()
            .counters
            .get("store_keys_evicted_total")
            .copied()
            .unwrap_or(0);
        assert_eq!(after - before, 1, "exactly one eviction must be counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn untracked_keys_evict_before_tracked_ones() {
        let dir = tempdir("lru-cold");
        // A previous process left two keys behind; this process never
        // touches the first.
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put_key_blob(b"cold key").unwrap();
        }
        let store = DiskStore::with_capacity(&dir, 2).unwrap();
        let (id_warm, _) = store.put_key_blob(b"warm key").unwrap();
        let (id_new, _) = store.put_key_blob(b"new key").unwrap();
        let cold_id = fnv1a(b"cold key");
        assert_eq!(store.get_key_blob(cold_id).unwrap(), None, "cold key must evict first");
        assert!(store.get_key_blob(id_warm).unwrap().is_some());
        assert!(store.get_key_blob(id_new).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncapped_stores_never_evict() {
        let dir = tempdir("uncapped");
        let store = DiskStore::open(&dir).unwrap();
        for i in 0..8u64 {
            store.put_key_blob(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(store.key_blobs().unwrap().len(), 8);
        assert_eq!(store.key_capacity(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_files_are_ignored() {
        let dir = tempdir("stray");
        let store = DiskStore::open(&dir).unwrap();
        fs::write(dir.join("keys").join("notes.txt"), b"hi").unwrap();
        fs::write(dir.join("plans").join("short.plan"), b"hi").unwrap();
        assert!(store.key_blobs().unwrap().is_empty());
        assert!(store.load_plans().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
