//! Discrete-event performance simulators of the paper's distributed CPU
//! and GPU backends.
//!
//! The simulators consume a [`ProgramProfile`] — the wave-by-wave
//! structure of a real compiled netlist — and the calibrated
//! [`crate::cost`] models, and predict execution time the way the
//! respective scheduler would spend it. See DESIGN.md ("Substitutions")
//! for why these stand in for a physical Ray cluster and CUDA devices,
//! and which figure each simulator regenerates.

mod cluster;
mod gpu;
mod profile;
mod timeline;

pub use cluster::{ClusterConfig, ClusterReport, ClusterSim, FaultyClusterReport, SimFaultModel};
pub use gpu::{graph_batch_waves, GpuPolicy, GpuReport, GpuSim};
pub use profile::{ProgramProfile, WaveProfile};
pub use timeline::{Segment, Timeline};
