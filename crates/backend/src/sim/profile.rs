use pytfhe_netlist::topo::Levels;
use pytfhe_netlist::ALL_GATE_KINDS;
use pytfhe_netlist::{GateKind, Netlist, Node};

/// The gate composition of one scheduling wave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveProfile {
    counts: [u64; 16],
    /// Fused LUT nodes whose tables cost a programmable bootstrap.
    pub lut_bootstrapped: u64,
    /// Fused LUT nodes with affine (width-1) tables — free, like
    /// buffers and constants.
    pub lut_affine: u64,
}

impl WaveProfile {
    /// Gates of one kind in this wave.
    pub fn count(&self, kind: GateKind) -> u64 {
        self.counts[kind.opcode() as usize]
    }

    /// Tasks in this wave that cost a bootstrap: gates minus constants
    /// and buffers (free on every backend), plus non-affine fused LUTs.
    pub fn bootstrapped(&self) -> u64 {
        ALL_GATE_KINDS
            .iter()
            .filter(|k| !k.is_const() && **k != GateKind::Buf)
            .map(|k| self.count(*k))
            .sum::<u64>()
            + self.lut_bootstrapped
    }

    /// All tasks (gates and fused LUTs) in this wave.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.lut_bootstrapped + self.lut_affine
    }

    /// Iterates `(kind, count)` over the bootstrapped gate kinds present.
    pub fn iter_bootstrapped(&self) -> impl Iterator<Item = (GateKind, u64)> + '_ {
        ALL_GATE_KINDS
            .iter()
            .filter(|k| !k.is_const() && **k != GateKind::Buf)
            .map(|&k| (k, self.count(k)))
            .filter(|(_, c)| *c > 0)
    }
}

/// The structural profile of a compiled program: everything the
/// performance simulators need, extracted from the netlist in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramProfile {
    /// Per-wave gate compositions (wave 0 holds constants only).
    pub waves: Vec<WaveProfile>,
    /// Primary input count (ciphertexts uploaded).
    pub num_inputs: usize,
    /// Primary output count (ciphertexts downloaded).
    pub num_outputs: usize,
}

impl ProgramProfile {
    /// Profiles a netlist.
    pub fn of(nl: &Netlist) -> Self {
        let levels = Levels::compute(nl);
        let mut waves = vec![WaveProfile::default(); levels.sizes.len()];
        for (i, node) in nl.nodes().iter().enumerate() {
            match node {
                Node::Gate { kind, .. } => {
                    waves[levels.level[i] as usize].counts[kind.opcode() as usize] += 1;
                }
                Node::Lut { spec, .. } => {
                    let wave = &mut waves[levels.level[i] as usize];
                    if spec.bootstraps() > 0 {
                        wave.lut_bootstrapped += 1;
                    } else {
                        wave.lut_affine += 1;
                    }
                }
                Node::Input => {}
            }
        }
        ProgramProfile { waves, num_inputs: nl.num_inputs(), num_outputs: nl.outputs().len() }
    }

    /// Total bootstrapped gates.
    pub fn total_bootstrapped(&self) -> u64 {
        self.waves.iter().map(WaveProfile::bootstrapped).sum()
    }

    /// Total gates of any kind.
    pub fn total_gates(&self) -> u64 {
        self.waves.iter().map(WaveProfile::total).sum()
    }

    /// The widest wave (bootstrapped gates only).
    pub fn max_width(&self) -> u64 {
        self.waves.iter().map(WaveProfile::bootstrapped).max().unwrap_or(0)
    }

    /// Critical-path depth in bootstrapped waves.
    pub fn depth(&self) -> usize {
        self.waves.iter().filter(|w| w.bootstrapped() > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_by_wave() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let y = nl.add_gate(GateKind::And, a, b).unwrap();
        let z = nl.add_gate(GateKind::Or, x, y).unwrap();
        let buf = nl.add_gate(GateKind::Buf, z, z).unwrap();
        nl.mark_output(buf).unwrap();
        let p = ProgramProfile::of(&nl);
        assert_eq!(p.total_gates(), 4);
        assert_eq!(p.total_bootstrapped(), 3);
        assert_eq!(p.waves[1].count(GateKind::Xor), 1);
        assert_eq!(p.waves[1].count(GateKind::And), 1);
        assert_eq!(p.waves[2].count(GateKind::Or), 1);
        assert_eq!(p.max_width(), 2);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.num_inputs, 2);
        assert_eq!(p.num_outputs, 1);
        assert_eq!(p.waves[1].iter_bootstrapped().count(), 2);
    }

    #[test]
    fn fused_luts_profile_by_cost() {
        use pytfhe_netlist::LutSpec;
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let c = nl.add_input();
        // Majority cone: one programmable bootstrap.
        let maj = nl.add_lut(LutSpec::new(3, 3, 0b1110_1000), &[a, b, c]).unwrap();
        // Width-1 negation: affine, free.
        let inv = nl.add_lut(LutSpec::new(1, 3, 0b01), &[maj]).unwrap();
        nl.mark_output(inv).unwrap();
        let p = ProgramProfile::of(&nl);
        assert_eq!(p.total_gates(), 2, "both LUT nodes are tasks");
        assert_eq!(p.total_bootstrapped(), 1, "only the majority cone bootstraps");
        assert_eq!(p.waves[1].lut_bootstrapped, 1);
        assert_eq!(p.waves[2].lut_affine, 1);
        assert_eq!(p.depth(), 1);
    }
}
