//! Discrete-event simulation of the GPU backends (Section IV-E) — the
//! engine behind the Figure 8, 9, 11 and Table IV reproductions.
//!
//! Two scheduling policies over the same device model:
//!
//! * [`GpuPolicy::CuFhe`] — the baseline library's gate-level API
//!   (Figure 8): each gate evaluation is a blocking sequence of
//!   host-to-device copies, a kernel launch, the kernel, a
//!   device-to-host copy and a synchronization, with the CPU thread
//!   blocked throughout. Interdependent or mixed-type gates cannot be
//!   batched, so real programs dispatch gate by gate.
//! * [`GpuPolicy::CudaGraphs`] — PyTFHE's backend (Figure 9): the DAG is
//!   cut into sub-DAG batches of up to ~100 k nodes, each defined as one
//!   CUDA graph; per-gate launch overhead collapses to a per-node graph
//!   cost, transfers happen once per batch, and graph *construction* of
//!   batch `i+1` on the CPU overlaps graph *execution* of batch `i` on
//!   the GPU.

use crate::cost::{CpuCostModel, GpuCostModel};
use crate::sim::profile::ProgramProfile;
use crate::sim::timeline::Timeline;

/// The CUDA-graph batch-cut rule shared by the simulator and the real
/// kernel-graph backend ([`crate::graph`]): consecutive waves accumulate
/// into a batch until it holds at least `batch_nodes` bootstrapped
/// gates, then the batch closes; waves with no bootstrapped gates are
/// skipped; a trailing partial batch survives. Returns, per batch, the
/// bootstrapped gate count of each contributing wave in wave order.
pub fn graph_batch_waves(profile: &ProgramProfile, batch_nodes: u64) -> Vec<Vec<u64>> {
    let mut batches = Vec::new();
    let mut cur: Vec<u64> = Vec::new();
    let mut cur_gates = 0u64;
    for wave in &profile.waves {
        let n = wave.bootstrapped();
        if n == 0 {
            continue;
        }
        cur.push(n);
        cur_gates += n;
        if cur_gates >= batch_nodes {
            batches.push(std::mem::take(&mut cur));
            cur_gates = 0;
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    batches
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuPolicy {
    /// Per-gate blocking dispatch through the cuFHE gate API.
    CuFhe,
    /// cuFHE's vectorized batching: independent *same-type* gates of one
    /// wave share a launch (the paper: "this type of batching does not
    /// allow interdependent ciphertexts or mixed types of gates to be
    /// batched", and the CPU still blocks between batches).
    CuFheBatched,
    /// PyTFHE's CUDA-Graphs batch scheduling.
    CudaGraphs,
}

/// The simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuReport {
    /// Predicted wall-clock seconds.
    pub total_s: f64,
    /// Seconds the GPU spent computing kernels.
    pub kernel_busy_s: f64,
    /// Seconds spent on host-device transfers.
    pub transfer_s: f64,
    /// Seconds of launch/sync/graph overheads.
    pub overhead_s: f64,
    /// Bootstrapped gates executed.
    pub gates: u64,
}

/// The GPU backend simulator.
#[derive(Debug, Clone, Copy)]
pub struct GpuSim {
    gpu: GpuCostModel,
    cpu: CpuCostModel,
}

impl GpuSim {
    /// Creates a simulator for the given device (the CPU model supplies
    /// the ciphertext size and the single-core reference time).
    pub fn new(gpu: GpuCostModel, cpu: CpuCostModel) -> Self {
        GpuSim { gpu, cpu }
    }

    /// The device model.
    pub fn gpu(&self) -> &GpuCostModel {
        &self.gpu
    }

    /// Simulates `profile` under `policy`.
    pub fn simulate(&self, profile: &ProgramProfile, policy: GpuPolicy) -> GpuReport {
        match policy {
            GpuPolicy::CuFhe => self.simulate_cufhe(profile),
            GpuPolicy::CuFheBatched => self.simulate_cufhe_batched(profile),
            GpuPolicy::CudaGraphs => self.simulate_graphs(profile),
        }
    }

    /// The batched cuFHE policy: within each wave, gates of one kind
    /// form vector batches of up to `SM` lanes. Every batch still pays
    /// full transfers, a launch and a blocking sync, and batches are
    /// serialized on the CPU thread — mixed gate kinds and
    /// inter-dependencies cannot share a batch.
    fn simulate_cufhe_batched(&self, profile: &ProgramProfile) -> GpuReport {
        let ct = self.cpu.ciphertext_bytes;
        let sm = self.gpu.sm_count as u64;
        let mut total = 0.0;
        let mut kernel_busy = 0.0;
        let mut transfer = 0.0;
        let mut overhead = 0.0;
        let mut gates = 0u64;
        for wave in &profile.waves {
            for (_, count) in wave.iter_bootstrapped() {
                gates += count;
                let mut left = count;
                while left > 0 {
                    let batch = left.min(sm);
                    left -= batch;
                    let t = self.gpu.transfer_s(3 * batch as usize, ct);
                    let o = self.gpu.launch_s + self.gpu.sync_s;
                    transfer += t;
                    overhead += o;
                    kernel_busy += self.gpu.kernel_s;
                    total += t + o + self.gpu.kernel_s;
                }
            }
        }
        GpuReport {
            total_s: total,
            kernel_busy_s: kernel_busy,
            transfer_s: transfer,
            overhead_s: overhead,
            gates,
        }
    }

    /// The cuFHE policy: per-gate blocking dispatch. Every gate pays two
    /// input uploads, a launch, the kernel, one output download and a
    /// sync — all serialized on the blocked CPU thread (Figure 8).
    fn simulate_cufhe(&self, profile: &ProgramProfile) -> GpuReport {
        let gates = profile.total_bootstrapped();
        let ct = self.cpu.ciphertext_bytes;
        let per_gate_transfer = self.gpu.transfer_s(3, ct);
        let per_gate_overhead = self.gpu.launch_s + self.gpu.sync_s;
        let total_s = gates as f64 * (per_gate_transfer + per_gate_overhead + self.gpu.kernel_s);
        GpuReport {
            total_s,
            kernel_busy_s: gates as f64 * self.gpu.kernel_s,
            transfer_s: gates as f64 * per_gate_transfer,
            overhead_s: gates as f64 * per_gate_overhead,
            gates,
        }
    }

    /// The CUDA-Graphs policy: wave-structured batches, kernels packed
    /// `SM`-wide, build/execute overlap across batches (Figure 9).
    fn simulate_graphs(&self, profile: &ProgramProfile) -> GpuReport {
        let ct = self.cpu.ciphertext_bytes;
        let sm = self.gpu.sm_count as u64;
        // Partition consecutive waves into batches of up to
        // `graph_batch_nodes` gates: (gates, exec_s) per batch.
        let batches: Vec<(u64, f64)> =
            graph_batch_waves(profile, self.gpu.graph_batch_nodes as u64)
                .into_iter()
                .map(|waves| {
                    let gates: u64 = waves.iter().sum();
                    let exec: f64 = waves
                        .iter()
                        .map(|&n| {
                            n.div_ceil(sm) as f64 * self.gpu.kernel_s
                                + n as f64 * self.gpu.graph_exec_node_s
                        })
                        .sum();
                    (gates, exec)
                })
                .collect();
        // Pipeline: build(0), then step i = max(exec(i), build(i+1)),
        // finally exec(last).
        let build: Vec<f64> =
            batches.iter().map(|(g, _)| *g as f64 * self.gpu.graph_build_node_s).collect();
        let mut total = self.gpu.transfer_s(profile.num_inputs, ct);
        if let Some(first) = build.first() {
            total += first + self.gpu.launch_s;
        }
        for (i, &(_, exec)) in batches.iter().enumerate() {
            let next_build = build.get(i + 1).copied().unwrap_or(0.0);
            total += exec.max(next_build);
        }
        total += self.gpu.transfer_s(profile.num_outputs, ct);
        let kernel_busy: f64 = batches.iter().map(|(_, e)| *e).sum();
        let gates = profile.total_bootstrapped();
        GpuReport {
            total_s: total,
            kernel_busy_s: kernel_busy,
            transfer_s: self.gpu.transfer_s(profile.num_inputs + profile.num_outputs, ct),
            overhead_s: build.iter().sum::<f64>() + self.gpu.launch_s,
            gates,
        }
    }

    /// Timeline of `n` gates under the cuFHE policy — the Figure 8
    /// reproduction.
    pub fn cufhe_timeline(&self, n: usize) -> Timeline {
        let ct = self.cpu.ciphertext_bytes;
        let mut t = Timeline::new();
        let mut now = 0.0;
        for i in 0..n {
            let h2d = self.gpu.transfer_s(2, ct).max(1e-4); // visible width
            t.push("PCIe", format!("H2D #{i}"), now, now + h2d);
            now += h2d;
            t.push("CPU", format!("launch #{i}"), now, now + self.gpu.launch_s);
            now += self.gpu.launch_s;
            t.push("GPU", format!("kernel #{i}"), now, now + self.gpu.kernel_s);
            now += self.gpu.kernel_s;
            let d2h = self.gpu.transfer_s(1, ct).max(1e-4);
            t.push("PCIe", format!("D2H #{i}"), now, now + d2h);
            now += d2h + self.gpu.sync_s;
        }
        t.record_telemetry("gpu-sim cuFHE");
        t
    }

    /// Timeline of `n` equal batches under the CUDA-Graphs policy — the
    /// Figure 9 reproduction (build of batch `i+1` overlapping execution
    /// of batch `i`).
    pub fn graphs_timeline(&self, n: usize, gates_per_batch: u64) -> Timeline {
        let sm = self.gpu.sm_count as u64;
        let build_s = gates_per_batch as f64 * self.gpu.graph_build_node_s;
        let exec_s = gates_per_batch.div_ceil(sm) as f64 * self.gpu.kernel_s
            + gates_per_batch as f64 * self.gpu.graph_exec_node_s;
        let mut t = Timeline::new();
        let mut build_done = build_s;
        t.push("CPU", "build #0", 0.0, build_done);
        let mut exec_done = build_done;
        for i in 0..n {
            let start = exec_done.max(build_done);
            t.push("GPU", format!("exec #{i}"), start, start + exec_s);
            exec_done = start + exec_s;
            if i + 1 < n {
                t.push("CPU", format!("build #{}", i + 1), build_done, build_done + build_s);
                build_done += build_s;
            }
        }
        t.record_telemetry("gpu-sim CUDA-graphs");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::{GateKind, Netlist};

    fn wide_program(width: usize, waves: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut prev = vec![a; width];
        for _ in 0..waves {
            let mut next = Vec::with_capacity(width);
            for &p in &prev {
                next.push(nl.add_gate(GateKind::Nand, p, b).unwrap());
            }
            prev = next;
        }
        for g in &prev {
            nl.mark_output(*g).unwrap();
        }
        ProgramProfile::of(&nl)
    }

    fn chain_program(len: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input();
        let b = nl.add_input();
        for _ in 0..len {
            prev = nl.add_gate(GateKind::Nand, prev, b).unwrap();
        }
        nl.mark_output(prev).unwrap();
        ProgramProfile::of(&nl)
    }

    #[test]
    fn pytfhe_beats_cufhe_by_paper_margin_on_wide_programs() {
        let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
        let profile = wide_program(2048, 20);
        let cufhe = sim.simulate(&profile, GpuPolicy::CuFhe);
        let pytfhe = sim.simulate(&profile, GpuPolicy::CudaGraphs);
        let ratio = cufhe.total_s / pytfhe.total_s;
        // The paper: "up to 61.5× better performance compared to the
        // baseline implemented with cuFHE".
        assert!(ratio > 40.0 && ratio < 90.0, "GPU speedup over cuFHE: {ratio}");
    }

    #[test]
    fn serial_programs_see_little_gpu_benefit() {
        let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
        let profile = chain_program(200);
        let cufhe = sim.simulate(&profile, GpuPolicy::CuFhe);
        let pytfhe = sim.simulate(&profile, GpuPolicy::CudaGraphs);
        let ratio = cufhe.total_s / pytfhe.total_s;
        // Mostly-serial workloads (the paper's NR-Solver / Parrando
        // analysis with Nsight, Section V-A) cannot fill the SMs.
        assert!(ratio < 2.0, "serial GPU ratio {ratio}");
    }

    #[test]
    fn batched_cufhe_sits_between_per_gate_and_graphs() {
        // Same-type vector batching recovers some throughput on wide
        // same-kind waves, but launches/syncs/transfers per batch keep it
        // well short of the CUDA-Graphs backend.
        let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
        let profile = wide_program(2048, 20); // all-NAND waves: best case
        let per_gate = sim.simulate(&profile, GpuPolicy::CuFhe).total_s;
        let batched = sim.simulate(&profile, GpuPolicy::CuFheBatched).total_s;
        let graphs = sim.simulate(&profile, GpuPolicy::CudaGraphs).total_s;
        assert!(batched < per_gate, "batching must help");
        assert!(graphs < batched, "CUDA graphs must beat blocking batches");
    }

    #[test]
    fn rtx4090_is_about_twice_a5000_on_wide_programs() {
        let cpu = CpuCostModel::paper();
        let a5000 = GpuSim::new(GpuCostModel::a5000(), cpu);
        let rtx = GpuSim::new(GpuCostModel::rtx4090(), cpu);
        let profile = wide_program(4096, 20);
        let a = a5000.simulate(&profile, GpuPolicy::CudaGraphs).total_s;
        let b = rtx.simulate(&profile, GpuPolicy::CudaGraphs).total_s;
        let ratio = a / b;
        // Table IV: 218.9 / 108.7 ≈ 2.0.
        assert!(ratio > 1.6 && ratio < 2.4, "4090/A5000 ratio {ratio}");
    }

    #[test]
    fn gpu_beats_single_core_by_paper_margin() {
        let cpu = CpuCostModel::paper();
        let sim = GpuSim::new(GpuCostModel::a5000(), cpu);
        let profile = wide_program(4096, 20);
        let gpu = sim.simulate(&profile, GpuPolicy::CudaGraphs);
        let single = profile.total_bootstrapped() as f64 * cpu.gate_s();
        let ratio = single / gpu.total_s;
        // Table IV implies A5000 ≈ 72× one CPU core (108.7 / 1.5).
        assert!(ratio > 45.0 && ratio < 90.0, "A5000 over single core: {ratio}");
    }

    #[test]
    fn cufhe_timeline_is_serialized() {
        let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
        let t = sim.cufhe_timeline(4);
        // Segments never overlap: every start is at or after the previous
        // segment's end... within each lane trivially; globally because
        // the CPU blocks.
        let mut prev_end = 0.0f64;
        for s in t.segments() {
            assert!(s.start_s >= prev_end - 1e-12, "{s:?} overlaps");
            prev_end = prev_end.max(s.end_s);
        }
        assert_eq!(t.segments().len(), 4 * 4 - 1 + 1);
    }

    #[test]
    fn graphs_timeline_overlaps_build_and_exec() {
        let sim = GpuSim::new(GpuCostModel::a5000(), CpuCostModel::paper());
        let t = sim.graphs_timeline(3, 100_000);
        let cpu_busy = t.lane_busy_s("CPU");
        let gpu_busy = t.lane_busy_s("GPU");
        assert!(t.makespan_s() < cpu_busy + gpu_busy, "pipeline must overlap");
    }
}
