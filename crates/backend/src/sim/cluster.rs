//! Discrete-event simulation of the distributed CPU backend
//! (Section IV-D: Algorithm 1 over a Ray cluster) — the engine behind the
//! Figure 10 and Table IV reproductions.
//!
//! The model follows the paper's execution structure exactly: the driver
//! walks the DAG wave by wave; each ready gate becomes one task
//! (the paper: "we choose to submit each gate as a separate Ray task");
//! tasks run on `nodes × cores` workers; a barrier ends each wave.
//! Per-wave time is `max(driver submission, worker computation)` plus the
//! barrier: submission is serialized on the driver while workers of the
//! previous chunk compute, which is what caps scaling at high worker
//! counts (the paper's 60.5× out of an ideal 72×).

use crate::cost::CpuCostModel;
use crate::sim::profile::ProgramProfile;

/// Cluster shape: the paper's testbed is 18 usable cores per node
/// (Table II, 2× Xeon Gold 5215; ideal speedups quoted as 18 and 72), in
/// 1- or 4-node configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of server nodes.
    pub nodes: usize,
    /// Worker cores per node.
    pub cores_per_node: usize,
}

impl ClusterConfig {
    /// One node of the paper's testbed (ideal speedup 18).
    pub fn one_node() -> Self {
        ClusterConfig { nodes: 1, cores_per_node: 18 }
    }

    /// The paper's four-node cluster (ideal speedup 72).
    pub fn four_nodes() -> Self {
        ClusterConfig { nodes: 4, cores_per_node: 18 }
    }

    /// Total workers.
    pub fn workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// The simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterReport {
    /// Predicted wall-clock seconds on the cluster.
    pub cluster_s: f64,
    /// Predicted wall-clock seconds on a single core (no scheduler).
    pub single_core_s: f64,
    /// Waves executed.
    pub waves: usize,
    /// Bootstrapped gates executed.
    pub gates: u64,
}

impl ClusterReport {
    /// Speedup over the single-core backend (the y-axis of Figure 10).
    pub fn speedup(&self) -> f64 {
        if self.cluster_s > 0.0 {
            self.single_core_s / self.cluster_s
        } else {
            1.0
        }
    }
}

/// The distributed-CPU simulator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSim {
    cost: CpuCostModel,
    config: ClusterConfig,
}

impl ClusterSim {
    /// Creates a simulator with the given cost model and cluster shape.
    pub fn new(cost: CpuCostModel, config: ClusterConfig) -> Self {
        ClusterSim { cost, config }
    }

    /// The cluster shape.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Simulates the wavefront execution of `profile`.
    pub fn simulate(&self, profile: &ProgramProfile) -> ClusterReport {
        let workers = self.config.workers().max(1) as u64;
        let gate_s = self.cost.gate_s();
        let task_s = gate_s + self.cost.task_overhead_s + self.cost.comm_s_per_gate();
        let mut cluster_s = 0.0;
        let mut waves = 0;
        let mut gates = 0u64;
        for wave in &profile.waves {
            let n = wave.bootstrapped();
            if n == 0 {
                continue;
            }
            waves += 1;
            gates += n;
            // Driver submits n tasks serially; workers drain them in
            // ceil(n / W) rounds. Submission overlaps computation, so the
            // wave costs whichever pipeline stage is longer, plus the
            // barrier.
            let submit = n as f64 * self.cost.task_submit_s;
            let compute = n.div_ceil(workers) as f64 * task_s;
            cluster_s += submit.max(compute) + self.cost.wave_barrier_s;
        }
        let single_core_s = gates as f64 * gate_s;
        ClusterReport { cluster_s, single_core_s, waves, gates }
    }

    /// The ideal throughput ceiling of this cluster: gates per second if
    /// every worker stayed busy with zero overhead — the paper's "ideal
    /// throughput of the CPU server platform" obtained from independent
    /// single-threaded dummy programs (Section V-A).
    pub fn ideal_gates_per_s(&self) -> f64 {
        self.config.workers() as f64 / self.cost.gate_s()
    }

    /// Ablation variant: greedy *list scheduling* without the per-wave
    /// barrier of Algorithm 1 — every gate starts as soon as its operands
    /// are done and a worker is free. Needs the full DAG rather than the
    /// wave profile. Comparing this against [`ClusterSim::simulate`]
    /// quantifies what the BFS barrier costs (DESIGN.md design-choice
    /// ablation).
    pub fn simulate_list(&self, nl: &pytfhe_netlist::Netlist) -> ClusterReport {
        use pytfhe_netlist::{GateKind, Node};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Work in integer nanoseconds so times can live in ordered heaps.
        let to_ns = |s: f64| (s * 1e9).round() as u64;
        let task_ns =
            to_ns(self.cost.gate_s() + self.cost.task_overhead_s + self.cost.comm_s_per_gate());
        let submit_ns = to_ns(self.cost.task_submit_s);
        let workers = self.config.workers().max(1);

        // Dependency counts and successor lists over *costly* gates;
        // constants/buffers are free and resolve transparently.
        let n = nl.num_nodes();
        let mut deps = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let is_free = |kind: GateKind| kind.is_const() || kind == GateKind::Buf;
        for (i, node) in nl.nodes().iter().enumerate() {
            let Node::Gate { kind, a, b } = *node else { continue };
            if kind.is_const() {
                continue;
            }
            let mut operands = vec![a.index()];
            if !kind.is_unary() {
                operands.push(b.index());
            }
            for op in operands {
                if let Node::Gate { kind: ok, .. } = nl.nodes()[op] {
                    if !ok.is_const() {
                        deps[i] += 1;
                        succs[op].push(i as u32);
                    }
                }
            }
        }
        // `finish[i]` for free nodes propagates the operand's finish.
        let mut finish = vec![0u64; n];
        let mut ready_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for (i, node) in nl.nodes().iter().enumerate() {
            if let Node::Gate { kind, .. } = node {
                if !is_free(*kind) && deps[i] == 0 {
                    ready_heap.push(Reverse((0, i as u32)));
                }
            }
        }
        let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0)).collect();
        let mut driver = 0u64; // serial task submission, in readiness order
        let mut makespan = 0u64;
        let mut gates = 0u64;
        let resolve = |i: usize,
                           end: u64,
                           finish: &mut Vec<u64>,
                           deps: &mut Vec<u32>,
                           heap: &mut BinaryHeap<Reverse<(u64, u32)>>| {
            // Mark node i finished at `end`; release successors (free
            // nodes chain through immediately).
            let mut stack = vec![(i, end)];
            while let Some((node, t)) = stack.pop() {
                finish[node] = t;
                for &s in &succs[node] {
                    let s = s as usize;
                    let Node::Gate { kind, a, b } = nl.nodes()[s] else { unreachable!() };
                    if is_free(kind) {
                        stack.push((s, t));
                    } else {
                        deps[s] -= 1;
                        if deps[s] == 0 {
                            let ready = finish[a.index()]
                                .max(if kind.is_unary() { 0 } else { finish[b.index()] });
                            heap.push(Reverse((ready, s as u32)));
                        }
                    }
                }
            }
        };
        // Free nodes with no costly dependencies finish at time 0 and
        // must release their successors up front.
        for (i, node) in nl.nodes().iter().enumerate() {
            if let Node::Gate { kind, .. } = node {
                if is_free(*kind) && deps[i] == 0 {
                    resolve(i, 0, &mut finish, &mut deps, &mut ready_heap);
                }
            }
        }
        while let Some(Reverse((ready, i))) = ready_heap.pop() {
            gates += 1;
            driver = driver.max(ready) + submit_ns;
            let Reverse(worker_free) = free.pop().expect("nonempty pool");
            let start = driver.max(worker_free);
            let end = start + task_ns;
            makespan = makespan.max(end);
            free.push(Reverse(end));
            resolve(i as usize, end, &mut finish, &mut deps, &mut ready_heap);
        }
        ClusterReport {
            cluster_s: makespan as f64 / 1e9,
            single_core_s: gates as f64 * self.cost.gate_s(),
            waves: 0,
            gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::{GateKind, Netlist};

    /// A wide, parallel program: `waves` waves of `width` NAND gates.
    fn wide_program(width: usize, waves: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut prev = vec![a; width];
        for _ in 0..waves {
            let mut next = Vec::with_capacity(width);
            for &p in &prev {
                next.push(nl.add_gate(GateKind::Nand, p, b).unwrap());
            }
            prev = next;
        }
        for g in &prev {
            nl.mark_output(*g).unwrap();
        }
        ProgramProfile::of(&nl)
    }

    /// A serial chain.
    fn chain_program(len: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input();
        let b = nl.add_input();
        for _ in 0..len {
            prev = nl.add_gate(GateKind::Nand, prev, b).unwrap();
        }
        nl.mark_output(prev).unwrap();
        ProgramProfile::of(&nl)
    }

    #[test]
    fn wide_programs_scale_near_ideally_on_one_node() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let report = sim.simulate(&wide_program(4096, 30));
        let speedup = report.speedup();
        // The paper: 17.4 out of an ideal 18 on one node.
        assert!(speedup > 16.0 && speedup < 18.0, "one-node speedup {speedup}");
    }

    #[test]
    fn four_nodes_reach_paper_scaling() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let report = sim.simulate(&wide_program(4096, 30));
        let speedup = report.speedup();
        // The paper: 60.5 out of an ideal 72 on four nodes — submission
        // overhead keeps it clearly below ideal.
        assert!(speedup > 52.0 && speedup < 68.0, "four-node speedup {speedup}");
    }

    #[test]
    fn serial_chains_do_not_benefit() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let report = sim.simulate(&chain_program(100));
        let speedup = report.speedup();
        // Mostly-serial workloads (the paper's NR-Solver) cannot use the
        // cluster; overheads even make them slightly slower.
        assert!(speedup < 1.1, "serial speedup {speedup}");
        assert_eq!(report.waves, 100);
    }

    #[test]
    fn single_core_time_is_gate_count_times_gate_cost() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let profile = wide_program(10, 3);
        let report = sim.simulate(&profile);
        let expect = 30.0 * CpuCostModel::paper().gate_s();
        assert!((report.single_core_s - expect).abs() < 1e-9);
        assert_eq!(report.gates, 30);
    }

    #[test]
    fn list_scheduling_never_loses_to_the_barrier() {
        // Without the per-wave barrier, ragged DAGs finish at least as
        // fast; on clean rectangular DAGs the two converge.
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        // Ragged: alternating wide and narrow waves.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut bottleneck = a;
        for _ in 0..6 {
            let wide: Vec<_> =
                (0..40).map(|_| nl.add_gate(GateKind::Nand, bottleneck, b).unwrap()).collect();
            bottleneck = wide.iter().fold(wide[0], |acc, &g| {
                nl.add_gate(GateKind::And, acc, g).unwrap()
            });
        }
        nl.mark_output(bottleneck).unwrap();
        let barrier = sim.simulate(&ProgramProfile::of(&nl));
        let list = sim.simulate_list(&nl);
        assert_eq!(barrier.gates, list.gates);
        assert!(
            list.cluster_s <= barrier.cluster_s * 1.02,
            "list {:.3}s vs barrier {:.3}s",
            list.cluster_s,
            barrier.cluster_s
        );
    }

    #[test]
    fn ideal_throughput_matches_workers() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let per_core = 1.0 / CpuCostModel::paper().gate_s();
        assert!((sim.ideal_gates_per_s() - 72.0 * per_core).abs() < 1e-6);
    }
}
