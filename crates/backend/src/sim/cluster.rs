//! Discrete-event simulation of the distributed CPU backend
//! (Section IV-D: Algorithm 1 over a Ray cluster) — the engine behind the
//! Figure 10 and Table IV reproductions.
//!
//! The model follows the paper's execution structure exactly: the driver
//! walks the DAG wave by wave; each ready gate becomes one task
//! (the paper: "we choose to submit each gate as a separate Ray task");
//! tasks run on `nodes × cores` workers; a barrier ends each wave.
//! Per-wave time is `max(driver submission, worker computation)` plus the
//! barrier: submission is serialized on the driver while workers of the
//! previous chunk compute, which is what caps scaling at high worker
//! counts (the paper's 60.5× out of an ideal 72×).

use crate::cost::CpuCostModel;
use crate::sim::profile::ProgramProfile;

/// Cluster shape: the paper's testbed is 18 usable cores per node
/// (Table II, 2× Xeon Gold 5215; ideal speedups quoted as 18 and 72), in
/// 1- or 4-node configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of server nodes.
    pub nodes: usize,
    /// Worker cores per node.
    pub cores_per_node: usize,
}

impl ClusterConfig {
    /// One node of the paper's testbed (ideal speedup 18).
    pub fn one_node() -> Self {
        ClusterConfig { nodes: 1, cores_per_node: 18 }
    }

    /// The paper's four-node cluster (ideal speedup 72).
    pub fn four_nodes() -> Self {
        ClusterConfig { nodes: 4, cores_per_node: 18 }
    }

    /// Total workers.
    pub fn workers(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// The simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterReport {
    /// Predicted wall-clock seconds on the cluster.
    pub cluster_s: f64,
    /// Predicted wall-clock seconds on a single core (no scheduler).
    pub single_core_s: f64,
    /// Waves executed.
    pub waves: usize,
    /// Bootstrapped gates executed.
    pub gates: u64,
}

impl ClusterReport {
    /// Speedup over the single-core backend (the y-axis of Figure 10).
    pub fn speedup(&self) -> f64 {
        if self.cluster_s > 0.0 {
            self.single_core_s / self.cluster_s
        } else {
            1.0
        }
    }
}

/// Failure behaviour of the simulated cluster: nodes fail independently
/// with exponentially distributed time-between-failures and come back
/// after a fixed recovery latency.
///
/// Failures are sampled deterministically from `seed` (the same splitmix
/// scheme as [`crate::fault::SeededFaults`]), so a speedup-under-failure
/// curve is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFaultModel {
    /// Mean time between failures of one node, in seconds. Non-positive
    /// or non-finite disables failures.
    pub node_mtbf_s: f64,
    /// Time from a node failing until it rejoins the pool (Ray restarts
    /// the raylet and re-registers the workers).
    pub recovery_s: f64,
    /// Cost of writing one wave checkpoint (frontier ciphertexts to the
    /// object store), paid at every barrier by the resilient variant.
    pub checkpoint_write_s: f64,
    /// Seed of the deterministic failure-time sampling.
    pub seed: u64,
}

impl SimFaultModel {
    /// A fault model with the given node MTBF and recovery latency, a
    /// small default checkpoint-write cost, and seed 1.
    pub fn new(node_mtbf_s: f64, recovery_s: f64) -> Self {
        SimFaultModel { node_mtbf_s, recovery_s, checkpoint_write_s: 0.05, seed: 1 }
    }

    /// Overrides the per-barrier checkpoint-write cost.
    #[must_use]
    pub fn with_checkpoint_write(mut self, s: f64) -> Self {
        self.checkpoint_write_s = s;
        self
    }

    /// Overrides the sampling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a [`ClusterSim::simulate_faulty`] run: the same program
/// under three regimes — no failures, failures with wave-granular
/// checkpoint/resume, and failures with restart-from-scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyClusterReport {
    /// Wall-clock seconds with no failures (and no checkpoint cost):
    /// [`ClusterSim::simulate`]'s prediction.
    pub fault_free_s: f64,
    /// Wall-clock seconds under the fault model with wave-granular
    /// checkpointing: a failure only loses the wave in flight.
    pub resilient_s: f64,
    /// Wall-clock seconds under the same failure sequence when a failure
    /// restarts the whole program (no checkpoints, no checkpoint cost).
    pub restart_s: f64,
    /// Single-core baseline seconds (denominator of speedup curves).
    pub single_core_s: f64,
    /// Node failures the resilient run absorbed.
    pub failures_resilient: u64,
    /// Node failures the restarting run absorbed before finishing (or
    /// before hitting the restart cap).
    pub failures_restart: u64,
    /// Non-empty waves in the program.
    pub waves: usize,
    /// Bootstrapped gates executed.
    pub gates: u64,
}

impl FaultyClusterReport {
    /// Speedup over one core under failures, with checkpoint/resume —
    /// the Figure-10-style y-axis degraded by the fault model.
    pub fn resilient_speedup(&self) -> f64 {
        if self.resilient_s > 0.0 {
            self.single_core_s / self.resilient_s
        } else {
            1.0
        }
    }

    /// Speedup over one core under failures with restart-from-scratch.
    pub fn restart_speedup(&self) -> f64 {
        if self.restart_s > 0.0 {
            self.single_core_s / self.restart_s
        } else {
            1.0
        }
    }

    /// Fractional slowdown of the resilient run over the fault-free run
    /// (retry + checkpoint overhead): `resilient / fault_free - 1`.
    pub fn resilient_overhead(&self) -> f64 {
        if self.fault_free_s > 0.0 {
            self.resilient_s / self.fault_free_s - 1.0
        } else {
            0.0
        }
    }
}

/// The distributed-CPU simulator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSim {
    cost: CpuCostModel,
    config: ClusterConfig,
}

impl ClusterSim {
    /// Creates a simulator with the given cost model and cluster shape.
    pub fn new(cost: CpuCostModel, config: ClusterConfig) -> Self {
        ClusterSim { cost, config }
    }

    /// The cluster shape.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Predicted duration of one wave of `n` bootstrapped gates on
    /// `workers` workers: the driver submits `n` tasks serially while
    /// workers drain them in `ceil(n / workers)` rounds — the wave costs
    /// whichever pipeline stage is longer, plus the barrier.
    fn wave_s(&self, n: u64, workers: u64) -> f64 {
        let task_s = self.cost.gate_s() + self.cost.task_overhead_s + self.cost.comm_s_per_gate();
        let submit = n as f64 * self.cost.task_submit_s;
        let compute = n.div_ceil(workers.max(1)) as f64 * task_s;
        submit.max(compute) + self.cost.wave_barrier_s
    }

    /// Simulates the wavefront execution of `profile`.
    pub fn simulate(&self, profile: &ProgramProfile) -> ClusterReport {
        let workers = self.config.workers().max(1) as u64;
        let telemetry_on = pytfhe_telemetry::enabled();
        let mut cluster_s = 0.0;
        let mut waves = 0;
        let mut gates = 0u64;
        for wave in &profile.waves {
            let n = wave.bootstrapped();
            if n == 0 {
                continue;
            }
            waves += 1;
            gates += n;
            let dur = self.wave_s(n, workers);
            if telemetry_on {
                // Virtual-time span: simulated seconds, one lane per
                // cluster shape, rendered next to real execution.
                pytfhe_telemetry::sim_span(
                    "cluster-sim",
                    format!("{}x{} workers", self.config.nodes, self.config.cores_per_node),
                    format!("wave {}: {n} gates", waves - 1),
                    cluster_s,
                    cluster_s + dur,
                );
            }
            cluster_s += dur;
        }
        let single_core_s = gates as f64 * self.cost.gate_s();
        ClusterReport { cluster_s, single_core_s, waves, gates }
    }

    /// Simulates `profile` under `fault`, in two recovery regimes over
    /// the *same* deterministic failure process: wave-granular
    /// checkpoint/resume (a node failure mid-wave re-runs only that wave
    /// on the surviving nodes, paying [`SimFaultModel::checkpoint_write_s`]
    /// at every barrier) versus restart-from-scratch (a failure rewinds
    /// the whole program). The pair quantifies what checkpointing buys —
    /// the degraded Figure-10 speedup curves under failure.
    ///
    /// Unlike [`crate::exec::execute_resilient`]'s permanent worker
    /// eviction, the simulated cluster heals: a failed node rejoins after
    /// [`SimFaultModel::recovery_s`] (Ray restarts the raylet), because
    /// over cluster-scale horizons nodes reboot rather than vanish.
    pub fn simulate_faulty(
        &self,
        profile: &ProgramProfile,
        fault: &SimFaultModel,
    ) -> FaultyClusterReport {
        let base = self.simulate(profile);
        let wave_sizes: Vec<u64> =
            profile.waves.iter().map(|w| w.bootstrapped()).filter(|&n| n > 0).collect();
        let (resilient_s, failures_resilient) = self.faulty_run(&wave_sizes, fault, true);
        let (restart_s, failures_restart) = self.faulty_run(&wave_sizes, fault, false);
        FaultyClusterReport {
            fault_free_s: base.cluster_s,
            resilient_s,
            restart_s,
            single_core_s: base.single_core_s,
            failures_resilient,
            failures_restart,
            waves: base.waves,
            gates: base.gates,
        }
    }

    /// One faulty timeline: walks the waves advancing a wall clock while
    /// nodes fail (exponential inter-failure times) and recover. With
    /// `checkpointed`, a failure re-runs the in-flight wave on the
    /// survivors; without, it rewinds to wave zero. Returns `(wall_s,
    /// failures)`; a run that cannot make progress within the failure cap
    /// reports infinite time.
    fn faulty_run(
        &self,
        wave_sizes: &[u64],
        fault: &SimFaultModel,
        checkpointed: bool,
    ) -> (f64, u64) {
        // Runaway guard: with MTBF far below the wave length not even a
        // wave can commit; report "never finishes" instead of looping.
        const MAX_FAILURES: u64 = 100_000;

        let nodes = self.config.nodes.max(1);
        let cores = self.config.cores_per_node.max(1);
        let enabled = fault.node_mtbf_s.is_finite() && fault.node_mtbf_s > 0.0;
        let mut draws = vec![0u64; nodes];
        let sample = |node: usize, draws: &mut [u64]| -> f64 {
            if !enabled {
                return f64::INFINITY;
            }
            let u = crate::fault::unit(fault.seed, node as u64, draws[node], 0xFA11);
            draws[node] += 1;
            // Inverse-CDF exponential sample; 1-u is in (0, 1].
            -fault.node_mtbf_s * (1.0 - u).ln()
        };
        let mut next_fail: Vec<f64> = (0..nodes).map(|i| sample(i, &mut draws)).collect();
        let mut down_until = vec![0.0f64; nodes];
        let mut failures = 0u64;
        let mut t = 0.0f64;
        let mut wave_idx = 0usize;
        while wave_idx < wave_sizes.len() {
            let up: Vec<usize> = (0..nodes).filter(|&i| down_until[i] <= t).collect();
            if up.is_empty() {
                // Whole cluster down: wait for the first node to recover.
                t = down_until.iter().copied().fold(f64::INFINITY, f64::min);
                continue;
            }
            let dur = self.wave_s(wave_sizes[wave_idx], (up.len() * cores) as u64);
            // Earliest failure among live nodes that lands inside this
            // wave attempt, if any.
            let failing = up
                .iter()
                .copied()
                .filter(|&i| next_fail[i] < t + dur)
                .min_by(|&a, &b| next_fail[a].total_cmp(&next_fail[b]));
            match failing {
                None => {
                    t += dur;
                    if checkpointed {
                        t += fault.checkpoint_write_s;
                    }
                    wave_idx += 1;
                }
                Some(i) => {
                    failures += 1;
                    if failures >= MAX_FAILURES {
                        return (f64::INFINITY, failures);
                    }
                    t = next_fail[i].max(t);
                    down_until[i] = next_fail[i] + fault.recovery_s;
                    next_fail[i] = down_until[i] + sample(i, &mut draws);
                    if !checkpointed {
                        wave_idx = 0;
                    }
                }
            }
        }
        (t, failures)
    }

    /// The ideal throughput ceiling of this cluster: gates per second if
    /// every worker stayed busy with zero overhead — the paper's "ideal
    /// throughput of the CPU server platform" obtained from independent
    /// single-threaded dummy programs (Section V-A).
    pub fn ideal_gates_per_s(&self) -> f64 {
        self.config.workers() as f64 / self.cost.gate_s()
    }

    /// Ablation variant: greedy *list scheduling* without the per-wave
    /// barrier of Algorithm 1 — every gate starts as soon as its operands
    /// are done and a worker is free. Needs the full DAG rather than the
    /// wave profile. Comparing this against [`ClusterSim::simulate`]
    /// quantifies what the BFS barrier costs (DESIGN.md design-choice
    /// ablation).
    pub fn simulate_list(&self, nl: &pytfhe_netlist::Netlist) -> ClusterReport {
        use pytfhe_netlist::{GateKind, Node};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Work in integer nanoseconds so times can live in ordered heaps.
        let to_ns = |s: f64| (s * 1e9).round() as u64;
        let task_ns =
            to_ns(self.cost.gate_s() + self.cost.task_overhead_s + self.cost.comm_s_per_gate());
        let submit_ns = to_ns(self.cost.task_submit_s);
        let workers = self.config.workers().max(1);

        // Dependency counts and successor lists over *costly* tasks
        // (bootstrapped gates and non-affine fused LUTs); constants,
        // buffers, and affine LUTs are free and resolve transparently.
        let n = nl.num_nodes();
        let mut deps = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let is_free_gate = |kind: GateKind| kind.is_const() || kind == GateKind::Buf;
        // Free nodes always have at most one costly operand, so the
        // chain-on-first-finish rule in `resolve` stays correct.
        let node_free = |node: &Node| match node {
            Node::Gate { kind, .. } => is_free_gate(*kind),
            Node::Lut { spec, .. } => spec.bootstraps() == 0,
            Node::Input => true,
        };
        let operands = |node: &Node| -> Vec<usize> {
            match node {
                Node::Gate { kind, .. } if kind.is_const() => Vec::new(),
                Node::Gate { kind, a, b } => {
                    if kind.is_unary() {
                        vec![a.index()]
                    } else {
                        vec![a.index(), b.index()]
                    }
                }
                Node::Lut { spec, ins } => {
                    ins[..spec.width as usize].iter().map(|id| id.index()).collect()
                }
                Node::Input => Vec::new(),
            }
        };
        for (i, node) in nl.nodes().iter().enumerate() {
            if matches!(node, Node::Input) {
                continue;
            }
            for op in operands(node) {
                if !node_free(&nl.nodes()[op]) {
                    deps[i] += 1;
                    succs[op].push(i as u32);
                }
            }
        }
        // `finish[i]` for free nodes propagates the operand's finish.
        let mut finish = vec![0u64; n];
        let mut ready_heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for (i, node) in nl.nodes().iter().enumerate() {
            if !matches!(node, Node::Input) && !node_free(node) && deps[i] == 0 {
                ready_heap.push(Reverse((0, i as u32)));
            }
        }
        let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0)).collect();
        let mut driver = 0u64; // serial task submission, in readiness order
        let mut makespan = 0u64;
        let mut gates = 0u64;
        let resolve = |i: usize,
                       end: u64,
                       finish: &mut Vec<u64>,
                       deps: &mut Vec<u32>,
                       heap: &mut BinaryHeap<Reverse<(u64, u32)>>| {
            // Mark node i finished at `end`; release successors (free
            // nodes chain through immediately).
            let mut stack = vec![(i, end)];
            while let Some((node, t)) = stack.pop() {
                finish[node] = t;
                for &s in &succs[node] {
                    let s = s as usize;
                    let succ = &nl.nodes()[s];
                    if node_free(succ) {
                        stack.push((s, t));
                    } else {
                        deps[s] -= 1;
                        if deps[s] == 0 {
                            let ready =
                                operands(succ).iter().map(|&op| finish[op]).fold(0u64, u64::max);
                            heap.push(Reverse((ready, s as u32)));
                        }
                    }
                }
            }
        };
        // Free nodes with no costly dependencies finish at time 0 and
        // must release their successors up front.
        for (i, node) in nl.nodes().iter().enumerate() {
            if !matches!(node, Node::Input) && node_free(node) && deps[i] == 0 {
                resolve(i, 0, &mut finish, &mut deps, &mut ready_heap);
            }
        }
        while let Some(Reverse((ready, i))) = ready_heap.pop() {
            gates += 1;
            driver = driver.max(ready) + submit_ns;
            let Reverse(worker_free) = free.pop().expect("nonempty pool");
            let start = driver.max(worker_free);
            let end = start + task_ns;
            makespan = makespan.max(end);
            free.push(Reverse(end));
            resolve(i as usize, end, &mut finish, &mut deps, &mut ready_heap);
        }
        ClusterReport {
            cluster_s: makespan as f64 / 1e9,
            single_core_s: gates as f64 * self.cost.gate_s(),
            waves: 0,
            gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::{GateKind, Netlist};

    /// A wide, parallel program: `waves` waves of `width` NAND gates.
    fn wide_program(width: usize, waves: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut prev = vec![a; width];
        for _ in 0..waves {
            let mut next = Vec::with_capacity(width);
            for &p in &prev {
                next.push(nl.add_gate(GateKind::Nand, p, b).unwrap());
            }
            prev = next;
        }
        for g in &prev {
            nl.mark_output(*g).unwrap();
        }
        ProgramProfile::of(&nl)
    }

    /// A serial chain.
    fn chain_program(len: usize) -> ProgramProfile {
        let mut nl = Netlist::new();
        let mut prev = nl.add_input();
        let b = nl.add_input();
        for _ in 0..len {
            prev = nl.add_gate(GateKind::Nand, prev, b).unwrap();
        }
        nl.mark_output(prev).unwrap();
        ProgramProfile::of(&nl)
    }

    #[test]
    fn wide_programs_scale_near_ideally_on_one_node() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let report = sim.simulate(&wide_program(4096, 30));
        let speedup = report.speedup();
        // The paper: 17.4 out of an ideal 18 on one node.
        assert!(speedup > 16.0 && speedup < 18.0, "one-node speedup {speedup}");
    }

    #[test]
    fn four_nodes_reach_paper_scaling() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let report = sim.simulate(&wide_program(4096, 30));
        let speedup = report.speedup();
        // The paper: 60.5 out of an ideal 72 on four nodes — submission
        // overhead keeps it clearly below ideal.
        assert!(speedup > 52.0 && speedup < 68.0, "four-node speedup {speedup}");
    }

    #[test]
    fn serial_chains_do_not_benefit() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let report = sim.simulate(&chain_program(100));
        let speedup = report.speedup();
        // Mostly-serial workloads (the paper's NR-Solver) cannot use the
        // cluster; overheads even make them slightly slower.
        assert!(speedup < 1.1, "serial speedup {speedup}");
        assert_eq!(report.waves, 100);
    }

    #[test]
    fn single_core_time_is_gate_count_times_gate_cost() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let profile = wide_program(10, 3);
        let report = sim.simulate(&profile);
        let expect = 30.0 * CpuCostModel::paper().gate_s();
        assert!((report.single_core_s - expect).abs() < 1e-9);
        assert_eq!(report.gates, 30);
    }

    #[test]
    fn list_scheduling_never_loses_to_the_barrier() {
        // Without the per-wave barrier, ragged DAGs finish at least as
        // fast; on clean rectangular DAGs the two converge.
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        // Ragged: alternating wide and narrow waves.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut bottleneck = a;
        for _ in 0..6 {
            let wide: Vec<_> =
                (0..40).map(|_| nl.add_gate(GateKind::Nand, bottleneck, b).unwrap()).collect();
            bottleneck =
                wide.iter().fold(wide[0], |acc, &g| nl.add_gate(GateKind::And, acc, g).unwrap());
        }
        nl.mark_output(bottleneck).unwrap();
        let barrier = sim.simulate(&ProgramProfile::of(&nl));
        let list = sim.simulate_list(&nl);
        assert_eq!(barrier.gates, list.gates);
        assert!(
            list.cluster_s <= barrier.cluster_s * 1.02,
            "list {:.3}s vs barrier {:.3}s",
            list.cluster_s,
            barrier.cluster_s
        );
    }

    #[test]
    fn no_failures_costs_only_checkpoint_writes() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let profile = wide_program(256, 10);
        let fault = SimFaultModel::new(0.0, 30.0).with_checkpoint_write(0.1);
        let report = sim.simulate_faulty(&profile, &fault);
        assert_eq!(report.failures_resilient, 0);
        assert_eq!(report.failures_restart, 0);
        assert!((report.restart_s - report.fault_free_s).abs() < 1e-9);
        let expect = report.fault_free_s + report.waves as f64 * 0.1;
        assert!((report.resilient_s - expect).abs() < 1e-9);
    }

    #[test]
    fn checkpointing_beats_restart_on_one_node_under_failures() {
        // Table II single-node config. Fault-free runtime is ~90 s; with
        // a 60 s node MTBF the restart regime rewinds over and over while
        // the checkpointed regime only ever loses the wave in flight.
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let profile = wide_program(4096, 30);
        let fault = SimFaultModel::new(60.0, 10.0);
        let report = sim.simulate_faulty(&profile, &fault);
        assert!(report.failures_resilient > 0, "fault model injected nothing");
        assert!(report.resilient_s.is_finite());
        assert!(
            report.resilient_s < report.restart_s,
            "resilient {} vs restart {}",
            report.resilient_s,
            report.restart_s
        );
        // Recovery is not free: the degraded curve sits below fault-free.
        assert!(report.resilient_s > report.fault_free_s);
        assert!(report.resilient_speedup() < sim.simulate(&profile).speedup());
    }

    #[test]
    fn checkpointing_beats_restart_on_four_nodes_under_failures() {
        // Table II four-node config: four times the failure exposure.
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let profile = wide_program(4096, 30);
        let fault = SimFaultModel::new(60.0, 10.0);
        let report = sim.simulate_faulty(&profile, &fault);
        assert!(report.failures_resilient > 0);
        assert!(report.resilient_s.is_finite());
        assert!(report.resilient_s < report.restart_s);
        // Even degraded, the four-node cluster should still beat one core
        // by a wide margin on an embarrassingly wide program.
        assert!(report.resilient_speedup() > 10.0, "speedup {}", report.resilient_speedup());
    }

    #[test]
    fn faulty_simulation_is_deterministic_per_seed() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let profile = wide_program(1024, 12);
        let fault = SimFaultModel::new(45.0, 5.0).with_seed(7);
        let a = sim.simulate_faulty(&profile, &fault);
        let b = sim.simulate_faulty(&profile, &fault);
        assert_eq!(a, b);
        let c = sim.simulate_faulty(&profile, &fault.with_seed(8));
        assert_ne!(a.resilient_s, c.resilient_s, "different seeds, same timeline");
    }

    #[test]
    fn hopeless_mtbf_reports_never_finishing() {
        // MTBF far below a single wave: restart-from-scratch cannot make
        // progress and the guard reports infinite time rather than
        // spinning.
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::one_node());
        let profile = wide_program(4096, 30);
        let fault = SimFaultModel::new(0.5, 10.0);
        let report = sim.simulate_faulty(&profile, &fault);
        assert!(report.restart_s.is_infinite());
    }

    #[test]
    fn ideal_throughput_matches_workers() {
        let sim = ClusterSim::new(CpuCostModel::paper(), ClusterConfig::four_nodes());
        let per_core = 1.0 / CpuCostModel::paper().gate_s();
        assert!((sim.ideal_gates_per_s() - 72.0 * per_core).abs() < 1e-6);
    }
}
