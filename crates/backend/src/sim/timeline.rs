//! Execution timelines: the data behind the paper's Gantt-style figures
//! (Figure 7's gate profile, Figure 8's serialized cuFHE flow, Figure 9's
//! overlapped CUDA-Graphs flow).

use std::fmt;

/// One labelled span of activity on one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Lane name (e.g. `"CPU"`, `"GPU"`, `"PCIe"`).
    pub lane: &'static str,
    /// Activity label (e.g. `"kernel"`, `"H2D"`).
    pub label: String,
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

/// An ordered collection of segments, renderable as an ASCII Gantt chart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    segments: Vec<Segment>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment.
    pub fn push(&mut self, lane: &'static str, label: impl Into<String>, start_s: f64, end_s: f64) {
        debug_assert!(end_s >= start_s, "segment must not end before it starts");
        self.segments.push(Segment { lane, label: label.into(), start_s, end_s });
    }

    /// All segments in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The overall makespan (latest end time).
    pub fn makespan_s(&self) -> f64 {
        self.segments.iter().map(|s| s.end_s).fold(0.0, f64::max)
    }

    /// Total busy time on one lane.
    pub fn lane_busy_s(&self, lane: &str) -> f64 {
        self.segments.iter().filter(|s| s.lane == lane).map(|s| s.end_s - s.start_s).sum()
    }

    /// Mirrors every segment into the telemetry recorder as
    /// virtual-time spans under `process`, so simulated Gantt charts
    /// (the Figure 8/9 schedules) render in the same Chrome trace
    /// viewer as the real execution that ran alongside them. No-op when
    /// telemetry is disabled.
    pub fn record_telemetry(&self, process: &'static str) {
        if !pytfhe_telemetry::enabled() {
            return;
        }
        for s in &self.segments {
            pytfhe_telemetry::sim_span(process, s.lane, s.label.clone(), s.start_s, s.end_s);
        }
    }

    /// Renders an ASCII Gantt chart, `width` characters wide.
    pub fn render(&self, width: usize) -> String {
        let span = self.makespan_s().max(1e-12);
        let mut lanes: Vec<&'static str> = Vec::new();
        for s in &self.segments {
            if !lanes.contains(&s.lane) {
                lanes.push(s.lane);
            }
        }
        let mut out = String::new();
        for lane in lanes {
            let mut row = vec![b' '; width];
            for s in self.segments.iter().filter(|s| s.lane == lane) {
                let a = ((s.start_s / span) * width as f64).floor() as usize;
                let b = (((s.end_s / span) * width as f64).ceil() as usize).min(width);
                let glyph = s.label.bytes().next().unwrap_or(b'#');
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = glyph;
                }
            }
            out.push_str(&format!("{lane:>6} |{}|\n", String::from_utf8_lossy(&row)));
        }
        out.push_str(&format!("        0 {:>width$.3} s\n", span, width = width - 2));
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(72))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_busy() {
        let mut t = Timeline::new();
        t.push("CPU", "build", 0.0, 1.0);
        t.push("GPU", "exec", 0.5, 2.5);
        t.push("CPU", "build", 1.0, 1.5);
        assert!((t.makespan_s() - 2.5).abs() < 1e-12);
        assert!((t.lane_busy_s("CPU") - 1.5).abs() < 1e-12);
        assert!((t.lane_busy_s("GPU") - 2.0).abs() < 1e-12);
        assert_eq!(t.segments().len(), 3);
    }

    #[test]
    fn render_contains_lanes() {
        let mut t = Timeline::new();
        t.push("CPU", "x", 0.0, 1.0);
        t.push("GPU", "k", 1.0, 2.0);
        let s = t.render(40);
        assert!(s.contains("CPU"));
        assert!(s.contains("GPU"));
        assert!(s.contains('x'));
        assert!(s.contains('k'));
    }
}
