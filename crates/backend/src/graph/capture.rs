//! Plan capture: one pass over a validated netlist produces a
//! [`KernelPlan`] — the compile-once half of the kernel-graph backend.

use crate::checkpoint::netlist_fingerprint;
use crate::error::ExecError;
use crate::graph::batch::group_wave;
use crate::graph::plan::{KernelPlan, SubGraph, WavePlan};
use pytfhe_netlist::{LevelSchedule, Netlist};

/// Capture tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Batch-cut budget: a sub-graph closes once it holds at least this
    /// many bootstrapped gates. The default matches the device model's
    /// `graph_batch_nodes` (~100 k nodes per CUDA graph, Section IV-E).
    pub batch_cut_nodes: u64,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig { batch_cut_nodes: 100_000 }
    }
}

/// Captures `nl` into a replayable plan.
///
/// Waves come from [`LevelSchedule`]; within each wave gates are grouped
/// by kind into batched kernels; consecutive waves accumulate into
/// sub-graph batches under the same cut rule as
/// [`crate::sim::graph_batch_waves`] (bootstrap-free waves never trigger
/// a cut but still ride along in the open batch so their gates execute).
///
/// # Errors
///
/// Returns [`ExecError::InvalidProgram`] when the netlist fails
/// validation.
pub fn capture(nl: &Netlist, cfg: &CaptureConfig) -> Result<KernelPlan, ExecError> {
    nl.validate()?;
    let sched = LevelSchedule::compute(nl);
    let mut batches: Vec<SubGraph> = Vec::new();
    let mut cur = SubGraph::default();
    let mut cur_gates = 0u64;
    for wave in &sched.waves {
        let plan: WavePlan = group_wave(nl, wave);
        if plan.groups.is_empty() && plan.lut_groups.is_empty() {
            continue;
        }
        cur_gates += plan.bootstrapped();
        cur.waves.push(plan);
        if cur_gates >= cfg.batch_cut_nodes {
            batches.push(std::mem::take(&mut cur));
            cur_gates = 0;
        }
    }
    if !cur.waves.is_empty() {
        batches.push(cur);
    }
    Ok(KernelPlan {
        fingerprint: netlist_fingerprint(nl),
        num_nodes: nl.num_nodes(),
        inputs: nl.inputs().iter().map(|id| id.0).collect(),
        outputs: nl.outputs().iter().map(|id| id.0).collect(),
        batches,
        message_precision: nl.lut_precision().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;

    fn ladder(waves: usize, width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let mut prev = vec![a; width];
        for _ in 0..waves {
            prev = prev.iter().map(|&p| nl.add_gate(GateKind::Nand, p, b).unwrap()).collect();
        }
        for g in &prev {
            nl.mark_output(*g).unwrap();
        }
        nl
    }

    #[test]
    fn capture_covers_every_gate_exactly_once() {
        let nl = ladder(5, 4);
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        assert_eq!(plan.num_gates(), nl.num_gates());
        assert_eq!(plan.num_nodes, nl.num_nodes());
        assert_eq!(plan.inputs.len(), 2);
        assert_eq!(plan.outputs.len(), 4);
        let mut outs: Vec<u32> = plan
            .batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.groups)
            .flat_map(|g| &g.tasks)
            .map(|t| t.out)
            .collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), nl.num_gates(), "no slot written twice");
    }

    #[test]
    fn small_cut_budget_splits_batches() {
        let nl = ladder(6, 3); // waves of 3 bootstrapped gates each
        let one = capture(&nl, &CaptureConfig::default()).unwrap();
        assert_eq!(one.batches.len(), 1, "default budget holds the whole program");
        let cut = capture(&nl, &CaptureConfig { batch_cut_nodes: 5 }).unwrap();
        // 3 gates/wave, cut at >= 5: every two waves close a batch.
        assert_eq!(cut.batches.len(), 3);
        for batch in &cut.batches {
            assert_eq!(batch.waves.len(), 2);
            assert_eq!(batch.bootstrapped(), 6);
        }
        assert_eq!(cut.num_gates(), one.num_gates());
    }

    #[test]
    fn fingerprint_tracks_the_program() {
        let nl1 = ladder(2, 2);
        let nl2 = ladder(3, 2);
        let p1 = capture(&nl1, &CaptureConfig::default()).unwrap();
        let p2 = capture(&nl2, &CaptureConfig::default()).unwrap();
        assert_ne!(p1.fingerprint, p2.fingerprint);
        assert_eq!(p1.fingerprint, capture(&nl1, &CaptureConfig::default()).unwrap().fingerprint);
    }
}
