//! The kernel-graph backend: capture once, replay batched execution
//! plans.
//!
//! This is the real-execution counterpart of the CUDA-Graphs scheduling
//! the paper's GPU backend uses (Section IV-E, Figure 9) and the
//! [`crate::sim::GpuPolicy::CudaGraphs`] simulator models:
//!
//! 1. **Capture** ([`capture`]): one pass over the netlist produces a
//!    [`KernelPlan`] — topological waves grouped into same-kind batched
//!    kernels, waves cut into sub-graph batches under the simulator's
//!    exact batch-cut rule ([`crate::sim::graph_batch_waves`]).
//! 2. **Cache**: [`KernelGraph`] keys captured plans by netlist
//!    fingerprint, so the second and later executions of a program skip
//!    capture entirely (`ExecStats::plan_cached`).
//! 3. **Replay** ([`replay`]): the plan executes against fresh inputs
//!    with preallocated [`ReplayLanes`]; the hot path performs zero
//!    per-gate buffer allocations and is bit-exact with
//!    [`crate::execute`].
//!
//! Plans are plain data: [`KernelPlan::to_bytes`] /
//! [`KernelPlan::from_bytes`] round-trip them for shipping or on-disk
//! caching.

mod batch;
mod capture;
mod plan;
mod replay;

pub use capture::{capture, CaptureConfig};
pub use plan::{
    counts_toward_batch, GateGroup, GateTask, KernelPlan, LutGroup, LutTask, SubGraph, WavePlan,
};
pub use replay::{replay, ReplayLanes, ReplayReport};

use crate::checkpoint::netlist_fingerprint;
use crate::engine::GateEngine;
use crate::error::ExecError;
use crate::exec::ExecStats;
use pytfhe_netlist::Netlist;
use pytfhe_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The capture-once / replay-many executor: a plan cache plus the
/// capture and replay machinery behind one entry point.
#[derive(Debug, Default)]
pub struct KernelGraph {
    cfg: CaptureConfig,
    cache: Mutex<HashMap<u64, Arc<KernelPlan>>>,
}

impl KernelGraph {
    /// An executor with the default batch-cut budget.
    pub fn new() -> Self {
        Self::with_config(CaptureConfig::default())
    }

    /// An executor with an explicit capture configuration.
    pub fn with_config(cfg: CaptureConfig) -> Self {
        KernelGraph { cfg, cache: Mutex::new(HashMap::new()) }
    }

    /// The capture configuration.
    pub fn config(&self) -> &CaptureConfig {
        &self.cfg
    }

    /// Plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("plan cache poisoned").len()
    }

    /// Returns the plan for `nl`, capturing it on first sight. The
    /// returned tuple is `(plan, came_from_cache, capture_seconds)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidProgram`] if capture rejects the
    /// netlist.
    pub fn plan_for(&self, nl: &Netlist) -> Result<(Arc<KernelPlan>, bool, f64), ExecError> {
        let fp = netlist_fingerprint(nl);
        if let Some(plan) = self.cache.lock().expect("plan cache poisoned").get(&fp) {
            return Ok((Arc::clone(plan), true, 0.0));
        }
        let capture_span =
            telemetry::span_with("graph", || format!("capture plan: {} gates", nl.num_gates()));
        let start = Instant::now();
        let plan = Arc::new(capture(nl, &self.cfg)?);
        let capture_s = start.elapsed().as_secs_f64();
        capture_span.end();
        self.cache.lock().expect("plan cache poisoned").insert(fp, Arc::clone(&plan));
        Ok((plan, false, capture_s))
    }

    /// Adopts an externally captured (e.g. deserialized) plan into the
    /// cache, keyed by its own fingerprint.
    pub fn adopt(&self, plan: KernelPlan) -> Arc<KernelPlan> {
        let plan = Arc::new(plan);
        self.cache.lock().expect("plan cache poisoned").insert(plan.fingerprint, Arc::clone(&plan));
        plan
    }

    /// Captures (or fetches) the plan for `nl` and replays it on
    /// `inputs`, allocating fresh [`ReplayLanes`]. For allocation-free
    /// repeat runs, hold lanes yourself and call
    /// [`KernelGraph::execute_with_lanes`].
    ///
    /// # Errors
    ///
    /// Propagates capture and replay errors.
    pub fn execute<E: GateEngine>(
        &self,
        engine: &E,
        nl: &Netlist,
        inputs: &[E::Value],
        workers: usize,
    ) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
        let mut lanes = ReplayLanes::new(engine, workers);
        self.execute_with_lanes(engine, nl, inputs, &mut lanes)
    }

    /// Like [`KernelGraph::execute`], but reuses caller-held lanes so
    /// repeat executions touch no fresh buffers.
    ///
    /// # Errors
    ///
    /// Propagates capture and replay errors.
    pub fn execute_with_lanes<E: GateEngine>(
        &self,
        engine: &E,
        nl: &Netlist,
        inputs: &[E::Value],
        lanes: &mut ReplayLanes<E>,
    ) -> Result<(Vec<E::Value>, ExecStats), ExecError> {
        let start = Instant::now();
        let (plan, cached, capture_s) = self.plan_for(nl)?;
        let replay_span = telemetry::span_with("graph", || {
            format!(
                "replay: {} gates, {} batches{}",
                plan.num_gates(),
                plan.batches.len(),
                if cached { " (cached plan)" } else { "" }
            )
        });
        let replay_start = Instant::now();
        let (out, report) = replay(engine, &plan, inputs, lanes)?;
        replay_span.end();
        let mut stats = ExecStats::for_gates(report.gates);
        stats.waves = report.waves;
        stats.batches = report.batches;
        stats.kernel_launches = report.kernel_launches;
        stats.kernels_by_kind = report.kernels_by_kind;
        stats.steals = report.steals;
        stats.luts = report.luts;
        stats.lut_launches = report.lut_launches;
        stats.bootstraps = plan.bootstraps();
        stats.plan_cached = cached;
        stats.capture_s = capture_s;
        stats.replay_s = replay_start.elapsed().as_secs_f64();
        stats.wall_s = start.elapsed().as_secs_f64();
        stats.record_metrics();
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlainEngine;
    use pytfhe_netlist::GateKind;

    fn xor_tree() -> Netlist {
        let mut nl = Netlist::new();
        let ins: Vec<_> = (0..8).map(|_| nl.add_input()).collect();
        let mut layer = ins;
        while layer.len() > 1 {
            layer =
                layer.chunks(2).map(|p| nl.add_gate(GateKind::Xor, p[0], p[1]).unwrap()).collect();
        }
        nl.mark_output(layer[0]).unwrap();
        nl
    }

    #[test]
    fn second_execution_hits_the_plan_cache() {
        let nl = xor_tree();
        let graph = KernelGraph::new();
        let engine = PlainEngine::new();
        let bits = vec![true, false, true, true, false, false, true, false];
        let (out1, s1) = graph.execute(&engine, &nl, &bits, 1).unwrap();
        assert!(!s1.plan_cached, "first run must capture");
        assert!(s1.capture_s >= 0.0);
        let (out2, s2) = graph.execute(&engine, &nl, &bits, 1).unwrap();
        assert!(s2.plan_cached, "second run must reuse the cached plan");
        assert_eq!(s2.capture_s, 0.0);
        assert_eq!(out1, out2);
        assert_eq!(graph.cached_plans(), 1);
    }

    #[test]
    fn adopted_plans_serve_executions() {
        let nl = xor_tree();
        let graph = KernelGraph::new();
        let plan = capture(&nl, graph.config()).unwrap();
        let restored = KernelPlan::from_bytes(&plan.to_bytes()).unwrap();
        graph.adopt(restored);
        let engine = PlainEngine::new();
        let bits = vec![true; 8];
        let (_, stats) = graph.execute(&engine, &nl, &bits, 1).unwrap();
        assert!(stats.plan_cached, "adopted plan must short-circuit capture");
    }
}
