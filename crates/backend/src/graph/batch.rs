//! Wave-to-kernel grouping: turns a topological wave of netlist nodes
//! into same-kind [`GateGroup`]s, the unit a replay dispatches as one
//! batched kernel.

use crate::graph::plan::{GateGroup, GateTask, LutGroup, LutTask, WavePlan};
use pytfhe_netlist::{GateKind, Netlist, Node};
use std::collections::BTreeMap;

/// Groups one wave's gate nodes by gate kind and its fused LUT nodes by
/// `(width, precision, bootstrapping)`, preserving node order within
/// each group. Group order follows the opcode table (gates) and the
/// bucket key (LUTs) so captures are deterministic regardless of
/// netlist construction order. Splitting affine LUTs (width-1
/// constants, buffers, negations) from bootstrapping ones keeps every
/// [`LutGroup`] homogeneous, so a replay picks the batched-PBS or
/// linear path per group.
pub(crate) fn group_wave(nl: &Netlist, wave: &[u32]) -> WavePlan {
    // Bucket by opcode: 16 possible kinds, most waves use a handful.
    let mut buckets: [Vec<GateTask>; 16] = Default::default();
    let mut lut_buckets: BTreeMap<(u8, u8, bool), Vec<LutTask>> = BTreeMap::new();
    for &id in wave {
        match nl.node(pytfhe_netlist::NodeId(id)) {
            Node::Gate { kind, a, b } => {
                buckets[kind.opcode() as usize].push(GateTask { out: id, a: a.0, b: b.0 });
            }
            Node::Lut { spec, ins } => {
                let key = (spec.width, spec.precision, spec.bootstraps() > 0);
                lut_buckets.entry(key).or_default().push(LutTask {
                    out: id,
                    table: spec.table,
                    ins: [ins[0].0, ins[1].0, ins[2].0, ins[3].0],
                });
            }
            Node::Input => {} // inputs are fed by the caller, not evaluated
        }
    }
    let groups = buckets
        .into_iter()
        .enumerate()
        .filter(|(_, tasks)| !tasks.is_empty())
        .map(|(op, tasks)| GateGroup {
            kind: GateKind::from_opcode(op as u8).expect("bucket index is a valid opcode"),
            tasks,
        })
        .collect();
    let lut_groups = lut_buckets
        .into_iter()
        .map(|((width, precision, _), tasks)| LutGroup { width, precision, tasks })
        .collect();
    WavePlan { groups, lut_groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::LevelSchedule;

    #[test]
    fn groups_are_per_kind_and_ordered_by_opcode() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let g1 = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let g2 = nl.add_gate(GateKind::Nand, a, b).unwrap();
        let g3 = nl.add_gate(GateKind::Xor, b, a).unwrap();
        nl.mark_output(g1).unwrap();
        nl.mark_output(g2).unwrap();
        nl.mark_output(g3).unwrap();
        let sched = LevelSchedule::compute(&nl);
        // Wave 0 is constants-only (empty here); the gates sit in wave 1.
        let plan = group_wave(&nl, &sched.waves[1]);
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].kind, GateKind::Nand); // opcode 0x0
        assert_eq!(plan.groups[0].tasks, vec![GateTask { out: g2.0, a: a.0, b: b.0 }]);
        assert_eq!(plan.groups[1].kind, GateKind::Xor);
        assert_eq!(plan.groups[1].tasks.len(), 2);
    }
}
