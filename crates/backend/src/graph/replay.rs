//! Plan replay: executes a captured [`KernelPlan`] against fresh inputs
//! with preallocated per-lane buffers — the execute-many half of the
//! kernel-graph backend.
//!
//! All value and scratch storage lives in [`ReplayLanes`], which is
//! created once and reused across replays. After the first (warming)
//! replay, the hot path performs **zero per-gate buffer allocations**:
//! gate results are staged into a reusable arena by the engine's
//! `*_into` kernels and scattered back by pointer swaps. (Small
//! per-kernel-launch bookkeeping, like the operand-pointer list handed
//! to [`GateEngine::eval_batch`], still comes from the ordinary heap.)

use crate::engine::GateEngine;
use crate::error::ExecError;
use crate::graph::plan::{GateGroup, KernelPlan};
use pytfhe_telemetry as telemetry;

/// Reusable replay storage: the value arena (one slot per netlist
/// node), the kernel staging arena, and one scratch per worker lane.
#[derive(Debug)]
pub struct ReplayLanes<E: GateEngine> {
    values: Vec<E::Value>,
    stage: Vec<E::Value>,
    scratches: Vec<E::Scratch>,
    workers: usize,
}

impl<E: GateEngine> ReplayLanes<E> {
    /// Creates empty lanes for `workers` parallel lanes (clamped to at
    /// least 1). Buffers grow on first use and persist across replays.
    pub fn new(engine: &E, workers: usize) -> Self {
        let workers = workers.max(1);
        let scratches = (0..workers).map(|_| engine.scratch()).collect();
        ReplayLanes { values: Vec::new(), stage: Vec::new(), scratches, workers }
    }

    /// Worker lanes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Grows the arenas to fit `plan` (no-op once warmed up).
    fn warm(&mut self, engine: &E, plan: &KernelPlan) {
        if self.values.len() < plan.num_nodes {
            self.values.resize_with(plan.num_nodes, || engine.constant(false));
        }
        let stage_len = plan.max_group_len();
        if self.stage.len() < stage_len {
            self.stage.resize_with(stage_len, || engine.constant(false));
        }
    }
}

/// Per-replay accounting, merged into [`crate::ExecStats`] by
/// [`crate::KernelGraph::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Gates evaluated.
    pub gates: usize,
    /// Waves executed.
    pub waves: usize,
    /// Sub-graph batches executed.
    pub batches: usize,
    /// Batched kernel launches (one per gate group per worker chunk).
    pub kernel_launches: u64,
    /// Kernel launches per gate kind, indexed by opcode.
    pub kernels_by_kind: [u64; 16],
}

/// Replays `plan` on `inputs`, reusing `lanes` for all storage.
///
/// Bit-exact with [`crate::execute`] on the captured netlist: batching
/// regroups independent gates but every gate still runs the identical
/// kernel on identical operands.
///
/// # Errors
///
/// Returns [`ExecError::InputCountMismatch`] on arity mismatch and
/// [`ExecError::WorkerPanicked`] when a parallel lane dies.
pub fn replay<E: GateEngine>(
    engine: &E,
    plan: &KernelPlan,
    inputs: &[E::Value],
    lanes: &mut ReplayLanes<E>,
) -> Result<(Vec<E::Value>, ReplayReport), ExecError> {
    if inputs.len() != plan.inputs.len() {
        return Err(ExecError::InputCountMismatch {
            expected: plan.inputs.len(),
            got: inputs.len(),
        });
    }
    lanes.warm(engine, plan);
    let mut report = ReplayReport { gates: plan.num_gates(), ..ReplayReport::default() };
    for (&slot, input) in plan.inputs.iter().zip(inputs) {
        lanes.values[slot as usize].clone_from(input);
    }
    for (batch_idx, batch) in plan.batches.iter().enumerate() {
        report.batches += 1;
        let _batch_span = telemetry::span_with("graph", || {
            format!("batch {batch_idx}: {} waves", batch.waves.len())
        });
        for wave in &batch.waves {
            report.waves += 1;
            for group in &wave.groups {
                run_group(engine, group, lanes, &mut report)?;
            }
        }
    }
    let outputs = plan.outputs.iter().map(|&s| lanes.values[s as usize].clone()).collect();
    Ok((outputs, report))
}

/// Dispatches one gate group as batched kernel launches: results are
/// staged into the staging arena (the wave's other groups may still read
/// any slot), then swapped into the value arena.
fn run_group<E: GateEngine>(
    engine: &E,
    group: &GateGroup,
    lanes: &mut ReplayLanes<E>,
    report: &mut ReplayReport,
) -> Result<(), ExecError> {
    let tasks = &group.tasks;
    let stage = &mut lanes.stage[..tasks.len()];
    let launches = if lanes.workers == 1 || tasks.len() == 1 {
        let values = &lanes.values;
        let pairs: Vec<(&E::Value, &E::Value)> =
            tasks.iter().map(|t| (&values[t.a as usize], &values[t.b as usize])).collect();
        engine.eval_batch(group.kind, &pairs, stage, &mut lanes.scratches[0]);
        1
    } else {
        let chunk = tasks.len().div_ceil(lanes.workers);
        let values = &lanes.values;
        std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .chunks(chunk)
                .zip(stage.chunks_mut(chunk))
                .zip(lanes.scratches.iter_mut())
                .map(|((task_chunk, stage_chunk), scratch)| {
                    scope.spawn(move || {
                        let pairs: Vec<(&E::Value, &E::Value)> = task_chunk
                            .iter()
                            .map(|t| (&values[t.a as usize], &values[t.b as usize]))
                            .collect();
                        engine.eval_batch(group.kind, &pairs, stage_chunk, scratch);
                    })
                })
                .collect();
            let n = handles.len() as u64;
            for handle in handles {
                handle.join().map_err(|_| ExecError::WorkerPanicked)?;
            }
            Ok::<u64, ExecError>(n)
        })?
    };
    report.kernel_launches += launches;
    report.kernels_by_kind[group.kind.opcode() as usize] += launches;
    if telemetry::enabled() {
        telemetry::metrics().counter_add(
            &format!("graph_kernel_launches_total{{kind=\"{}\"}}", group.kind),
            launches,
        );
    }
    for (t, staged) in tasks.iter().zip(stage.iter_mut()) {
        std::mem::swap(&mut lanes.values[t.out as usize], staged);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlainEngine;
    use crate::exec::execute;
    use crate::graph::capture::{capture, CaptureConfig};
    use pytfhe_netlist::{GateKind, Netlist};

    fn adder4() -> Netlist {
        let mut nl = Netlist::new();
        let a: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let b: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let mut carry = nl.add_gate(GateKind::Const0, a[0], a[0]).unwrap();
        for i in 0..4 {
            let axb = nl.add_gate(GateKind::Xor, a[i], b[i]).unwrap();
            let sum = nl.add_gate(GateKind::Xor, axb, carry).unwrap();
            let c1 = nl.add_gate(GateKind::And, a[i], b[i]).unwrap();
            let c2 = nl.add_gate(GateKind::And, axb, carry).unwrap();
            carry = nl.add_gate(GateKind::Or, c1, c2).unwrap();
            nl.mark_output(sum).unwrap();
        }
        nl.mark_output(carry).unwrap();
        nl
    }

    #[test]
    fn plain_replay_matches_execute_for_all_adder_inputs() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        let mut lanes = ReplayLanes::new(&engine, 1);
        for x in 0..16u32 {
            for y in 0..16u32 {
                let bits: Vec<bool> = (0..4)
                    .map(|i| x >> i & 1 == 1)
                    .chain((0..4).map(|i| y >> i & 1 == 1))
                    .collect();
                let (want, _) = execute(&engine, &nl, &bits).unwrap();
                let (got, report) = replay(&engine, &plan, &bits, &mut lanes).unwrap();
                assert_eq!(got, want, "{x}+{y}");
                assert_eq!(report.gates, nl.num_gates());
            }
        }
    }

    #[test]
    fn parallel_replay_matches_serial_replay() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: 4 }).unwrap();
        let mut serial = ReplayLanes::new(&engine, 1);
        let mut parallel = ReplayLanes::new(&engine, 4);
        let bits = vec![true, false, true, true, false, true, true, false];
        let (a, ra) = replay(&engine, &plan, &bits, &mut serial).unwrap();
        let (b, rb) = replay(&engine, &plan, &bits, &mut parallel).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra.gates, rb.gates);
        assert_eq!(ra.batches, rb.batches);
        assert!(rb.kernel_launches >= ra.kernel_launches);
    }

    #[test]
    fn replay_rejects_wrong_input_count() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        let mut lanes = ReplayLanes::new(&engine, 1);
        assert!(matches!(
            replay(&engine, &plan, &[true], &mut lanes),
            Err(ExecError::InputCountMismatch { expected: 8, got: 1 })
        ));
    }
}
