//! Plan replay: executes a captured [`KernelPlan`] against fresh inputs
//! with preallocated per-lane buffers — the execute-many half of the
//! kernel-graph backend.
//!
//! All value and scratch storage lives in [`ReplayLanes`], which is
//! created once and reused across replays. After the first (warming)
//! replay, the hot path performs **zero per-gate buffer allocations**:
//! gate results are staged into a reusable arena by the engine's
//! `*_into` kernels and scattered back by pointer swaps. (Small
//! per-kernel-launch bookkeeping, like the operand-pointer list handed
//! to [`GateEngine::eval_batch`], still comes from the ordinary heap.)
//!
//! Wide waves dispatch onto the shared [`WorkerPool`]: every group of
//! the wave is split into per-lane chunks and all chunks are submitted
//! as one run, so lanes steal across group boundaries — one fat AND
//! group no longer idles the workers that finished their XORs. Narrow
//! waves (below [`GateEngine::parallel_grain`]) run inline with a single
//! scratch, and scratch buffers are only allocated for the lanes a
//! replay actually engages.

use crate::engine::GateEngine;
use crate::error::ExecError;
use crate::graph::plan::{KernelPlan, LutTask, WavePlan};
use crate::pool::{Job, SlotCells, WorkerPool};
use pytfhe_netlist::{GateKind, LutSpec};
use pytfhe_telemetry as telemetry;

/// Reusable replay storage: the value arena (one slot per netlist
/// node), the wave staging arena, and scratch buffers for the worker
/// lanes a replay engages (grown lazily: serial replays hold one
/// scratch; a parallel dispatch grows to the lane count, never past
/// it — large-key scratch memory is never allocated unused).
#[derive(Debug)]
pub struct ReplayLanes<E: GateEngine> {
    values: Vec<E::Value>,
    stage: Vec<E::Value>,
    scratches: Vec<E::Scratch>,
    workers: usize,
}

impl<E: GateEngine> ReplayLanes<E> {
    /// Creates empty lanes for `workers` parallel lanes (clamped to at
    /// least 1). Buffers grow on first use and persist across replays.
    pub fn new(engine: &E, workers: usize) -> Self {
        let _ = engine;
        ReplayLanes {
            values: Vec::new(),
            stage: Vec::new(),
            scratches: Vec::new(),
            workers: workers.max(1),
        }
    }

    /// Lanes sized to the global pool's width — the right default when
    /// the caller has no explicit worker count.
    pub fn auto(engine: &E) -> Self {
        ReplayLanes::new(engine, WorkerPool::global().width())
    }

    /// Worker lanes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scratch buffers allocated so far (grows with the widest dispatch
    /// actually executed, bounded by [`ReplayLanes::workers`]).
    pub fn allocated_scratches(&self) -> usize {
        self.scratches.len()
    }

    /// Grows the arenas to fit `plan` (no-op once warmed up).
    fn warm(&mut self, engine: &E, plan: &KernelPlan) {
        if self.values.len() < plan.num_nodes {
            self.values.resize_with(plan.num_nodes, || engine.constant(false));
        }
        // The whole wave is staged before any result scatters back, so
        // the stage arena spans the widest wave, not just the widest
        // group.
        let stage_len = plan.max_wave_len();
        if self.stage.len() < stage_len {
            self.stage.resize_with(stage_len, || engine.constant(false));
        }
    }

    /// Ensures at least `n` scratch buffers exist.
    fn ensure_scratches(&mut self, engine: &E, n: usize) {
        while self.scratches.len() < n {
            self.scratches.push(engine.scratch());
        }
    }
}

/// Per-replay accounting, merged into [`crate::ExecStats`] by
/// [`crate::KernelGraph::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Gates evaluated.
    pub gates: usize,
    /// Waves executed.
    pub waves: usize,
    /// Sub-graph batches executed.
    pub batches: usize,
    /// Batched kernel launches (one per gate group per worker chunk).
    pub kernel_launches: u64,
    /// Kernel launches per gate kind, indexed by opcode.
    pub kernels_by_kind: [u64; 16],
    /// Fused LUT nodes evaluated.
    pub luts: usize,
    /// Batched LUT kernel launches (bootstrapping groups only; affine
    /// groups run linearly and launch nothing).
    pub lut_launches: u64,
    /// Pool tasks executed by a lane other than the one they were
    /// queued on (work-stealing activity across the replay's waves).
    pub steals: u64,
}

/// Replays `plan` on `inputs`, reusing `lanes` for all storage.
///
/// Bit-exact with [`crate::execute`] on the captured netlist: batching
/// regroups independent gates but every gate still runs the identical
/// kernel on identical operands, and chunk boundaries never change
/// per-gate arithmetic — outputs are identical at every worker count.
///
/// # Errors
///
/// Returns [`ExecError::InputCountMismatch`] on arity mismatch and
/// [`ExecError::WorkerPanicked`] when a parallel lane dies.
pub fn replay<E: GateEngine>(
    engine: &E,
    plan: &KernelPlan,
    inputs: &[E::Value],
    lanes: &mut ReplayLanes<E>,
) -> Result<(Vec<E::Value>, ReplayReport), ExecError> {
    if inputs.len() != plan.inputs.len() {
        return Err(ExecError::InputCountMismatch {
            expected: plan.inputs.len(),
            got: inputs.len(),
        });
    }
    lanes.warm(engine, plan);
    let mut report =
        ReplayReport { gates: plan.num_gates(), luts: plan.num_luts(), ..ReplayReport::default() };
    let msg_precision = (plan.message_precision > 0).then_some(plan.message_precision);
    for (&slot, input) in plan.inputs.iter().zip(inputs) {
        lanes.values[slot as usize].clone_from(input);
    }
    for (batch_idx, batch) in plan.batches.iter().enumerate() {
        report.batches += 1;
        let _batch_span = telemetry::span_with("graph", || {
            format!("batch {batch_idx}: {} waves", batch.waves.len())
        });
        for wave in &batch.waves {
            report.waves += 1;
            run_wave(engine, wave, msg_precision, lanes, &mut report)?;
        }
    }
    let outputs = plan.outputs.iter().map(|&s| lanes.values[s as usize].clone()).collect();
    Ok((outputs, report))
}

/// The four operand references of a LUT task (unused slots alias the
/// first, mirroring the netlist's padding).
fn lut_refs<'v, V>(values: &'v [V], t: &LutTask) -> [&'v V; 4] {
    [
        &values[t.ins[0] as usize],
        &values[t.ins[1] as usize],
        &values[t.ins[2] as usize],
        &values[t.ins[3] as usize],
    ]
}

/// Executes one wave: every group's results are staged (the wave's other
/// groups may still read any slot), then swapped into the value arena.
/// Wide waves split each group into per-lane chunks and run all chunks
/// of all groups as a single pool dispatch with intra-wave stealing;
/// narrow waves run inline on one scratch.
///
/// When the plan carries a message precision (LUT-lowered netlists),
/// constant gate groups are filled via [`GateEngine::constant_message`]
/// so constants land on the same encoding the packed LUT windows
/// expect. Bootstrapping LUT groups dispatch through
/// [`GateEngine::eval_lut_batch`]; affine groups (width-1 tables) run
/// linearly through [`GateEngine::eval_lut_into`].
fn run_wave<E: GateEngine>(
    engine: &E,
    wave: &WavePlan,
    msg_precision: Option<u8>,
    lanes: &mut ReplayLanes<E>,
    report: &mut ReplayReport,
) -> Result<(), ExecError> {
    let total = wave.num_tasks();
    if total == 0 {
        return Ok(());
    }
    let workers = lanes.workers;
    let grain = engine.parallel_grain().max(2);
    if workers == 1 || total < grain {
        lanes.ensure_scratches(engine, 1);
        let values = &lanes.values;
        let mut staged = 0;
        for group in &wave.groups {
            let stage = &mut lanes.stage[staged..staged + group.tasks.len()];
            staged += group.tasks.len();
            if let Some(p) = msg_precision.filter(|_| group.kind.is_const()) {
                let bit = group.kind == GateKind::Const1;
                for out in stage.iter_mut() {
                    *out = engine.constant_message(bit, p);
                }
                record_launches(report, group.kind, 1);
                continue;
            }
            let pairs: Vec<(&E::Value, &E::Value)> = group
                .tasks
                .iter()
                .map(|t| (&values[t.a as usize], &values[t.b as usize]))
                .collect();
            engine.eval_batch(group.kind, &pairs, stage, &mut lanes.scratches[0]);
            record_launches(report, group.kind, 1);
        }
        for group in &wave.lut_groups {
            let stage = &mut lanes.stage[staged..staged + group.tasks.len()];
            staged += group.tasks.len();
            if group.is_affine() {
                for (t, out) in group.tasks.iter().zip(stage.iter_mut()) {
                    let ins = lut_refs(values, t);
                    engine.eval_lut_into(group.spec_of(t), &ins, &mut lanes.scratches[0], out);
                }
            } else {
                let items: Vec<(u16, [&E::Value; 4])> =
                    group.tasks.iter().map(|t| (t.table, lut_refs(values, t))).collect();
                engine.eval_lut_batch(
                    group.width,
                    group.precision,
                    &items,
                    stage,
                    &mut lanes.scratches[0],
                );
                report.lut_launches += 1;
            }
        }
    } else {
        lanes.ensure_scratches(engine, workers);
        let ReplayLanes { values, stage, scratches, .. } = lanes;
        let values = &*values;
        // Chunks target one per lane across the whole wave; group
        // boundaries may add a few more, and stealing evens them out.
        let chunk = total.div_ceil(workers).max(1);
        let scratch_cells = SlotCells::new(std::mem::take(scratches));
        let cells = &scratch_cells;
        let mut jobs: Vec<Job> = Vec::new();
        let mut stage_rest: &mut [E::Value] = &mut stage[..total];
        for group in &wave.groups {
            let (group_stage, rest) = stage_rest.split_at_mut(group.tasks.len());
            stage_rest = rest;
            let kind = group.kind;
            if let Some(p) = msg_precision.filter(|_| kind.is_const()) {
                // Constants are allocation-free encodes: filling them
                // inline is cheaper than a pool round-trip.
                let bit = kind == GateKind::Const1;
                for out in group_stage.iter_mut() {
                    *out = engine.constant_message(bit, p);
                }
                record_launches(report, kind, 1);
                continue;
            }
            let n_chunks = group.tasks.len().div_ceil(chunk) as u64;
            record_launches(report, kind, n_chunks);
            for (task_chunk, stage_chunk) in
                group.tasks.chunks(chunk).zip(group_stage.chunks_mut(chunk))
            {
                jobs.push(Box::new(move |lane: usize| {
                    // SAFETY: the pool runs at most one task per lane at
                    // a time, and `lane < workers == cells.len()`.
                    let scratch = unsafe { cells.slot(lane) };
                    let pairs: Vec<(&E::Value, &E::Value)> = task_chunk
                        .iter()
                        .map(|t| (&values[t.a as usize], &values[t.b as usize]))
                        .collect();
                    engine.eval_batch(kind, &pairs, stage_chunk, scratch);
                }));
            }
        }
        for group in &wave.lut_groups {
            let (group_stage, rest) = stage_rest.split_at_mut(group.tasks.len());
            stage_rest = rest;
            let (width, precision) = (group.width, group.precision);
            let affine = group.is_affine();
            if !affine {
                report.lut_launches += group.tasks.len().div_ceil(chunk) as u64;
            }
            for (task_chunk, stage_chunk) in
                group.tasks.chunks(chunk).zip(group_stage.chunks_mut(chunk))
            {
                jobs.push(Box::new(move |lane: usize| {
                    // SAFETY: the pool runs at most one task per lane at
                    // a time, and `lane < workers == cells.len()`.
                    let scratch = unsafe { cells.slot(lane) };
                    if affine {
                        for (t, out) in task_chunk.iter().zip(stage_chunk.iter_mut()) {
                            let ins = lut_refs(values, t);
                            let spec = LutSpec::new(width, precision, t.table);
                            engine.eval_lut_into(spec, &ins, scratch, out);
                        }
                    } else {
                        let items: Vec<(u16, [&E::Value; 4])> =
                            task_chunk.iter().map(|t| (t.table, lut_refs(values, t))).collect();
                        engine.eval_lut_batch(width, precision, &items, stage_chunk, scratch);
                    }
                }));
            }
        }
        let run = WorkerPool::global().run(workers, jobs);
        *scratches = scratch_cells.into_inner();
        report.steals += run?.steals;
    }
    let mut staged = 0;
    for group in &wave.groups {
        for t in &group.tasks {
            std::mem::swap(&mut lanes.values[t.out as usize], &mut lanes.stage[staged]);
            staged += 1;
        }
    }
    for group in &wave.lut_groups {
        for t in &group.tasks {
            std::mem::swap(&mut lanes.values[t.out as usize], &mut lanes.stage[staged]);
            staged += 1;
        }
    }
    Ok(())
}

/// Bumps the per-kind and total launch counters.
fn record_launches(report: &mut ReplayReport, kind: pytfhe_netlist::GateKind, launches: u64) {
    report.kernel_launches += launches;
    report.kernels_by_kind[kind.opcode() as usize] += launches;
    if telemetry::enabled() {
        telemetry::metrics()
            .counter_add(&format!("graph_kernel_launches_total{{kind=\"{kind}\"}}"), launches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlainEngine;
    use crate::exec::execute;
    use crate::graph::capture::{capture, CaptureConfig};
    use pytfhe_netlist::{GateKind, Netlist};

    fn adder4() -> Netlist {
        let mut nl = Netlist::new();
        let a: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let b: Vec<_> = (0..4).map(|_| nl.add_input()).collect();
        let mut carry = nl.add_gate(GateKind::Const0, a[0], a[0]).unwrap();
        for i in 0..4 {
            let axb = nl.add_gate(GateKind::Xor, a[i], b[i]).unwrap();
            let sum = nl.add_gate(GateKind::Xor, axb, carry).unwrap();
            let c1 = nl.add_gate(GateKind::And, a[i], b[i]).unwrap();
            let c2 = nl.add_gate(GateKind::And, axb, carry).unwrap();
            carry = nl.add_gate(GateKind::Or, c1, c2).unwrap();
            nl.mark_output(sum).unwrap();
        }
        nl.mark_output(carry).unwrap();
        nl
    }

    #[test]
    fn plain_replay_matches_execute_for_all_adder_inputs() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        let mut lanes = ReplayLanes::new(&engine, 1);
        for x in 0..16u32 {
            for y in 0..16u32 {
                let bits: Vec<bool> = (0..4)
                    .map(|i| x >> i & 1 == 1)
                    .chain((0..4).map(|i| y >> i & 1 == 1))
                    .collect();
                let (want, _) = execute(&engine, &nl, &bits).unwrap();
                let (got, report) = replay(&engine, &plan, &bits, &mut lanes).unwrap();
                assert_eq!(got, want, "{x}+{y}");
                assert_eq!(report.gates, nl.num_gates());
            }
        }
    }

    #[test]
    fn parallel_replay_matches_serial_replay() {
        let nl = adder4();
        // Grain 1 forces even these tiny plaintext waves through the
        // pooled dispatch so the parallel path is actually exercised.
        let engine = PlainEngine::with_parallel_grain(1);
        let plan = capture(&nl, &CaptureConfig { batch_cut_nodes: 4 }).unwrap();
        let mut serial = ReplayLanes::new(&engine, 1);
        let mut parallel = ReplayLanes::new(&engine, 4);
        let bits = vec![true, false, true, true, false, true, true, false];
        let (a, ra) = replay(&engine, &plan, &bits, &mut serial).unwrap();
        let (b, rb) = replay(&engine, &plan, &bits, &mut parallel).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra.gates, rb.gates);
        assert_eq!(ra.batches, rb.batches);
        assert!(rb.kernel_launches >= ra.kernel_launches);
    }

    #[test]
    fn scratches_grow_lazily_to_the_engaged_lanes() {
        let nl = adder4();
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        let bits = vec![true; 8];

        // Serial replay allocates exactly one scratch even when the
        // lanes were sized for more workers.
        let engine = PlainEngine::new(); // default grain: waves stay serial
        let mut lanes = ReplayLanes::new(&engine, 8);
        assert_eq!(lanes.allocated_scratches(), 0, "construction allocates nothing");
        replay(&engine, &plan, &bits, &mut lanes).unwrap();
        assert_eq!(lanes.allocated_scratches(), 1, "serial replay needs one scratch");

        // A parallel dispatch grows to the lane width, never past it.
        let engine = PlainEngine::with_parallel_grain(1);
        let mut lanes = ReplayLanes::new(&engine, 3);
        replay(&engine, &plan, &bits, &mut lanes).unwrap();
        assert!(
            lanes.allocated_scratches() <= 3,
            "scratches bounded by workers, got {}",
            lanes.allocated_scratches()
        );
    }

    #[test]
    fn replay_rejects_wrong_input_count() {
        let nl = adder4();
        let engine = PlainEngine::new();
        let plan = capture(&nl, &CaptureConfig::default()).unwrap();
        let mut lanes = ReplayLanes::new(&engine, 1);
        assert!(matches!(
            replay(&engine, &plan, &[true], &mut lanes),
            Err(ExecError::InputCountMismatch { expected: 8, got: 1 })
        ));
    }
}
