//! The captured execution plan: a netlist flattened into sub-graph
//! batches of waves of same-kind gate groups, plus a byte-level codec so
//! plans can be shipped to (or cached by) a remote evaluator exactly
//! like the paper's serialized CUDA graphs.

use crate::error::ExecError;
use pytfhe_netlist::GateKind;
use pytfhe_wire as wire;
use pytfhe_wire::Vintage;

/// One gate instance inside a batched kernel: evaluate the group's kind
/// on value slots `a` and `b`, writing slot `out`. Unary gates read only
/// `a`; constants read neither (both operands still carry valid slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateTask {
    /// Destination value slot (the netlist node id).
    pub out: u32,
    /// First operand slot.
    pub a: u32,
    /// Second operand slot.
    pub b: u32,
}

/// All gates of one kind within one wave — replayed as a single batched
/// kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateGroup {
    /// The gate function shared by every task.
    pub kind: GateKind,
    /// The independent gate instances.
    pub tasks: Vec<GateTask>,
}

/// One topological wave: groups are mutually independent (they only read
/// slots written by earlier waves), so a replay may run them — and the
/// tasks within them — in any order or in parallel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WavePlan {
    /// Same-kind kernel groups.
    pub groups: Vec<GateGroup>,
}

impl WavePlan {
    /// Gates across all groups.
    pub fn num_gates(&self) -> usize {
        self.groups.iter().map(|g| g.tasks.len()).sum()
    }

    /// Gates that cost a bootstrap under the simulator's accounting
    /// (everything but constants and buffers), i.e. the count the
    /// batch-cut rule accumulates.
    pub fn bootstrapped(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| counts_toward_batch(g.kind))
            .map(|g| g.tasks.len() as u64)
            .sum()
    }
}

/// Whether `kind` counts toward the batch-cut budget. This mirrors
/// [`crate::sim::WaveProfile::bootstrapped`] exactly — constants and
/// buffers are free; everything else (including `Not`, which the device
/// model schedules even though it is bootstrap-free) is counted — so the
/// real backend's cuts land where [`crate::sim::GpuPolicy::CudaGraphs`]
/// predicts them.
pub fn counts_toward_batch(kind: GateKind) -> bool {
    !kind.is_const() && kind != GateKind::Buf
}

/// A contiguous run of waves executed as one batch — the unit the
/// CUDA-Graphs backend defines as a single device graph (paper
/// Figure 9).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubGraph {
    /// The member waves in topological order.
    pub waves: Vec<WavePlan>,
}

impl SubGraph {
    /// Bootstrapped gates in the batch.
    pub fn bootstrapped(&self) -> u64 {
        self.waves.iter().map(WavePlan::bootstrapped).sum()
    }
}

/// A complete captured plan for one netlist. Replaying it against fresh
/// inputs reproduces `execute` bit for bit without touching the netlist
/// again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlan {
    /// Fingerprint of the source netlist
    /// ([`crate::checkpoint::netlist_fingerprint`]); replays refuse a
    /// mismatched program and the plan cache keys on it.
    pub fingerprint: u64,
    /// Value slots the replay arena must hold (netlist node count).
    pub num_nodes: usize,
    /// Slots fed by the primary inputs, in program order.
    pub inputs: Vec<u32>,
    /// Slots read out as primary outputs, in program order.
    pub outputs: Vec<u32>,
    /// The sub-graph batches in execution order.
    pub batches: Vec<SubGraph>,
}

impl KernelPlan {
    /// Total gates across all batches.
    pub fn num_gates(&self) -> usize {
        self.batches.iter().map(|b| b.waves.iter().map(WavePlan::num_gates).sum::<usize>()).sum()
    }

    /// Scheduling waves across all batches.
    pub fn num_waves(&self) -> usize {
        self.batches.iter().map(|b| b.waves.len()).sum()
    }

    /// The largest single gate group, i.e. the staging arena a replay
    /// needs.
    pub fn max_group_len(&self) -> usize {
        self.batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.groups)
            .map(|g| g.tasks.len())
            .max()
            .unwrap_or(0)
    }

    /// The widest wave (gates across all of its groups) — the staging
    /// arena a whole-wave parallel replay needs, since every group of a
    /// wave is staged before any result is scattered back.
    pub fn max_wave_len(&self) -> usize {
        self.batches.iter().flat_map(|b| &b.waves).map(WavePlan::num_gates).max().unwrap_or(0)
    }
}

/// Legacy pre-envelope magic; read-only through the compat shim.
const PLAN_MAGIC: &[u8; 4] = b"PTKG";
/// Legacy pre-envelope version byte.
const PLAN_VERSION: u8 = 1;
/// Current plan body version inside the wire envelope. The body layout
/// is byte-identical to legacy v1 after its magic+version prefix; the
/// envelope adds the integrity and versioning the raw layout lacked.
const PLAN_WIRE_VERSION: u16 = 2;

impl KernelPlan {
    /// Serializes the plan into a checksummed
    /// [`wire envelope`](pytfhe_wire): magic, format id, version,
    /// payload length, CRC32C over header and payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        wire::encode(wire::Format::KernelPlan, PLAN_WIRE_VERSION, &self.body_bytes())
    }

    /// The plan body shared by the enveloped and legacy layouts.
    fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.num_nodes as u64);
        put_u32_list(&mut out, &self.inputs);
        put_u32_list(&mut out, &self.outputs);
        put_u32(&mut out, self.batches.len() as u32);
        for batch in &self.batches {
            put_u32(&mut out, batch.waves.len() as u32);
            for wave in &batch.waves {
                put_u32(&mut out, wave.groups.len() as u32);
                for group in &wave.groups {
                    out.push(group.kind.opcode());
                    put_u32(&mut out, group.tasks.len() as u32);
                    for t in &group.tasks {
                        put_u32(&mut out, t.out);
                        put_u32(&mut out, t.a);
                        put_u32(&mut out, t.b);
                    }
                }
            }
        }
        out
    }

    /// Decodes a plan produced by [`KernelPlan::to_bytes`] — either the
    /// current wire envelope or, through the compat shim, the legacy
    /// pre-envelope `PTKG` v1 layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Wire`] when the envelope fails validation
    /// (checksum mismatch, truncation, version skew) and
    /// [`ExecError::BadPlan`] on body-level corruption: wrong legacy
    /// magic or version, truncation, unknown opcodes, or slot ids
    /// outside the declared arena.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ExecError> {
        Self::from_bytes_tagged(bytes).map(|(plan, _)| plan)
    }

    /// [`KernelPlan::from_bytes`] plus the [`Vintage`] of the accepted
    /// layout, so stores can count and transparently re-persist legacy
    /// artifacts in the current envelope.
    ///
    /// # Errors
    ///
    /// Same as [`KernelPlan::from_bytes`].
    pub fn from_bytes_tagged(bytes: &[u8]) -> Result<(Self, Vintage), ExecError> {
        if wire::is_enveloped(bytes) {
            let env = wire::decode_expecting(
                bytes,
                wire::Format::KernelPlan,
                PLAN_WIRE_VERSION..=PLAN_WIRE_VERSION,
            )?;
            return Ok((Self::parse_body(env.payload)?, Vintage::Current));
        }
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != PLAN_MAGIC {
            return Err(bad("wrong magic"));
        }
        if r.u8()? != PLAN_VERSION {
            return Err(bad("unsupported version"));
        }
        Ok((Self::parse_body(&bytes[5..])?, Vintage::Legacy))
    }

    /// Parses the shared body layout.
    fn parse_body(bytes: &[u8]) -> Result<Self, ExecError> {
        let mut r = Reader { bytes, pos: 0 };
        let fingerprint = r.u64()?;
        let num_nodes = usize::try_from(r.u64()?).map_err(|_| bad("node count overflow"))?;
        let inputs = r.u32_list()?;
        let outputs = r.u32_list()?;
        let num_batches = r.u32()? as usize;
        let mut batches = Vec::with_capacity(num_batches.min(1024));
        for _ in 0..num_batches {
            let num_waves = r.u32()? as usize;
            let mut waves = Vec::with_capacity(num_waves.min(1024));
            for _ in 0..num_waves {
                let num_groups = r.u32()? as usize;
                let mut groups = Vec::with_capacity(num_groups.min(1024));
                for _ in 0..num_groups {
                    let kind = GateKind::from_opcode(r.u8()?).map_err(|_| bad("unknown opcode"))?;
                    let num_tasks = r.u32()? as usize;
                    let mut tasks = Vec::with_capacity(num_tasks.min(65_536));
                    for _ in 0..num_tasks {
                        tasks.push(GateTask { out: r.u32()?, a: r.u32()?, b: r.u32()? });
                    }
                    groups.push(GateGroup { kind, tasks });
                }
                waves.push(WavePlan { groups });
            }
            batches.push(SubGraph { waves });
        }
        if r.pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        let plan = KernelPlan { fingerprint, num_nodes, inputs, outputs, batches };
        plan.check_slots()?;
        Ok(plan)
    }

    /// Verifies every referenced slot fits the declared arena.
    fn check_slots(&self) -> Result<(), ExecError> {
        let n = self.num_nodes as u64;
        let ok = |slot: u32| u64::from(slot) < n;
        let wires = self.inputs.iter().chain(&self.outputs).all(|&s| ok(s));
        let gates = self
            .batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.groups)
            .flat_map(|g| &g.tasks)
            .all(|t| ok(t.out) && ok(t.a) && ok(t.b));
        if wires && gates {
            Ok(())
        } else {
            Err(bad("slot out of range"))
        }
    }
}

fn bad(reason: &'static str) -> ExecError {
    ExecError::BadPlan { reason }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_list(out: &mut Vec<u8>, list: &[u32]) {
    put_u32(out, list.len() as u32);
    for &v in list {
        put_u32(out, v);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExecError> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("length overflow"))?;
        if end > self.bytes.len() {
            return Err(bad("truncated"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ExecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ExecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ExecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u32_list(&mut self) -> Result<Vec<u32>, ExecError> {
        let n = self.u32()? as usize;
        let mut list = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            list.push(self.u32()?);
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> KernelPlan {
        KernelPlan {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            num_nodes: 7,
            inputs: vec![0, 1],
            outputs: vec![6, 5],
            batches: vec![
                SubGraph {
                    waves: vec![WavePlan {
                        groups: vec![
                            GateGroup {
                                kind: GateKind::Nand,
                                tasks: vec![
                                    GateTask { out: 2, a: 0, b: 1 },
                                    GateTask { out: 3, a: 1, b: 0 },
                                ],
                            },
                            GateGroup {
                                kind: GateKind::Not,
                                tasks: vec![GateTask { out: 4, a: 0, b: 0 }],
                            },
                        ],
                    }],
                },
                SubGraph {
                    waves: vec![WavePlan {
                        groups: vec![GateGroup {
                            kind: GateKind::Xor,
                            tasks: vec![
                                GateTask { out: 5, a: 2, b: 3 },
                                GateTask { out: 6, a: 3, b: 4 },
                            ],
                        }],
                    }],
                },
            ],
        }
    }

    /// Re-encodes a plan in the legacy pre-envelope `PTKG` v1 layout,
    /// as old deployments wrote it.
    fn legacy_plan_bytes(plan: &KernelPlan) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(PLAN_MAGIC);
        out.push(PLAN_VERSION);
        out.extend_from_slice(&plan.body_bytes());
        out
    }

    #[test]
    fn round_trips_through_bytes() {
        let plan = sample_plan();
        let bytes = plan.to_bytes();
        let (back, vintage) = KernelPlan::from_bytes_tagged(&bytes).unwrap();
        assert_eq!(back, plan);
        assert_eq!(vintage, Vintage::Current);
    }

    #[test]
    fn legacy_layout_loads_through_the_compat_shim() {
        let plan = sample_plan();
        let legacy = legacy_plan_bytes(&plan);
        let (back, vintage) = KernelPlan::from_bytes_tagged(&legacy).unwrap();
        assert_eq!(back, plan);
        assert_eq!(vintage, Vintage::Legacy);
    }

    #[test]
    fn rejects_corruption() {
        let plan = sample_plan();
        let good = plan.to_bytes();

        // Envelope-level failures: magic, truncation, trailing bytes,
        // and any payload bit flip (caught by the CRC32C).
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(KernelPlan::from_bytes(&wrong_magic), Err(ExecError::BadPlan { .. })));

        assert!(matches!(
            KernelPlan::from_bytes(&good[..good.len() - 1]),
            Err(ExecError::Wire(pytfhe_wire::WireError::LengthMismatch { .. }))
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            KernelPlan::from_bytes(&trailing),
            Err(ExecError::Wire(pytfhe_wire::WireError::LengthMismatch { .. }))
        ));

        for i in (0..good.len()).step_by(3) {
            let mut flipped = good.clone();
            flipped[i] ^= 0x20;
            assert!(KernelPlan::from_bytes(&flipped).is_err(), "flip at byte {i} accepted");
        }

        // Legacy-shim failures keep their precise reasons.
        let legacy = legacy_plan_bytes(&plan);
        let mut wrong_version = legacy.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            KernelPlan::from_bytes(&wrong_version),
            Err(ExecError::BadPlan { reason: "unsupported version" })
        ));
        assert!(matches!(
            KernelPlan::from_bytes(&legacy[..legacy.len() - 1]),
            Err(ExecError::BadPlan { reason: "truncated" })
        ));
        let mut legacy_trailing = legacy;
        legacy_trailing.push(0);
        assert!(matches!(
            KernelPlan::from_bytes(&legacy_trailing),
            Err(ExecError::BadPlan { reason: "trailing bytes" })
        ));
    }

    #[test]
    fn rejects_out_of_range_slots() {
        let mut plan = sample_plan();
        plan.batches[1].waves[0].groups[0].tasks[0].a = 99;
        assert!(matches!(
            KernelPlan::from_bytes(&plan.to_bytes()),
            Err(ExecError::BadPlan { reason: "slot out of range" })
        ));
    }

    #[test]
    fn accounting_helpers_agree() {
        let plan = sample_plan();
        assert_eq!(plan.num_gates(), 5);
        assert_eq!(plan.num_waves(), 2);
        assert_eq!(plan.max_group_len(), 2);
        // Not counts toward the cut budget; Buf and constants would not.
        assert_eq!(plan.batches[0].bootstrapped(), 3);
        assert!(counts_toward_batch(GateKind::Not));
        assert!(!counts_toward_batch(GateKind::Buf));
        assert!(!counts_toward_batch(GateKind::Const0));
    }
}
