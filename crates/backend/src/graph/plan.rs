//! The captured execution plan: a netlist flattened into sub-graph
//! batches of waves of same-kind gate groups, plus a byte-level codec so
//! plans can be shipped to (or cached by) a remote evaluator exactly
//! like the paper's serialized CUDA graphs.

use crate::error::ExecError;
use pytfhe_netlist::{GateKind, LutSpec};
use pytfhe_wire as wire;
use pytfhe_wire::Vintage;

/// One gate instance inside a batched kernel: evaluate the group's kind
/// on value slots `a` and `b`, writing slot `out`. Unary gates read only
/// `a`; constants read neither (both operands still carry valid slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateTask {
    /// Destination value slot (the netlist node id).
    pub out: u32,
    /// First operand slot.
    pub a: u32,
    /// Second operand slot.
    pub b: u32,
}

/// All gates of one kind within one wave — replayed as a single batched
/// kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateGroup {
    /// The gate function shared by every task.
    pub kind: GateKind,
    /// The independent gate instances.
    pub tasks: Vec<GateTask>,
}

/// One fused LUT instance inside a batched programmable-bootstrap
/// kernel: look up `table` on the message-encoded leaves in `ins` (only
/// the group width's prefix is read; unused slots repeat a valid slot,
/// exactly as [`pytfhe_netlist::Node::Lut`] pads them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutTask {
    /// Destination value slot (the netlist node id).
    pub out: u32,
    /// Truth table: bit `j` is the output for leaf pattern `j`.
    pub table: u16,
    /// Leaf value slots, LSB-first.
    pub ins: [u32; 4],
}

/// All fused LUTs of one width and precision within one wave — replayed
/// as a single batched programmable-bootstrap launch. Capture keeps
/// groups *homogeneous*: either every task bootstraps or every task is
/// affine (width-1 constants, buffers, negations), so a replay picks the
/// batched-PBS or linear path per group, never per task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutGroup {
    /// Leaves read by every task.
    pub width: u8,
    /// Message precision (bits) of the wire encoding.
    pub precision: u8,
    /// The independent LUT instances.
    pub tasks: Vec<LutTask>,
}

impl LutGroup {
    /// The [`LutSpec`] of one task in this group.
    pub fn spec_of(&self, task: &LutTask) -> LutSpec {
        LutSpec::new(self.width, self.precision, task.table)
    }

    /// Programmable bootstraps this group launches.
    pub fn bootstraps(&self) -> u64 {
        self.tasks.iter().map(|t| self.spec_of(t).bootstraps()).sum()
    }

    /// Whether every task is affine (evaluated without a bootstrap).
    pub fn is_affine(&self) -> bool {
        self.bootstraps() == 0
    }
}

/// One topological wave: groups are mutually independent (they only read
/// slots written by earlier waves), so a replay may run them — and the
/// tasks within them — in any order or in parallel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WavePlan {
    /// Same-kind kernel groups.
    pub groups: Vec<GateGroup>,
    /// Same-width fused-LUT kernel groups (empty on boolean-decomposed
    /// programs).
    pub lut_groups: Vec<LutGroup>,
}

impl WavePlan {
    /// Gates across all groups (fused LUTs not included; see
    /// [`WavePlan::num_luts`]).
    pub fn num_gates(&self) -> usize {
        self.groups.iter().map(|g| g.tasks.len()).sum()
    }

    /// Fused LUT tasks across all LUT groups.
    pub fn num_luts(&self) -> usize {
        self.lut_groups.iter().map(|g| g.tasks.len()).sum()
    }

    /// Every task the wave stages: gates plus fused LUTs.
    pub fn num_tasks(&self) -> usize {
        self.num_gates() + self.num_luts()
    }

    /// Gates that cost a bootstrap under the simulator's accounting
    /// (everything but constants and buffers), i.e. the count the
    /// batch-cut rule accumulates, plus the programmable bootstraps of
    /// the wave's fused LUTs.
    pub fn bootstrapped(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| counts_toward_batch(g.kind))
            .map(|g| g.tasks.len() as u64)
            .sum::<u64>()
            + self.lut_groups.iter().map(LutGroup::bootstraps).sum::<u64>()
    }
}

/// Whether `kind` counts toward the batch-cut budget. This mirrors
/// [`crate::sim::WaveProfile::bootstrapped`] exactly — constants and
/// buffers are free; everything else (including `Not`, which the device
/// model schedules even though it is bootstrap-free) is counted — so the
/// real backend's cuts land where [`crate::sim::GpuPolicy::CudaGraphs`]
/// predicts them.
pub fn counts_toward_batch(kind: GateKind) -> bool {
    !kind.is_const() && kind != GateKind::Buf
}

/// A contiguous run of waves executed as one batch — the unit the
/// CUDA-Graphs backend defines as a single device graph (paper
/// Figure 9).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubGraph {
    /// The member waves in topological order.
    pub waves: Vec<WavePlan>,
}

impl SubGraph {
    /// Bootstrapped gates in the batch.
    pub fn bootstrapped(&self) -> u64 {
        self.waves.iter().map(WavePlan::bootstrapped).sum()
    }
}

/// A complete captured plan for one netlist. Replaying it against fresh
/// inputs reproduces `execute` bit for bit without touching the netlist
/// again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlan {
    /// Fingerprint of the source netlist
    /// ([`crate::checkpoint::netlist_fingerprint`]); replays refuse a
    /// mismatched program and the plan cache keys on it.
    pub fingerprint: u64,
    /// Value slots the replay arena must hold (netlist node count).
    pub num_nodes: usize,
    /// Slots fed by the primary inputs, in program order.
    pub inputs: Vec<u32>,
    /// Slots read out as primary outputs, in program order.
    pub outputs: Vec<u32>,
    /// The sub-graph batches in execution order.
    pub batches: Vec<SubGraph>,
    /// Message precision (bits) of every wire on a LUT-lowered program,
    /// or 0 for boolean-decomposed programs. Nonzero precision switches
    /// constants to the message encoding and marks the plan for the v3
    /// wire layout.
    pub message_precision: u8,
}

impl KernelPlan {
    /// Total gates across all batches.
    pub fn num_gates(&self) -> usize {
        self.batches.iter().map(|b| b.waves.iter().map(WavePlan::num_gates).sum::<usize>()).sum()
    }

    /// Total fused LUT tasks across all batches.
    pub fn num_luts(&self) -> usize {
        self.batches.iter().map(|b| b.waves.iter().map(WavePlan::num_luts).sum::<usize>()).sum()
    }

    /// Whether any wave carries fused LUT groups.
    pub fn has_luts(&self) -> bool {
        self.batches.iter().flat_map(|b| &b.waves).any(|w| !w.lut_groups.is_empty())
    }

    /// Bootstraps a replay executes: binary gates plus non-affine LUT
    /// cones (`Not`, `Buf`, constants, and affine LUTs are linear).
    pub fn bootstraps(&self) -> u64 {
        self.batches
            .iter()
            .flat_map(|b| &b.waves)
            .map(|w| {
                w.groups
                    .iter()
                    .filter(|g| !g.kind.is_const() && !g.kind.is_unary())
                    .map(|g| g.tasks.len() as u64)
                    .sum::<u64>()
                    + w.lut_groups.iter().map(LutGroup::bootstraps).sum::<u64>()
            })
            .sum()
    }

    /// Scheduling waves across all batches.
    pub fn num_waves(&self) -> usize {
        self.batches.iter().map(|b| b.waves.len()).sum()
    }

    /// The largest single gate group, i.e. the staging arena a replay
    /// needs.
    pub fn max_group_len(&self) -> usize {
        self.batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.groups)
            .map(|g| g.tasks.len())
            .max()
            .unwrap_or(0)
    }

    /// The widest wave (gate *and* LUT tasks across all of its groups) —
    /// the staging arena a whole-wave parallel replay needs, since every
    /// group of a wave is staged before any result is scattered back.
    pub fn max_wave_len(&self) -> usize {
        self.batches.iter().flat_map(|b| &b.waves).map(WavePlan::num_tasks).max().unwrap_or(0)
    }
}

/// Legacy pre-envelope magic; read-only through the compat shim.
const PLAN_MAGIC: &[u8; 4] = b"PTKG";
/// Legacy pre-envelope version byte.
const PLAN_VERSION: u8 = 1;
/// Plan body version inside the wire envelope for boolean-decomposed
/// plans. The body layout is byte-identical to legacy v1 after its
/// magic+version prefix; the envelope adds the integrity and versioning
/// the raw layout lacked.
const PLAN_WIRE_VERSION: u16 = 2;
/// Plan body version for LUT-lowered plans: v2 plus a message-precision
/// byte after the node count and a fused-LUT group section per wave.
/// LUT-free plans keep encoding as v2, byte for byte, so existing
/// cached artifacts and golden fixtures are untouched.
const PLAN_WIRE_VERSION_LUT: u16 = 3;

impl KernelPlan {
    /// Serializes the plan into a checksummed
    /// [`wire envelope`](pytfhe_wire): magic, format id, version,
    /// payload length, CRC32C over header and payload. Plans without
    /// fused LUTs use the v2 body; LUT-lowered plans the v3 body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let with_luts = self.has_luts() || self.message_precision != 0;
        let version = if with_luts { PLAN_WIRE_VERSION_LUT } else { PLAN_WIRE_VERSION };
        wire::encode(wire::Format::KernelPlan, version, &self.body_bytes(with_luts))
    }

    /// The plan body shared by the enveloped and legacy layouts
    /// (`with_luts` selects the v3 extensions).
    fn body_bytes(&self, with_luts: bool) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.num_nodes as u64);
        if with_luts {
            out.push(self.message_precision);
        }
        put_u32_list(&mut out, &self.inputs);
        put_u32_list(&mut out, &self.outputs);
        put_u32(&mut out, self.batches.len() as u32);
        for batch in &self.batches {
            put_u32(&mut out, batch.waves.len() as u32);
            for wave in &batch.waves {
                put_u32(&mut out, wave.groups.len() as u32);
                for group in &wave.groups {
                    out.push(group.kind.opcode());
                    put_u32(&mut out, group.tasks.len() as u32);
                    for t in &group.tasks {
                        put_u32(&mut out, t.out);
                        put_u32(&mut out, t.a);
                        put_u32(&mut out, t.b);
                    }
                }
                if with_luts {
                    put_u32(&mut out, wave.lut_groups.len() as u32);
                    for group in &wave.lut_groups {
                        out.push(group.width);
                        out.push(group.precision);
                        put_u32(&mut out, group.tasks.len() as u32);
                        for t in &group.tasks {
                            put_u32(&mut out, t.out);
                            out.extend_from_slice(&t.table.to_le_bytes());
                            for slot in t.ins {
                                put_u32(&mut out, slot);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Decodes a plan produced by [`KernelPlan::to_bytes`] — either the
    /// current wire envelope or, through the compat shim, the legacy
    /// pre-envelope `PTKG` v1 layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Wire`] when the envelope fails validation
    /// (checksum mismatch, truncation, version skew) and
    /// [`ExecError::BadPlan`] on body-level corruption: wrong legacy
    /// magic or version, truncation, unknown opcodes, or slot ids
    /// outside the declared arena.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ExecError> {
        Self::from_bytes_tagged(bytes).map(|(plan, _)| plan)
    }

    /// [`KernelPlan::from_bytes`] plus the [`Vintage`] of the accepted
    /// layout, so stores can count and transparently re-persist legacy
    /// artifacts in the current envelope.
    ///
    /// # Errors
    ///
    /// Same as [`KernelPlan::from_bytes`].
    pub fn from_bytes_tagged(bytes: &[u8]) -> Result<(Self, Vintage), ExecError> {
        if wire::is_enveloped(bytes) {
            let env = wire::decode_expecting(
                bytes,
                wire::Format::KernelPlan,
                PLAN_WIRE_VERSION..=PLAN_WIRE_VERSION_LUT,
            )?;
            let with_luts = env.version == PLAN_WIRE_VERSION_LUT;
            return Ok((Self::parse_body(env.payload, with_luts)?, Vintage::Current));
        }
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != PLAN_MAGIC {
            return Err(bad("wrong magic"));
        }
        if r.u8()? != PLAN_VERSION {
            return Err(bad("unsupported version"));
        }
        Ok((Self::parse_body(&bytes[5..], false)?, Vintage::Legacy))
    }

    /// Parses the shared body layout (`with_luts` for the v3 extensions).
    fn parse_body(bytes: &[u8], with_luts: bool) -> Result<Self, ExecError> {
        let mut r = Reader { bytes, pos: 0 };
        let fingerprint = r.u64()?;
        let num_nodes = usize::try_from(r.u64()?).map_err(|_| bad("node count overflow"))?;
        let message_precision = if with_luts { r.u8()? } else { 0 };
        if message_precision > 4 {
            return Err(bad("message precision out of range"));
        }
        let inputs = r.u32_list()?;
        let outputs = r.u32_list()?;
        let num_batches = r.u32()? as usize;
        let mut batches = Vec::with_capacity(num_batches.min(1024));
        for _ in 0..num_batches {
            let num_waves = r.u32()? as usize;
            let mut waves = Vec::with_capacity(num_waves.min(1024));
            for _ in 0..num_waves {
                let num_groups = r.u32()? as usize;
                let mut groups = Vec::with_capacity(num_groups.min(1024));
                for _ in 0..num_groups {
                    let kind = GateKind::from_opcode(r.u8()?).map_err(|_| bad("unknown opcode"))?;
                    let num_tasks = r.u32()? as usize;
                    let mut tasks = Vec::with_capacity(num_tasks.min(65_536));
                    for _ in 0..num_tasks {
                        tasks.push(GateTask { out: r.u32()?, a: r.u32()?, b: r.u32()? });
                    }
                    groups.push(GateGroup { kind, tasks });
                }
                let mut lut_groups = Vec::new();
                if with_luts {
                    let num_lut_groups = r.u32()? as usize;
                    lut_groups.reserve(num_lut_groups.min(1024));
                    for _ in 0..num_lut_groups {
                        let width = r.u8()?;
                        let precision = r.u8()?;
                        if !(1..=4).contains(&width) || precision < width || precision > 4 {
                            return Err(bad("bad LUT group shape"));
                        }
                        let num_tasks = r.u32()? as usize;
                        let mut tasks = Vec::with_capacity(num_tasks.min(65_536));
                        for _ in 0..num_tasks {
                            let out = r.u32()?;
                            let table = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
                            let ins = [r.u32()?, r.u32()?, r.u32()?, r.u32()?];
                            tasks.push(LutTask { out, table, ins });
                        }
                        lut_groups.push(LutGroup { width, precision, tasks });
                    }
                }
                waves.push(WavePlan { groups, lut_groups });
            }
            batches.push(SubGraph { waves });
        }
        if r.pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        let plan =
            KernelPlan { fingerprint, num_nodes, inputs, outputs, batches, message_precision };
        plan.check_slots()?;
        Ok(plan)
    }

    /// Verifies every referenced slot fits the declared arena.
    fn check_slots(&self) -> Result<(), ExecError> {
        let n = self.num_nodes as u64;
        let ok = |slot: u32| u64::from(slot) < n;
        let wires = self.inputs.iter().chain(&self.outputs).all(|&s| ok(s));
        let gates = self
            .batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.groups)
            .flat_map(|g| &g.tasks)
            .all(|t| ok(t.out) && ok(t.a) && ok(t.b));
        let luts = self
            .batches
            .iter()
            .flat_map(|b| &b.waves)
            .flat_map(|w| &w.lut_groups)
            .flat_map(|g| &g.tasks)
            .all(|t| ok(t.out) && t.ins.iter().all(|&s| ok(s)));
        if wires && gates && luts {
            Ok(())
        } else {
            Err(bad("slot out of range"))
        }
    }
}

fn bad(reason: &'static str) -> ExecError {
    ExecError::BadPlan { reason }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_list(out: &mut Vec<u8>, list: &[u32]) {
    put_u32(out, list.len() as u32);
    for &v in list {
        put_u32(out, v);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExecError> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("length overflow"))?;
        if end > self.bytes.len() {
            return Err(bad("truncated"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ExecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ExecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ExecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u32_list(&mut self) -> Result<Vec<u32>, ExecError> {
        let n = self.u32()? as usize;
        let mut list = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            list.push(self.u32()?);
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> KernelPlan {
        KernelPlan {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            num_nodes: 7,
            inputs: vec![0, 1],
            outputs: vec![6, 5],
            batches: vec![
                SubGraph {
                    waves: vec![WavePlan {
                        groups: vec![
                            GateGroup {
                                kind: GateKind::Nand,
                                tasks: vec![
                                    GateTask { out: 2, a: 0, b: 1 },
                                    GateTask { out: 3, a: 1, b: 0 },
                                ],
                            },
                            GateGroup {
                                kind: GateKind::Not,
                                tasks: vec![GateTask { out: 4, a: 0, b: 0 }],
                            },
                        ],
                        lut_groups: vec![],
                    }],
                },
                SubGraph {
                    waves: vec![WavePlan {
                        groups: vec![GateGroup {
                            kind: GateKind::Xor,
                            tasks: vec![
                                GateTask { out: 5, a: 2, b: 3 },
                                GateTask { out: 6, a: 3, b: 4 },
                            ],
                        }],
                        lut_groups: vec![],
                    }],
                },
            ],
            message_precision: 0,
        }
    }

    fn sample_lut_plan() -> KernelPlan {
        KernelPlan {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            num_nodes: 6,
            inputs: vec![0, 1, 2],
            outputs: vec![5],
            batches: vec![SubGraph {
                waves: vec![
                    WavePlan {
                        groups: vec![],
                        lut_groups: vec![LutGroup {
                            width: 3,
                            precision: 3,
                            tasks: vec![
                                LutTask { out: 3, table: 0b1001_0110, ins: [0, 1, 2, 0] },
                                LutTask { out: 4, table: 0b1110_1000, ins: [0, 1, 2, 0] },
                            ],
                        }],
                    },
                    WavePlan {
                        groups: vec![],
                        lut_groups: vec![LutGroup {
                            width: 1,
                            precision: 3,
                            tasks: vec![LutTask { out: 5, table: 0b01, ins: [3, 3, 3, 3] }],
                        }],
                    },
                ],
            }],
            message_precision: 3,
        }
    }

    /// Re-encodes a plan in the legacy pre-envelope `PTKG` v1 layout,
    /// as old deployments wrote it.
    fn legacy_plan_bytes(plan: &KernelPlan) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(PLAN_MAGIC);
        out.push(PLAN_VERSION);
        out.extend_from_slice(&plan.body_bytes(false));
        out
    }

    #[test]
    fn round_trips_through_bytes() {
        let plan = sample_plan();
        let bytes = plan.to_bytes();
        let (back, vintage) = KernelPlan::from_bytes_tagged(&bytes).unwrap();
        assert_eq!(back, plan);
        assert_eq!(vintage, Vintage::Current);
    }

    #[test]
    fn lut_free_plans_stay_on_the_v2_layout() {
        // A LUT-free plan's bytes must not change when the encoder
        // learns the v3 extensions: cached artifacts written before the
        // LUT era stay valid, and v2-only readers keep working.
        let plan = sample_plan();
        let bytes = plan.to_bytes();
        let env = pytfhe_wire::decode(&bytes).unwrap();
        assert_eq!(env.version, PLAN_WIRE_VERSION);
    }

    #[test]
    fn lut_plans_round_trip_on_the_v3_layout() {
        let plan = sample_lut_plan();
        assert!(plan.has_luts());
        let bytes = plan.to_bytes();
        let env = pytfhe_wire::decode(&bytes).unwrap();
        assert_eq!(env.version, PLAN_WIRE_VERSION_LUT);
        let (back, vintage) = KernelPlan::from_bytes_tagged(&bytes).unwrap();
        assert_eq!(back, plan);
        assert_eq!(vintage, Vintage::Current);
    }

    #[test]
    fn lut_accounting_distinguishes_affine_cones() {
        let plan = sample_lut_plan();
        assert_eq!(plan.num_luts(), 3);
        // Two width-3 cones bootstrap; the width-1 negation is affine.
        assert_eq!(plan.bootstraps(), 2);
        let wave1 = &plan.batches[0].waves[1];
        assert!(wave1.lut_groups[0].is_affine());
        assert_eq!(wave1.bootstrapped(), 0);
    }

    #[test]
    fn rejects_malformed_lut_groups() {
        let mut plan = sample_lut_plan();
        plan.batches[0].waves[0].lut_groups[0].tasks[0].ins[1] = 99;
        assert!(matches!(
            KernelPlan::from_bytes(&plan.to_bytes()),
            Err(ExecError::BadPlan { reason: "slot out of range" })
        ));
        let mut plan = sample_lut_plan();
        plan.batches[0].waves[0].lut_groups[0].width = 5;
        assert!(matches!(
            KernelPlan::from_bytes(&plan.to_bytes()),
            Err(ExecError::BadPlan { reason: "bad LUT group shape" })
        ));
    }

    #[test]
    fn legacy_layout_loads_through_the_compat_shim() {
        let plan = sample_plan();
        let legacy = legacy_plan_bytes(&plan);
        let (back, vintage) = KernelPlan::from_bytes_tagged(&legacy).unwrap();
        assert_eq!(back, plan);
        assert_eq!(vintage, Vintage::Legacy);
    }

    #[test]
    fn rejects_corruption() {
        let plan = sample_plan();
        let good = plan.to_bytes();

        // Envelope-level failures: magic, truncation, trailing bytes,
        // and any payload bit flip (caught by the CRC32C).
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(KernelPlan::from_bytes(&wrong_magic), Err(ExecError::BadPlan { .. })));

        assert!(matches!(
            KernelPlan::from_bytes(&good[..good.len() - 1]),
            Err(ExecError::Wire(pytfhe_wire::WireError::LengthMismatch { .. }))
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            KernelPlan::from_bytes(&trailing),
            Err(ExecError::Wire(pytfhe_wire::WireError::LengthMismatch { .. }))
        ));

        for i in (0..good.len()).step_by(3) {
            let mut flipped = good.clone();
            flipped[i] ^= 0x20;
            assert!(KernelPlan::from_bytes(&flipped).is_err(), "flip at byte {i} accepted");
        }

        // Legacy-shim failures keep their precise reasons.
        let legacy = legacy_plan_bytes(&plan);
        let mut wrong_version = legacy.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            KernelPlan::from_bytes(&wrong_version),
            Err(ExecError::BadPlan { reason: "unsupported version" })
        ));
        assert!(matches!(
            KernelPlan::from_bytes(&legacy[..legacy.len() - 1]),
            Err(ExecError::BadPlan { reason: "truncated" })
        ));
        let mut legacy_trailing = legacy;
        legacy_trailing.push(0);
        assert!(matches!(
            KernelPlan::from_bytes(&legacy_trailing),
            Err(ExecError::BadPlan { reason: "trailing bytes" })
        ));
    }

    #[test]
    fn rejects_out_of_range_slots() {
        let mut plan = sample_plan();
        plan.batches[1].waves[0].groups[0].tasks[0].a = 99;
        assert!(matches!(
            KernelPlan::from_bytes(&plan.to_bytes()),
            Err(ExecError::BadPlan { reason: "slot out of range" })
        ));
    }

    #[test]
    fn accounting_helpers_agree() {
        let plan = sample_plan();
        assert_eq!(plan.num_gates(), 5);
        assert_eq!(plan.num_waves(), 2);
        assert_eq!(plan.max_group_len(), 2);
        // Not counts toward the cut budget; Buf and constants would not.
        assert_eq!(plan.batches[0].bootstrapped(), 3);
        assert!(counts_toward_batch(GateKind::Not));
        assert!(!counts_toward_batch(GateKind::Buf));
        assert!(!counts_toward_batch(GateKind::Const0));
    }
}
