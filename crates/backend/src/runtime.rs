//! Direct homomorphic integer evaluation — an interpreter-style runtime
//! API over the gate engines.
//!
//! The compiled path (netlist → binary → executor) is PyTFHE's main
//! road; this module is the on-ramp for ad-hoc server-side computation:
//! arithmetic on encrypted words evaluated gate by gate, without
//! building a circuit first. It is generic over [`GateEngine`], so every
//! operation is validated cheaply against plaintext semantics
//! ([`crate::PlainEngine`]) and then runs unchanged on ciphertexts
//! ([`crate::TfheEngine`]).
//!
//! The gate recipes mirror `pytfhe-hdl`'s generators (ripple-carry
//! adders, Baugh–Wooley multiplication, borrow-based comparison), so the
//! two paths produce identical results bit for bit.

use crate::engine::GateEngine;
use pytfhe_netlist::GateKind;

/// A little-endian bundle of engine values — the runtime twin of
/// `pytfhe_hdl::Word`.
#[derive(Debug, Clone)]
pub struct RtWord<V> {
    bits: Vec<V>,
}

impl<V: Clone> RtWord<V> {
    /// Wraps bit values (LSB first).
    pub fn from_bits(bits: Vec<V>) -> Self {
        RtWord { bits }
    }

    /// The bit width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[V] {
        &self.bits
    }

    /// Consumes the word, returning its bits.
    pub fn into_bits(self) -> Vec<V> {
        self.bits
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    pub fn msb(&self) -> &V {
        self.bits.last().expect("msb of empty word")
    }
}

/// An evaluator: an engine plus its scratch buffers, exposing word-level
/// homomorphic operations.
#[derive(Debug)]
pub struct Evaluator<'e, E: GateEngine> {
    engine: &'e E,
    scratch: E::Scratch,
}

impl<'e, E: GateEngine> Evaluator<'e, E> {
    /// Creates an evaluator over an engine.
    pub fn new(engine: &'e E) -> Self {
        Evaluator { scratch: engine.scratch(), engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &'e E {
        self.engine
    }

    #[inline]
    fn gate(&mut self, kind: GateKind, a: &E::Value, b: &E::Value) -> E::Value {
        self.engine.eval(kind, a, b, &mut self.scratch)
    }

    /// The engine's constant bit.
    pub fn constant_bit(&self, bit: bool) -> E::Value {
        self.engine.constant(bit)
    }

    /// A constant word (two's complement of `value`).
    pub fn constant(&self, value: i64, width: usize) -> RtWord<E::Value> {
        RtWord::from_bits(
            (0..width).map(|i| self.engine.constant((value >> i.min(63)) & 1 == 1)).collect(),
        )
    }

    fn full_adder(&mut self, a: &E::Value, b: &E::Value, cin: &E::Value) -> (E::Value, E::Value) {
        let axb = self.gate(GateKind::Xor, a, b);
        let sum = self.gate(GateKind::Xor, &axb, cin);
        let ab = self.gate(GateKind::And, a, b);
        let c_axb = self.gate(GateKind::And, &axb, cin);
        let carry = self.gate(GateKind::Or, &ab, &c_axb);
        (sum, carry)
    }

    fn add_with_carry(
        &mut self,
        a: &RtWord<E::Value>,
        b: &RtWord<E::Value>,
        cin: E::Value,
    ) -> (RtWord<E::Value>, E::Value) {
        assert_eq!(a.width(), b.width(), "runtime add: width mismatch");
        let mut carry = cin;
        let mut bits = Vec::with_capacity(a.width());
        for (x, y) in a.bits().iter().zip(b.bits()) {
            let (s, c) = self.full_adder(x, y, &carry);
            bits.push(s);
            carry = c;
        }
        (RtWord::from_bits(bits), carry)
    }

    /// Wrapping addition.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> RtWord<E::Value> {
        let zero = self.constant_bit(false);
        self.add_with_carry(a, b, zero).0
    }

    /// Wrapping subtraction `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> RtWord<E::Value> {
        let nb = self.not_word(b);
        let one = self.constant_bit(true);
        self.add_with_carry(a, &nb, one).0
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: &RtWord<E::Value>) -> RtWord<E::Value> {
        let zero = self.constant(0, a.width());
        self.sub(&zero, a)
    }

    /// Bitwise NOT.
    pub fn not_word(&mut self, a: &RtWord<E::Value>) -> RtWord<E::Value> {
        RtWord::from_bits(a.bits().iter().map(|x| self.gate(GateKind::Not, x, x)).collect())
    }

    /// Unsigned multiplication, `a.width() + b.width()` bits (schoolbook).
    pub fn mul_unsigned(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> RtWord<E::Value> {
        let (wa, wb) = (a.width(), b.width());
        let mut acc = self.constant(0, wa + wb);
        for j in 0..wb {
            let bj = &b.bits()[j];
            let mut row: Vec<E::Value> = (0..j).map(|_| self.constant_bit(false)).collect();
            for i in 0..wa {
                row.push(self.gate(GateKind::And, &a.bits()[i], bj));
            }
            row.resize(wa + wb, self.constant_bit(false));
            acc = self.add(&acc, &RtWord::from_bits(row));
        }
        acc
    }

    /// Equality comparison.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> E::Value {
        assert_eq!(a.width(), b.width(), "runtime eq: width mismatch");
        let mut acc = self.constant_bit(true);
        for (x, y) in a.bits().iter().zip(b.bits()) {
            let same = self.gate(GateKind::Xnor, x, y);
            acc = self.gate(GateKind::And, &acc, &same);
        }
        acc
    }

    /// Unsigned `a < b` via the subtractor borrow.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn lt_unsigned(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> E::Value {
        let nb = self.not_word(b);
        let one = self.constant_bit(true);
        let (_, no_borrow) = self.add_with_carry(a, &nb, one);
        self.gate(GateKind::Not, &no_borrow, &no_borrow)
    }

    /// Signed `a < b` (flip sign bits, compare unsigned).
    ///
    /// # Panics
    ///
    /// Panics if widths differ or the words are empty.
    pub fn lt_signed(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> E::Value {
        assert!(!a.is_empty(), "lt_signed on empty word");
        let w = a.width();
        let mut af = a.bits().to_vec();
        let mut bf = b.bits().to_vec();
        af[w - 1] = self.gate(GateKind::Not, &af[w - 1], &af[w - 1]);
        bf[w - 1] = self.gate(GateKind::Not, &bf[w - 1], &bf[w - 1]);
        self.lt_unsigned(&RtWord::from_bits(af), &RtWord::from_bits(bf))
    }

    /// Bitwise select `s ? a : b` per bit (`b ^ (s & (a ^ b))`).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn select(
        &mut self,
        s: &E::Value,
        a: &RtWord<E::Value>,
        b: &RtWord<E::Value>,
    ) -> RtWord<E::Value> {
        assert_eq!(a.width(), b.width(), "runtime select: width mismatch");
        let bits = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(x, y)| {
                let axb = self.gate(GateKind::Xor, x, y);
                let masked = self.gate(GateKind::And, s, &axb);
                self.gate(GateKind::Xor, y, &masked)
            })
            .collect();
        RtWord::from_bits(bits)
    }

    /// `max(a, b)` as signed integers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn max_signed(&mut self, a: &RtWord<E::Value>, b: &RtWord<E::Value>) -> RtWord<E::Value> {
        let lt = self.lt_signed(a, b);
        self.select(&lt, b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PlainEngine, TfheEngine};
    use pytfhe_tfhe::{ClientKey, Params, SecureRng};

    fn plain_word(bits: u64, w: usize) -> RtWord<bool> {
        RtWord::from_bits((0..w).map(|i| (bits >> i) & 1 == 1).collect())
    }

    fn as_u64(word: &RtWord<bool>) -> u64 {
        word.bits().iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn plain_arithmetic_exhaustive_4bit() {
        let engine = PlainEngine::new();
        let mut ev = Evaluator::new(&engine);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let a = plain_word(x, 4);
                let b = plain_word(y, 4);
                assert_eq!(as_u64(&ev.add(&a, &b)), (x + y) % 16, "{x}+{y}");
                assert_eq!(as_u64(&ev.sub(&a, &b)), (16 + x - y) % 16, "{x}-{y}");
                assert_eq!(as_u64(&ev.mul_unsigned(&a, &b)), x * y, "{x}*{y}");
                assert_eq!(ev.eq(&a, &b), x == y, "{x}=={y}");
                assert_eq!(ev.lt_unsigned(&a, &b), x < y, "{x}<{y}");
                let (sx, sy) = ((x as i64 ^ 8) - 8, (y as i64 ^ 8) - 8);
                assert_eq!(ev.lt_signed(&a, &b), sx < sy, "signed {sx}<{sy}");
                assert_eq!(
                    as_u64(&ev.max_signed(&a, &b)) as i64,
                    (sx.max(sy)) & 15,
                    "max {sx} {sy}"
                );
            }
        }
    }

    #[test]
    fn select_and_neg_plain() {
        let engine = PlainEngine::new();
        let mut ev = Evaluator::new(&engine);
        let a = plain_word(0b1010, 4);
        let b = plain_word(0b0101, 4);
        assert_eq!(as_u64(&ev.select(&true, &a, &b)), 0b1010);
        assert_eq!(as_u64(&ev.select(&false, &a, &b)), 0b0101);
        assert_eq!(as_u64(&ev.neg(&a)) as i64, (-(0b1010i64)) & 15);
    }

    #[test]
    fn encrypted_arithmetic_matches_plain() {
        let mut rng = SecureRng::seed_from_u64(314);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let engine = TfheEngine::new(&server);
        let mut ev = Evaluator::new(&engine);
        let enc = |v: u64, w: usize, c: &ClientKey, rng: &mut SecureRng| {
            RtWord::from_bits((0..w).map(|i| c.encrypt_bit((v >> i) & 1 == 1, rng)).collect())
        };
        let dec = |word: &RtWord<pytfhe_tfhe::LweCiphertext>, c: &ClientKey| {
            word.bits()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, ct)| acc | (u64::from(c.decrypt_bit(ct)) << i))
        };
        let (x, y) = (11u64, 6u64);
        let a = enc(x, 4, &client, &mut rng);
        let b = enc(y, 4, &client, &mut rng);
        assert_eq!(dec(&ev.add(&a, &b), &client), (x + y) % 16);
        assert_eq!(dec(&ev.sub(&a, &b), &client), (16 + x - y) % 16);
        assert_eq!(dec(&ev.mul_unsigned(&a, &b), &client), x * y);
        assert!(!client.decrypt_bit(&ev.eq(&a, &b)));
        assert!(!client.decrypt_bit(&ev.lt_unsigned(&a, &b)));
        let m = ev.max_signed(&a, &b);
        // 11 as signed 4-bit is -5; 6 stays 6; max = 6.
        assert_eq!(dec(&m, &client), 6);
    }
}
