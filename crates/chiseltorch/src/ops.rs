//! Tensor primitive operations — the right-hand column of Table I of the
//! paper: `matmul`, `dot`, comparisons, reductions, `argmax`/`argmin`,
//! elementwise arithmetic, `max`/`min`.
//!
//! With these primitives "users may also implement their own neural
//! network layers that are not yet available as pre-built modules" —
//! the self-attention layer in [`crate::nn::SelfAttention`] is built
//! entirely from `reshape`, `transpose`, `matmul` and the elementwise ops
//! here, exactly as the paper suggests.

use crate::error::TorchError;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, DType, Value, Word};

fn check_same_shape(a: &Tensor, b: &Tensor, op: &'static str) -> Result<(), TorchError> {
    if a.shape() != b.shape() {
        return Err(TorchError::ShapeMismatch {
            expected: format!("{:?}", a.shape()),
            got: b.shape().to_vec(),
            op,
        });
    }
    Ok(())
}

/// Applies a fallible binary element op across two same-shaped tensors.
fn zip_elementwise(
    c: &mut Circuit,
    a: &Tensor,
    b: &Tensor,
    op: &'static str,
    mut f: impl FnMut(&mut Circuit, &Value, &Value) -> Result<Value, pytfhe_hdl::HdlError>,
) -> Result<Tensor, TorchError> {
    check_same_shape(a, b, op)?;
    let data = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| f(c, x, y))
        .collect::<Result<Vec<_>, _>>()?;
    Tensor::from_values(a.shape(), data)
}

/// Elementwise addition (`+`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn add(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "+", Circuit::v_add)
}

/// Elementwise subtraction (`-`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn sub(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "-", Circuit::v_sub)
}

/// Elementwise multiplication (`*`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn mul(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "*", Circuit::v_mul)
}

/// Elementwise division (`/`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn div(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "/", Circuit::v_div)
}

/// Elementwise maximum (`max`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn max(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "max", Circuit::v_max)
}

/// Elementwise minimum (`min`).
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn min(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    zip_elementwise(c, a, b, "min", Circuit::v_min)
}

/// The comparison operators of Table I. Results are `UInt(1)` tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Elementwise comparison producing a `UInt(1)` mask tensor.
///
/// # Errors
///
/// Returns a shape or dtype mismatch error.
pub fn cmp(c: &mut Circuit, op: CmpOp, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    check_same_shape(a, b, "cmp")?;
    let data = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| {
            let bit = match op {
                CmpOp::Eq => c.v_eq(x, y)?,
                CmpOp::Ne => {
                    let e = c.v_eq(x, y)?;
                    c.not(e)
                }
                CmpOp::Lt => c.v_lt(x, y)?,
                CmpOp::Gt => c.v_lt(y, x)?,
                CmpOp::Le => {
                    let gt = c.v_lt(y, x)?;
                    c.not(gt)
                }
                CmpOp::Ge => {
                    let lt = c.v_lt(x, y)?;
                    c.not(lt)
                }
            };
            Ok(Value::new(Word::from_bits(vec![bit]), DType::UInt(1)))
        })
        .collect::<Result<Vec<_>, TorchError>>()?;
    Tensor::from_values(a.shape(), data)
}

/// Sum reduction over all elements (balanced tree).
///
/// # Errors
///
/// Propagates dtype errors from the element adder.
pub fn sum(c: &mut Circuit, a: &Tensor) -> Result<Value, TorchError> {
    sum_values(c, a.values())
}

/// Sums a slice of values with a balanced tree (log depth → more
/// wavefront parallelism for the backends).
///
/// # Errors
///
/// Propagates dtype errors from the element adder.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn sum_values(c: &mut Circuit, values: &[Value]) -> Result<Value, TorchError> {
    assert!(!values.is_empty(), "sum of empty tensor");
    let mut layer: Vec<Value> = values.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.v_add(&pair[0], &pair[1])?);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    Ok(layer.pop().expect("nonempty"))
}

/// Mean of all elements: `sum / len`, divided exactly for fractional
/// types (multiply by the reciprocal constant) and truncating for
/// integers.
///
/// # Errors
///
/// Propagates dtype errors from the element adder.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn mean(c: &mut Circuit, a: &Tensor) -> Result<Value, TorchError> {
    let total = sum(c, a)?;
    let n = a.len();
    match total.dtype {
        DType::UInt(_) | DType::SInt(_) => {
            let k = Value::constant(c, n as f64, total.dtype);
            Ok(c.v_div(&total, &k)?)
        }
        DType::Fixed { .. } | DType::Float { .. } => {
            let inv = Value::constant(c, 1.0 / n as f64, total.dtype);
            Ok(c.v_mul(&total, &inv)?)
        }
    }
}

/// Product reduction over all elements.
///
/// # Errors
///
/// Propagates dtype errors from the element multiplier.
///
/// # Panics
///
/// Panics if the tensor is empty.
pub fn prod(c: &mut Circuit, a: &Tensor) -> Result<Value, TorchError> {
    let mut layer: Vec<Value> = a.values().to_vec();
    assert!(!layer.is_empty(), "prod of empty tensor");
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.v_mul(&pair[0], &pair[1])?);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    Ok(layer.pop().expect("nonempty"))
}

/// Dot product of two rank-1 tensors (Table I's `dot`).
///
/// # Errors
///
/// Returns a shape mismatch error for non-vectors or differing lengths.
pub fn dot(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Value, TorchError> {
    if a.shape().len() != 1 || b.shape().len() != 1 {
        return Err(TorchError::ShapeMismatch {
            expected: "rank-1 tensors".into(),
            got: if a.shape().len() == 1 { b.shape().to_vec() } else { a.shape().to_vec() },
            op: "dot",
        });
    }
    let products = mul(c, a, b)?;
    sum(c, &products)
}

/// Matrix multiplication of rank-2 tensors (Table I's `matmul`):
/// `[m, k] x [k, n] -> [m, n]`.
///
/// # Errors
///
/// Returns a shape mismatch error when inner dimensions disagree.
pub fn matmul(c: &mut Circuit, a: &Tensor, b: &Tensor) -> Result<Tensor, TorchError> {
    let ([m, ka], [kb, n]) = (a.shape(), b.shape()) else {
        return Err(TorchError::ShapeMismatch {
            expected: "rank-2 tensors".into(),
            got: if a.shape().len() == 2 { b.shape().to_vec() } else { a.shape().to_vec() },
            op: "matmul",
        });
    };
    let (m, ka, kb, n) = (*m, *ka, *kb, *n);
    if ka != kb {
        return Err(TorchError::ShapeMismatch {
            expected: format!("inner dim {ka}"),
            got: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let mut terms = Vec::with_capacity(ka);
            for k in 0..ka {
                terms.push(c.v_mul(a.at(&[i, k]), b.at(&[k, j]))?);
            }
            out.push(sum_values(c, &terms)?);
        }
    }
    Tensor::from_values(&[m, n], out)
}

/// Global argmax (Table I's `argmax`): returns the flat index as a
/// `UInt(ceil(log2(len)))` value.
///
/// # Errors
///
/// Propagates dtype errors from the comparators.
pub fn argmax(c: &mut Circuit, a: &Tensor) -> Result<Value, TorchError> {
    let (_, idx) = c.v_argmax(a.values())?;
    let w = idx.width();
    Ok(Value::new(idx, DType::UInt(w)))
}

/// Global argmin (Table I's `argmin`).
///
/// # Errors
///
/// Propagates dtype errors from the comparators.
pub fn argmin(c: &mut Circuit, a: &Tensor) -> Result<Value, TorchError> {
    let (_, idx) = c.v_argmin(a.values())?;
    let w = idx.width();
    Ok(Value::new(idx, DType::UInt(w)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::PlainTensor;
    use pytfhe_netlist::Netlist;

    const DT: DType = DType::Fixed { width: 12, frac: 4 };

    /// Builds a circuit over two input tensors and returns the netlist.
    fn build2(
        shape_a: &[usize],
        shape_b: &[usize],
        f: impl FnOnce(&mut Circuit, &Tensor, &Tensor) -> Tensor,
    ) -> Netlist {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", shape_a, DT);
        let b = Tensor::input(&mut c, "b", shape_b, DT);
        let out = f(&mut c, &a, &b);
        out.output(&mut c, "out");
        c.finish().unwrap()
    }

    fn encode_tensor(vals: &[f64]) -> Vec<bool> {
        vals.iter().flat_map(|&v| DT.encode_f64(v)).collect()
    }

    fn decode_tensor(bits: &[bool]) -> Vec<f64> {
        bits.chunks(DT.width()).map(|ch| DT.decode_f64(ch)).collect()
    }

    #[test]
    fn elementwise_ops() {
        let nl = build2(&[4], &[4], |c, a, b| {
            let s = add(c, a, b).unwrap();
            let d = sub(c, &s, b).unwrap();
            mul(c, &d, b).unwrap()
        });
        let a = [1.5, -2.0, 0.25, 3.0];
        let b = [2.0, 0.5, -4.0, 1.25];
        let mut input = encode_tensor(&a);
        input.extend(encode_tensor(&b));
        let out = decode_tensor(&nl.eval_plain(&input));
        for i in 0..4 {
            assert!((out[i] - a[i] * b[i]).abs() <= 2.0 * DT.resolution(), "{i}");
        }
    }

    #[test]
    fn division_elementwise() {
        let nl = build2(&[2], &[2], |c, a, b| div(c, a, b).unwrap());
        let mut input = encode_tensor(&[3.0, -8.0]);
        input.extend(encode_tensor(&[2.0, 4.0]));
        let out = decode_tensor(&nl.eval_plain(&input));
        assert!((out[0] - 1.5).abs() <= DT.resolution());
        assert!((out[1] + 2.0).abs() <= DT.resolution());
    }

    #[test]
    fn comparisons() {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", &[3], DT);
        let b = Tensor::input(&mut c, "b", &[3], DT);
        let masks = [
            cmp(&mut c, CmpOp::Lt, &a, &b).unwrap(),
            cmp(&mut c, CmpOp::Ge, &a, &b).unwrap(),
            cmp(&mut c, CmpOp::Eq, &a, &b).unwrap(),
            cmp(&mut c, CmpOp::Ne, &a, &b).unwrap(),
            cmp(&mut c, CmpOp::Gt, &a, &b).unwrap(),
            cmp(&mut c, CmpOp::Le, &a, &b).unwrap(),
        ];
        for (i, m) in masks.iter().enumerate() {
            m.output(&mut c, format!("m{i}"));
        }
        let nl = c.finish().unwrap();
        let av = [1.0, 2.0, -3.0];
        let bv = [1.0, -2.0, 4.0];
        let mut input = encode_tensor(&av);
        input.extend(encode_tensor(&bv));
        let out = nl.eval_plain(&input);
        for i in 0..3 {
            assert_eq!(out[i], av[i] < bv[i], "lt {i}");
            assert_eq!(out[3 + i], av[i] >= bv[i], "ge {i}");
            assert_eq!(out[6 + i], av[i] == bv[i], "eq {i}");
            assert_eq!(out[9 + i], av[i] != bv[i], "ne {i}");
            assert_eq!(out[12 + i], av[i] > bv[i], "gt {i}");
            assert_eq!(out[15 + i], av[i] <= bv[i], "le {i}");
        }
    }

    #[test]
    fn mean_matches_average() {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", &[4], DT);
        let m = mean(&mut c, &a).unwrap();
        c.output_word("m", &m.word);
        let nl = c.finish().unwrap();
        let vals = [1.0, 2.0, 3.0, 6.0];
        let out = decode_tensor(&nl.eval_plain(&encode_tensor(&vals)));
        assert!((out[0] - 3.0).abs() <= 2.0 * DT.resolution(), "mean {out:?}");
    }

    #[test]
    fn dot_and_sum_and_prod() {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", &[4], DT);
        let b = Tensor::input(&mut c, "b", &[4], DT);
        let d = dot(&mut c, &a, &b).unwrap();
        let s = sum(&mut c, &a).unwrap();
        let p = prod(&mut c, &a).unwrap();
        c.output_word("d", &d.word);
        c.output_word("s", &s.word);
        c.output_word("p", &p.word);
        let nl = c.finish().unwrap();
        let av = [1.0, 2.0, 3.0, 0.5];
        let bv = [2.0, -1.0, 0.5, 4.0];
        let mut input = encode_tensor(&av);
        input.extend(encode_tensor(&bv));
        let out = decode_tensor(&nl.eval_plain(&input));
        let want_dot: f64 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
        let want_sum: f64 = av.iter().sum();
        let want_prod: f64 = av.iter().product();
        assert!((out[0] - want_dot).abs() <= 8.0 * DT.resolution(), "dot {out:?}");
        assert!((out[1] - want_sum).abs() <= 1e-9, "sum");
        assert!((out[2] - want_prod).abs() <= 8.0 * DT.resolution(), "prod");
    }

    #[test]
    fn matmul_against_plain_oracle() {
        let (m, k, n) = (2, 3, 2);
        let nl = build2(&[m, k], &[k, n], |c, a, b| matmul(c, a, b).unwrap());
        let a = PlainTensor::random(&[m, k], 2.0, 1);
        let b = PlainTensor::random(&[k, n], 2.0, 2);
        // Quantize the inputs the same way the circuit sees them.
        let q = |x: f64| DT.decode_f64(&DT.encode_f64(x));
        let mut input = encode_tensor(a.data());
        input.extend(encode_tensor(b.data()));
        let out = decode_tensor(&nl.eval_plain(&input));
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0;
                for kk in 0..k {
                    want += q(a.at(&[i, kk])) * q(b.at(&[kk, j]));
                }
                let got = out[i * n + j];
                assert!(
                    (got - want).abs() <= (k as f64 + 1.0) * DT.resolution(),
                    "({i},{j}): got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", &[2, 3], DT);
        let b = Tensor::input(&mut c, "b", &[2, 2], DT);
        assert!(matmul(&mut c, &a, &b).is_err());
        let v = Tensor::input(&mut c, "v", &[3], DT);
        assert!(matmul(&mut c, &a, &v).is_err());
        assert!(dot(&mut c, &a, &v).is_err());
    }

    #[test]
    fn argmax_argmin_flat_index() {
        let mut c = Circuit::new();
        let a = Tensor::input(&mut c, "a", &[5], DT);
        let mx = argmax(&mut c, &a).unwrap();
        let mn = argmin(&mut c, &a).unwrap();
        c.output_word("mx", &mx.word);
        c.output_word("mn", &mn.word);
        let nl = c.finish().unwrap();
        let vals = [0.5, -1.0, 7.25, 7.25, 3.0];
        let out = nl.eval_plain(&encode_tensor(&vals));
        let w = mx.word.width();
        let as_u64 = |bits: &[bool]| {
            bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        assert_eq!(as_u64(&out[..w]), 2, "argmax (first of tie)");
        assert_eq!(as_u64(&out[w..]), 1, "argmin");
    }
}
