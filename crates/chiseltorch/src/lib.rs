//! **ChiselTorch** — the PyTorch-compatible neural-network frontend of
//! PyTFHE (Section IV-B of the paper).
//!
//! ChiselTorch lets users declare privacy-preserving neural networks with
//! the layer vocabulary of `torch.nn` and compile them into TFHE gate
//! netlists. It reproduces the paper's three desiderata:
//!
//! * **correctness** — every layer is a pre-built, pre-validated circuit
//!   generator with a plaintext reference implementation tested against
//!   the compiled circuit;
//! * **productivity** — models are declared like Figure 4 of the paper:
//!
//! ```
//! use chiseltorch::nn;
//! use chiseltorch::DType;
//!
//! let mnist_model = nn::Sequential::new(DType::Float { exp: 8, man: 8 })
//!     .add(nn::Conv2d::new(1, 1, 3, 1))
//!     .add(nn::ReLU::new())
//!     .add(nn::MaxPool2d::new(3, 1))
//!     .add(nn::Flatten::new())
//!     .add(nn::Linear::new(36, 10));
//! # let _ = mnist_model;
//! ```
//!
//! * **performance** — weights are plaintext constants folded into the
//!   circuit, reshapes compile to pure wiring (the `Flatten` optimization
//!   the paper calls out against the Transpiler in Section V-C), and the
//!   data type is a free parameter (`Float(8, 8)`, `SInt(7)`,
//!   `Fixed(12, 6)`, …) trading accuracy for gate count.
//!
//! The supported layer and tensor-primitive vocabulary matches Table I of
//! the paper; see [`nn`] and [`Tensor`].

pub mod compile;
mod error;
pub mod nn;
pub mod ops;
mod plain;
mod tensor;

pub use compile::{compile, compile_with, CompiledModel};
pub use error::TorchError;
pub use plain::PlainTensor;
pub use pytfhe_hdl::{Circuit, DType, Value};
pub use tensor::Tensor;
