use crate::error::TorchError;
use crate::plain::{flat_index, PlainTensor};
use pytfhe_hdl::{Circuit, DType, Value};

/// A tensor of encrypted-at-runtime values inside a circuit under
/// construction: a shape plus one typed [`Value`] per element (row-major).
///
/// Structural operations (`view`, `reshape`, `transpose`, `pad`,
/// `flatten`) rearrange wires and cost **zero gates** — this is the
/// optimization the paper highlights against the Google Transpiler, which
/// "still emitted gates for the Flatten layer" (Section V-C).
#[derive(Debug, Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<Value>,
    dtype: DType,
}

impl Tensor {
    /// Builds a tensor from elements in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::ShapeMismatch`] if the element count does not
    /// match the shape.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty (tensors carry at least one element).
    pub fn from_values(shape: &[usize], data: Vec<Value>) -> Result<Self, TorchError> {
        let n: usize = shape.iter().product();
        if data.len() != n {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{n} elements for shape {shape:?}"),
                got: vec![data.len()],
                op: "from_values",
            });
        }
        let dtype = data.first().expect("tensor cannot be empty").dtype;
        Ok(Tensor { shape: shape.to_vec(), data, dtype })
    }

    /// Declares an encrypted input tensor: one fresh circuit input bit per
    /// element bit, grouped under the port `name`.
    pub fn input(c: &mut Circuit, name: &str, shape: &[usize], dtype: DType) -> Self {
        let n: usize = shape.iter().product();
        let width = dtype.width();
        let word = c.input_word(name, n * width);
        let data =
            (0..n).map(|i| Value::new(word.slice(i * width, (i + 1) * width), dtype)).collect();
        Tensor { shape: shape.to_vec(), data, dtype }
    }

    /// Bakes a plaintext tensor into the circuit as constants (the
    /// model-weight path: constants fold into downstream arithmetic).
    pub fn constant(c: &mut Circuit, plain: &PlainTensor, dtype: DType) -> Self {
        let data = plain.data().iter().map(|&x| Value::constant(c, x, dtype)).collect();
        Tensor { shape: plain.shape().to_vec(), data, dtype }
    }

    /// Declares this tensor as the circuit's output port `name`.
    pub fn output(&self, c: &mut Circuit, name: impl Into<String>) {
        let mut bits = Vec::new();
        for v in &self.data {
            bits.extend_from_slice(v.word.bits());
        }
        c.output_word(name, &pytfhe_hdl::Word::from_bits(bits));
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The data type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The elements in row-major order.
    pub fn values(&self) -> &[Value] {
        &self.data
    }

    /// The element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or bounds are wrong.
    pub fn at(&self, index: &[usize]) -> &Value {
        &self.data[flat_index(&self.shape, index)]
    }

    /// `view` / `reshape`: same wires, new shape (Table I's `view`,
    /// `reshape`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadReshape`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TorchError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TorchError::BadReshape { from: self.shape.clone(), to: shape.to_vec() });
        }
        Ok(Tensor { shape: shape.to_vec(), data: self.data.clone(), dtype: self.dtype })
    }

    /// Flattens to rank 1 — pure wiring, zero gates.
    pub fn flatten(&self) -> Tensor {
        Tensor { shape: vec![self.data.len()], data: self.data.clone(), dtype: self.dtype }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::ShapeMismatch`] for other ranks.
    pub fn transpose(&self) -> Result<Tensor, TorchError> {
        let [r, c] = self.shape[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "rank-2 tensor".into(),
                got: self.shape.clone(),
                op: "transpose",
            });
        };
        let mut data = Vec::with_capacity(self.data.len());
        for j in 0..c {
            for i in 0..r {
                data.push(self.data[i * c + j].clone());
            }
        }
        Ok(Tensor { shape: vec![c, r], data, dtype: self.dtype })
    }

    /// Zero-pads the last two dimensions by `pad` on each side (Table I's
    /// `pad`; used to build `same` convolutions).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::ShapeMismatch`] if the rank is below 2.
    pub fn pad2d(&self, c: &mut Circuit, pad: usize) -> Result<Tensor, TorchError> {
        if self.shape.len() < 2 {
            return Err(TorchError::ShapeMismatch {
                expected: "rank >= 2".into(),
                got: self.shape.clone(),
                op: "pad",
            });
        }
        let rank = self.shape.len();
        let (h, w) = (self.shape[rank - 2], self.shape[rank - 1]);
        let outer: usize = self.shape[..rank - 2].iter().product();
        let (nh, nw) = (h + 2 * pad, w + 2 * pad);
        let zero = Value::constant(c, 0.0, self.dtype);
        let mut data = Vec::with_capacity(outer * nh * nw);
        for o in 0..outer {
            for i in 0..nh {
                for j in 0..nw {
                    if i >= pad && i < pad + h && j >= pad && j < pad + w {
                        data.push(self.data[(o * h + (i - pad)) * w + (j - pad)].clone());
                    } else {
                        data.push(zero.clone());
                    }
                }
            }
        }
        let mut shape = self.shape[..rank - 2].to_vec();
        shape.push(nh);
        shape.push(nw);
        Ok(Tensor { shape, data, dtype: self.dtype })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input_2x3(c: &mut Circuit) -> Tensor {
        Tensor::input(c, "x", &[2, 3], DType::UInt(4))
    }

    #[test]
    fn input_declares_ports() {
        let mut c = Circuit::new();
        let t = input_2x3(&mut c);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.dtype(), DType::UInt(4));
    }

    #[test]
    fn reshape_preserves_wiring_and_costs_nothing() {
        let mut c = Circuit::new();
        let t = input_2x3(&mut c);
        let before = c.num_gates();
        let r = t.reshape(&[3, 2]).unwrap();
        let f = r.flatten();
        assert_eq!(c.num_gates(), before, "reshape/flatten must be free");
        assert_eq!(f.shape(), &[6]);
        assert_eq!(f.values()[0], *t.at(&[0, 0]));
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose_moves_elements() {
        let mut c = Circuit::new();
        let t = input_2x3(&mut c);
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), tt.at(&[j, i]));
            }
        }
        assert!(t.flatten().transpose().is_err());
    }

    #[test]
    fn pad_surrounds_with_zeros() {
        let mut c = Circuit::new();
        let t = input_2x3(&mut c);
        let p = t.pad2d(&mut c, 1).unwrap();
        assert_eq!(p.shape(), &[4, 5]);
        assert_eq!(p.at(&[1, 1]), t.at(&[0, 0]));
        assert_eq!(p.at(&[2, 3]), t.at(&[1, 2]));
        // Corners are constant zeros.
        assert!(p.at(&[0, 0]).word.as_const_u64() == Some(0));
    }

    #[test]
    fn constant_tensor_folds() {
        let mut c = Circuit::new();
        let plain = PlainTensor::from_vec(&[2], vec![3.0, 5.0]).unwrap();
        let t = Tensor::constant(&mut c, &plain, DType::UInt(4));
        assert_eq!(c.num_gates(), 0);
        assert_eq!(t.at(&[0]).word.as_const_u64(), Some(3));
        assert_eq!(t.at(&[1]).word.as_const_u64(), Some(5));
    }
}
