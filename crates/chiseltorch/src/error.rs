use pytfhe_hdl::HdlError;
use std::fmt;

/// Errors produced while building or compiling a ChiselTorch model.
#[derive(Debug, Clone, PartialEq)]
pub enum TorchError {
    /// Tensor shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expectation.
        expected: String,
        /// The shape that was provided.
        got: Vec<usize>,
        /// The operation.
        op: &'static str,
    },
    /// A reshape changed the element count.
    BadReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// A layer's parameter tensor has the wrong shape.
    BadWeights {
        /// Which layer.
        layer: &'static str,
        /// Description of the expectation.
        expected: String,
    },
    /// The underlying circuit generator failed.
    Hdl(HdlError),
}

impl fmt::Display for TorchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorchError::ShapeMismatch { expected, got, op } => {
                write!(f, "shape mismatch in `{op}`: expected {expected}, got {got:?}")
            }
            TorchError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TorchError::BadWeights { layer, expected } => {
                write!(f, "bad weights for {layer}: expected {expected}")
            }
            TorchError::Hdl(e) => write!(f, "circuit generation failed: {e}"),
        }
    }
}

impl std::error::Error for TorchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TorchError::Hdl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdlError> for TorchError {
    fn from(e: HdlError) -> Self {
        TorchError::Hdl(e)
    }
}
