use super::Module;
use crate::error::TorchError;
use crate::ops::sum_values;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, Value};

/// A fully-connected layer `y = W x + b` with plaintext weights baked into
/// the circuit — `torch.nn.Linear` (Table I).
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: PlainTensor,
    bias: PlainTensor,
}

impl Linear {
    /// Creates the layer with deterministic pseudo-random parameters
    /// (bounded by `1/sqrt(in_features)`, the PyTorch default).
    pub fn new(in_features: usize, out_features: usize) -> Self {
        let bound = 1.0 / (in_features as f64).sqrt();
        Linear {
            in_features,
            out_features,
            weight: PlainTensor::random(&[out_features, in_features], bound, 0x11ea2),
            bias: PlainTensor::random(&[out_features], bound, 0xb1a5),
        }
    }

    /// Replaces the weight matrix (`[out_features, in_features]`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadWeights`] on shape mismatch.
    pub fn with_weight(mut self, weight: PlainTensor) -> Result<Self, TorchError> {
        if weight.shape() != [self.out_features, self.in_features] {
            return Err(TorchError::BadWeights {
                layer: "Linear",
                expected: format!("[{}, {}]", self.out_features, self.in_features),
            });
        }
        self.weight = weight;
        Ok(self)
    }

    /// Replaces the bias vector (`[out_features]`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadWeights`] on shape mismatch.
    pub fn with_bias(mut self, bias: PlainTensor) -> Result<Self, TorchError> {
        if bias.shape() != [self.out_features] {
            return Err(TorchError::BadWeights {
                layer: "Linear",
                expected: format!("[{}]", self.out_features),
            });
        }
        self.bias = bias;
        Ok(self)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        if input.shape() != [self.in_features] {
            return Err(TorchError::ShapeMismatch {
                expected: format!("[{}]", self.in_features),
                got: input.shape().to_vec(),
                op: "Linear",
            });
        }
        let dtype = input.dtype();
        let mut out = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let mut terms = Vec::with_capacity(self.in_features + 1);
            for i in 0..self.in_features {
                let w = Value::constant(c, self.weight.at(&[o, i]), dtype);
                terms.push(c.v_mul(input.at(&[i]), &w)?);
            }
            terms.push(Value::constant(c, self.bias.at(&[o]), dtype));
            out.push(sum_values(c, &terms)?);
        }
        Tensor::from_values(&[self.out_features], out)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        if input.shape() != [self.in_features] {
            return Err(TorchError::ShapeMismatch {
                expected: format!("[{}]", self.in_features),
                got: input.shape().to_vec(),
                op: "Linear",
            });
        }
        let mut out = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let mut acc = self.bias.at(&[o]);
            for i in 0..self.in_features {
                acc += self.weight.at(&[o, i]) * input.at(&[i]);
            }
            out.push(acc);
        }
        PlainTensor::from_vec(&[self.out_features], out)
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        if input != [self.in_features] {
            return Err(TorchError::ShapeMismatch {
                expected: format!("[{}]", self.in_features),
                got: input.to_vec(),
                op: "Linear",
            });
        }
        Ok(vec![self.out_features])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::DType;

    #[test]
    fn matches_plain_oracle_fixed() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Linear::new(6, 3);
        let input = PlainTensor::random(&[6], 1.0, 21);
        // Tolerance: per-term quantization of weights (resolution/2 each)
        // times terms, plus product truncation.
        check_layer_against_plain(&layer, &[6], dtype, &input, 10.0 * dtype.resolution());
    }

    #[test]
    fn matches_plain_oracle_float() {
        let dtype = DType::Float { exp: 8, man: 10 };
        let layer = Linear::new(5, 2);
        let input = PlainTensor::random(&[5], 2.0, 22);
        check_layer_against_plain(&layer, &[5], dtype, &input, 0.05);
    }

    #[test]
    fn explicit_weights() {
        let layer = Linear::new(2, 1)
            .with_weight(PlainTensor::from_vec(&[1, 2], vec![2.0, -1.0]).unwrap())
            .unwrap()
            .with_bias(PlainTensor::from_vec(&[1], vec![0.5]).unwrap())
            .unwrap();
        let out =
            layer.forward_plain(&PlainTensor::from_vec(&[2], vec![3.0, 4.0]).unwrap()).unwrap();
        assert_eq!(out.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Linear::new(2, 1).with_weight(PlainTensor::zeros(&[2, 2])).is_err());
        assert!(Linear::new(2, 1).with_bias(PlainTensor::zeros(&[2])).is_err());
        assert!(Linear::new(2, 1).output_shape(&[3]).is_err());
    }
}
