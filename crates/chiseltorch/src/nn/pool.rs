use super::Module;
use crate::error::TorchError;
use crate::ops::sum_values;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, DType, Value};

fn pooled_len(
    l: usize,
    kernel: usize,
    stride: usize,
    op: &'static str,
) -> Result<usize, TorchError> {
    if l < kernel || stride == 0 {
        return Err(TorchError::ShapeMismatch {
            expected: format!("length >= kernel {kernel}"),
            got: vec![l],
            op,
        });
    }
    Ok((l - kernel) / stride + 1)
}

/// Reduces a window of values with the max tree.
fn max_values(c: &mut Circuit, values: &[Value]) -> Result<Value, TorchError> {
    let mut layer = values.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.v_max(&pair[0], &pair[1])?);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    Ok(layer.pop().expect("nonempty window"))
}

/// Divides a window sum by the constant window size: multiply by the
/// reciprocal for fractional types, divide for integers (truncating, as
/// integer average pooling must).
fn average(c: &mut Circuit, total: &Value, count: usize) -> Result<Value, TorchError> {
    match total.dtype {
        DType::UInt(_) | DType::SInt(_) => {
            let k = Value::constant(c, count as f64, total.dtype);
            Ok(c.v_div(total, &k)?)
        }
        DType::Fixed { .. } | DType::Float { .. } => {
            let inv = Value::constant(c, 1.0 / count as f64, total.dtype);
            Ok(c.v_mul(total, &inv)?)
        }
    }
}

macro_rules! pool_layer {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            kernel: usize,
            stride: usize,
        }

        impl $name {
            /// Creates the pooling layer with the given kernel and stride.
            pub fn new(kernel: usize, stride: usize) -> Self {
                Self { kernel, stride }
            }

            /// The window size.
            pub fn kernel(&self) -> usize {
                self.kernel
            }

            /// The stride.
            pub fn stride(&self) -> usize {
                self.stride
            }
        }
    };
}

pool_layer!(MaxPool2d, "2-D max pooling (`torch.nn.MaxPool2d`); input layout `[C, H, W]`.");
pool_layer!(AvgPool2d, "2-D average pooling (`torch.nn.AvgPool2d`); input layout `[C, H, W]`.");
pool_layer!(MaxPool1d, "1-D max pooling (`torch.nn.MaxPool1d`); input layout `[C, L]`.");
pool_layer!(AvgPool1d, "1-D average pooling (`torch.nn.AvgPool1d`); input layout `[C, L]`.");

fn window2d(input: &Tensor, ch: usize, y: usize, x: usize, k: usize, s: usize) -> Vec<Value> {
    let mut vals = Vec::with_capacity(k * k);
    for ky in 0..k {
        for kx in 0..k {
            vals.push(input.at(&[ch, y * s + ky, x * s + kx]).clone());
        }
    }
    vals
}

fn forward2d(
    c: &mut Circuit,
    input: &Tensor,
    kernel: usize,
    stride: usize,
    is_max: bool,
    op: &'static str,
) -> Result<Tensor, TorchError> {
    let [ch, h, w] = input.shape()[..] else {
        return Err(TorchError::ShapeMismatch {
            expected: "[C, H, W]".into(),
            got: input.shape().to_vec(),
            op,
        });
    };
    let oh = pooled_len(h, kernel, stride, op)?;
    let ow = pooled_len(w, kernel, stride, op)?;
    let mut out = Vec::with_capacity(ch * oh * ow);
    for i in 0..ch {
        for y in 0..oh {
            for x in 0..ow {
                let vals = window2d(input, i, y, x, kernel, stride);
                out.push(if is_max {
                    max_values(c, &vals)?
                } else {
                    let s = sum_values(c, &vals)?;
                    average(c, &s, kernel * kernel)?
                });
            }
        }
    }
    Tensor::from_values(&[ch, oh, ow], out)
}

fn plain2d(
    input: &PlainTensor,
    kernel: usize,
    stride: usize,
    is_max: bool,
    op: &'static str,
) -> Result<PlainTensor, TorchError> {
    let [ch, h, w] = input.shape()[..] else {
        return Err(TorchError::ShapeMismatch {
            expected: "[C, H, W]".into(),
            got: input.shape().to_vec(),
            op,
        });
    };
    let oh = pooled_len(h, kernel, stride, op)?;
    let ow = pooled_len(w, kernel, stride, op)?;
    let mut out = PlainTensor::zeros(&[ch, oh, ow]);
    for i in 0..ch {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc: Option<f64> = None;
                let mut sum = 0.0;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let v = input.at(&[i, y * stride + ky, x * stride + kx]);
                        sum += v;
                        acc = Some(acc.map_or(v, |a: f64| a.max(v)));
                    }
                }
                let v = if is_max { acc.unwrap_or(0.0) } else { sum / (kernel * kernel) as f64 };
                out.set(&[i, y, x], v);
            }
        }
    }
    Ok(out)
}

fn shape2d(
    input: &[usize],
    kernel: usize,
    stride: usize,
    op: &'static str,
) -> Result<Vec<usize>, TorchError> {
    let [ch, h, w] = input[..] else {
        return Err(TorchError::ShapeMismatch {
            expected: "[C, H, W]".into(),
            got: input.to_vec(),
            op,
        });
    };
    Ok(vec![ch, pooled_len(h, kernel, stride, op)?, pooled_len(w, kernel, stride, op)?])
}

impl Module for MaxPool2d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        forward2d(c, input, self.kernel, self.stride, true, "MaxPool2d")
    }
    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        plain2d(input, self.kernel, self.stride, true, "MaxPool2d")
    }
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        shape2d(input, self.kernel, self.stride, "MaxPool2d")
    }
}

impl Module for AvgPool2d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        forward2d(c, input, self.kernel, self.stride, false, "AvgPool2d")
    }
    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        plain2d(input, self.kernel, self.stride, false, "AvgPool2d")
    }
    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        shape2d(input, self.kernel, self.stride, "AvgPool2d")
    }
}

fn forward1d(
    c: &mut Circuit,
    input: &Tensor,
    kernel: usize,
    stride: usize,
    is_max: bool,
    op: &'static str,
) -> Result<Tensor, TorchError> {
    let [ch, l] = input.shape()[..] else {
        return Err(TorchError::ShapeMismatch {
            expected: "[C, L]".into(),
            got: input.shape().to_vec(),
            op,
        });
    };
    let ol = pooled_len(l, kernel, stride, op)?;
    let mut out = Vec::with_capacity(ch * ol);
    for i in 0..ch {
        for x in 0..ol {
            let vals: Vec<Value> =
                (0..kernel).map(|k| input.at(&[i, x * stride + k]).clone()).collect();
            out.push(if is_max {
                max_values(c, &vals)?
            } else {
                let s = sum_values(c, &vals)?;
                average(c, &s, kernel)?
            });
        }
    }
    Tensor::from_values(&[ch, ol], out)
}

fn plain1d(
    input: &PlainTensor,
    kernel: usize,
    stride: usize,
    is_max: bool,
    op: &'static str,
) -> Result<PlainTensor, TorchError> {
    let [ch, l] = input.shape()[..] else {
        return Err(TorchError::ShapeMismatch {
            expected: "[C, L]".into(),
            got: input.shape().to_vec(),
            op,
        });
    };
    let ol = pooled_len(l, kernel, stride, op)?;
    let mut out = PlainTensor::zeros(&[ch, ol]);
    for i in 0..ch {
        for x in 0..ol {
            let window: Vec<f64> = (0..kernel).map(|k| input.at(&[i, x * stride + k])).collect();
            let v = if is_max {
                window.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            } else {
                window.iter().sum::<f64>() / kernel as f64
            };
            out.set(&[i, x], v);
        }
    }
    Ok(out)
}

impl Module for MaxPool1d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        forward1d(c, input, self.kernel, self.stride, true, "MaxPool1d")
    }
    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        plain1d(input, self.kernel, self.stride, true, "MaxPool1d")
    }
    fn name(&self) -> &'static str {
        "MaxPool1d"
    }
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        let [ch, l] = input[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, L]".into(),
                got: input.to_vec(),
                op: "MaxPool1d",
            });
        };
        Ok(vec![ch, pooled_len(l, self.kernel, self.stride, "MaxPool1d")?])
    }
}

impl Module for AvgPool1d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        forward1d(c, input, self.kernel, self.stride, false, "AvgPool1d")
    }
    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        plain1d(input, self.kernel, self.stride, false, "AvgPool1d")
    }
    fn name(&self) -> &'static str {
        "AvgPool1d"
    }
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        let [ch, l] = input[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, L]".into(),
                got: input.to_vec(),
                op: "AvgPool1d",
            });
        };
        Ok(vec![ch, pooled_len(l, self.kernel, self.stride, "AvgPool1d")?])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;

    const DT: DType = DType::Fixed { width: 12, frac: 4 };

    #[test]
    fn maxpool2d_matches_plain() {
        let input = PlainTensor::random(&[2, 4, 4], 4.0, 41);
        check_layer_against_plain(&MaxPool2d::new(2, 2), &[2, 4, 4], DT, &input, DT.resolution());
        check_layer_against_plain(&MaxPool2d::new(3, 1), &[2, 4, 4], DT, &input, DT.resolution());
    }

    #[test]
    fn avgpool2d_matches_plain() {
        let input = PlainTensor::random(&[1, 4, 4], 4.0, 42);
        check_layer_against_plain(
            &AvgPool2d::new(2, 2),
            &[1, 4, 4],
            DT,
            &input,
            4.0 * DT.resolution(),
        );
    }

    #[test]
    fn pool1d_matches_plain() {
        let input = PlainTensor::random(&[2, 6], 4.0, 43);
        check_layer_against_plain(&MaxPool1d::new(2, 2), &[2, 6], DT, &input, DT.resolution());
        check_layer_against_plain(
            &AvgPool1d::new(3, 1),
            &[2, 6],
            DT,
            &input,
            4.0 * DT.resolution(),
        );
    }

    #[test]
    fn avgpool_integer_truncates() {
        let layer = AvgPool1d::new(2, 2);
        let dtype = DType::SInt(8);
        let mut c = Circuit::new();
        let x = Tensor::input(&mut c, "x", &[1, 2], dtype);
        let y = layer.forward(&mut c, &x).unwrap();
        y.output(&mut c, "y");
        let nl = c.finish().unwrap();
        let mut bits = dtype.encode_f64(3.0);
        bits.extend(dtype.encode_f64(4.0));
        let out = nl.eval_plain(&bits);
        // (3 + 4) / 2 truncates to 3 for integers.
        assert_eq!(dtype.decode_f64(&out), 3.0);
    }

    #[test]
    fn output_shapes() {
        assert_eq!(MaxPool2d::new(3, 1).output_shape(&[1, 5, 5]).unwrap(), vec![1, 3, 3]);
        assert_eq!(AvgPool2d::new(2, 2).output_shape(&[3, 6, 6]).unwrap(), vec![3, 3, 3]);
        assert_eq!(MaxPool1d::new(2, 2).output_shape(&[2, 8]).unwrap(), vec![2, 4]);
        assert!(MaxPool2d::new(4, 1).output_shape(&[1, 3, 3]).is_err());
        assert!(MaxPool2d::new(2, 1).output_shape(&[9]).is_err());
    }
}
